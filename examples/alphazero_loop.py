"""The iterative MCTS↔RL loop the paper argues against (Sec. I-B).

Runs both training schemes on the same circuit at a matched budget and
prints the cost structure: the iterative loop pays a whole MCTS placement
(with its terminal legalize-and-place calls) per round, while the paper's
A2C pre-training pays exactly one terminal evaluation per episode.

    python examples/alphazero_loop.py
"""

from __future__ import annotations

import copy
import time

from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.iterative import IterativeMCTSTrainer
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.suites import make_iccad04_circuit

EPISODES = 150
ROUNDS = 6
GAMMA = 60


def main() -> None:
    entry = make_iccad04_circuit("ibm01", scale=0.01, macro_scale=0.08)
    design = entry.design
    print(f"circuit: ibm01-alike  {design.netlist.stats()}")
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))

    env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength, n_episodes=20, rng=1
    )

    # --- the paper's scheme: A2C pre-training + one MCTS pass -------------
    env_a = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    net_a = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    t0 = time.time()
    trainer = ActorCriticTrainer(
        env_a, net_a, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    trainer.train(EPISODES)
    result = MCTSPlacer(
        env_a, net_a, reward_fn, MCTSConfig(explorations=GAMMA, seed=0)
    ).run()
    t_paper = time.time() - t0
    wl_paper = min(result.wirelength, result.best_terminal_wirelength)
    evals_paper = EPISODES + result.n_terminal_evaluations

    # --- the avoided scheme: AlphaZero-style iteration --------------------
    env_b = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    net_b = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    t0 = time.time()
    it = IterativeMCTSTrainer(
        env_b, net_b, reward_fn, MCTSConfig(explorations=GAMMA), lr=2e-3,
        train_epochs=4,
    )
    history = it.train(ROUNDS)
    t_iter = time.time() - t0

    print(f"\n{'scheme':28s} {'time':>8} {'terminal evals':>15} {'best WL':>9}")
    print(f"{'paper (A2C + one MCTS)':28s} {t_paper:7.1f}s {evals_paper:>15d} "
          f"{wl_paper:>9.0f}")
    print(f"{'iterative (AlphaZero-style)':28s} {t_iter:7.1f}s "
          f"{sum(history.terminal_evaluations):>15d} "
          f"{history.best_wirelength():>9.0f}")
    print(f"\niterative per-round wirelengths: "
          f"{[round(w) for w in history.wirelengths]}")
    print("expected: the paper scheme reaches comparable quality; the "
          "iterative loop's cost per improvement is dominated by MCTS "
          "terminal evaluations — the paper's Sec. I-B scalability argument.")


if __name__ == "__main__":
    main()
