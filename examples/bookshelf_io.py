"""Bookshelf interchange: export, re-import, and place with the baselines.

Demonstrates that the Bookshelf writer/parser round-trips a design, so
genuine ICCAD04 data (the paper's Table III benchmarks) can be dropped
into the flow unchanged:

    design = read_aux("/path/to/ibm01/ibm01.aux")

    python examples/bookshelf_io.py
"""

from __future__ import annotations

import copy
import tempfile

from repro.baselines import SAPlacer, WiremaskPlacer
from repro.netlist.bookshelf import read_aux, write_design
from repro.netlist.hpwl import hpwl
from repro.netlist.suites import make_iccad04_circuit


def main() -> None:
    entry = make_iccad04_circuit("ibm03", scale=0.008, macro_scale=0.06)
    design = entry.design
    print(f"original : {design.netlist.stats()}  HPWL {hpwl(design.netlist):.1f}")

    with tempfile.TemporaryDirectory() as tmp:
        aux = write_design(design, tmp)
        print(f"wrote    : {aux}")
        loaded = read_aux(aux)
        print(f"reloaded : {loaded.netlist.stats()}  "
              f"HPWL {hpwl(loaded.netlist):.1f}")

        for placer in (
            SAPlacer(n_moves=800, seed=0),
            WiremaskPlacer(bins=12, rollouts=4, seed=0),
        ):
            d = copy.deepcopy(loaded)
            result = placer.place(d)
            print(f"{result.name:10s}: HPWL {result.hpwl:10.1f} "
                  f"({result.runtime:.1f}s)")


if __name__ == "__main__":
    main()
