"""Quickstart: place a small mixed-size design with the MCTS-guided flow.

Runs the complete pipeline of the paper — analytical prototype, grid
partition + netlist coarsening, Actor-Critic pre-training with the Eq. 9
normalized reward, and one agent-guided MCTS pass — then compares the
result against the pure-analytical mixed-size placer.

    python examples/quickstart.py
"""

from __future__ import annotations

import copy
import time

from repro import MCTSGuidedPlacer, PlacerConfig
from repro.agent.network import NetworkConfig
from repro.eval.metrics import placement_summary
from repro.gp.mixed_size import MixedSizePlacer
from repro.mcts.search import MCTSConfig
from repro.netlist.suites import make_iccad04_circuit


def main() -> None:
    entry = make_iccad04_circuit("ibm01", scale=0.01, macro_scale=0.08)
    design = entry.design
    print(f"circuit: {entry.name}-alike  {design.netlist.stats()}")

    # Reference: the analytical mixed-size placer (DREAMPlace stand-in).
    analytical = copy.deepcopy(design)
    ref = MixedSizePlacer(n_iterations=5).place(analytical)
    print(f"analytical mixed-size placer : HPWL {ref.hpwl:10.1f}")

    # The paper's flow, at a laptop-friendly budget.
    config = PlacerConfig(
        zeta=8,
        network=NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0),
        episodes=150,
        update_every=30,
        calibration_episodes=20,
        mcts=MCTSConfig(c_puct=1.05, explorations=40, seed=0),
        cell_place_iterations=3,
        seed=0,
    )
    t0 = time.time()
    result = MCTSGuidedPlacer(config).place(design)
    elapsed = time.time() - t0

    best = min(result.hpwl, result.search.best_terminal_wirelength)
    print(f"MCTS-guided placer (ours)    : HPWL {result.hpwl:10.1f}")
    print(f"  best terminal seen in tree : HPWL {result.search.best_terminal_wirelength:10.1f}")
    print(f"  macro groups               : {result.n_macro_groups}")
    print(f"  RL episodes / best episode : {len(result.history.rewards)}"
          f" / HPWL {result.history.best_wirelength():.1f}")
    print(f"  runtime                    : {elapsed:.1f}s "
          f"(MCTS stage {result.mcts_runtime:.1f}s)")

    summary = placement_summary(design)
    print(f"legality: overlap={summary.macro_overlap:.2e} "
          f"out_of_region={summary.out_of_region:.2e} -> "
          f"{'LEGAL' if summary.legal else 'ILLEGAL'}")
    print(f"\nours vs analytical: {best / ref.hpwl:.3f}x "
          f"({'better' if best < ref.hpwl else 'worse'})")


if __name__ == "__main__":
    main()
