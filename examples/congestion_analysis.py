"""Routing-demand comparison of two macro placement policies (RUDY).

The paper optimizes HPWL only; much of its related work is
routability-driven.  This example places the same circuit with the
wiremask placer and the analytical placer and compares both the HPWL and
the RUDY congestion profile — showing that similar wirelengths can carry
different routing-demand peaks.

    python examples/congestion_analysis.py
"""

from __future__ import annotations

import copy

from repro.baselines import WiremaskPlacer
from repro.eval.congestion import congestion_report, rudy_map
from repro.gp.mixed_size import MixedSizePlacer
from repro.netlist.suites import make_iccad04_circuit


def heat_ascii(m, cols=32) -> str:
    """Coarse ASCII heat map of a RUDY array."""
    import numpy as np

    chars = " .:-=+*#%@"
    lo, hi = float(m.min()), float(m.max())
    span = (hi - lo) or 1.0
    step = max(m.shape[0] // 16, 1)
    rows = []
    for r in range(m.shape[0] - 1, -1, -step):
        row = "".join(
            chars[int((m[r, c] - lo) / span * (len(chars) - 1))]
            for c in range(0, m.shape[1], max(m.shape[1] // cols, 1))
        )
        rows.append("|" + row + "|")
    return "\n".join(rows)


def main() -> None:
    entry = make_iccad04_circuit("ibm03", scale=0.01, macro_scale=0.06)
    print(f"circuit: ibm03-alike  {entry.design.netlist.stats()}\n")

    for label, place in (
        ("analytical (DREAMPlace-like)",
         lambda d: MixedSizePlacer(n_iterations=5).place(d)),
        ("wiremask (MaskPlace-like)",
         lambda d: WiremaskPlacer(bins=16, rollouts=8, seed=0).place(d)),
    ):
        design = copy.deepcopy(entry.design)
        result = place(design)
        report = congestion_report(design, bins=32)
        print(f"{label}: HPWL {result.hpwl:.1f}")
        print(f"  {report}")
        print(heat_ascii(rudy_map(design, bins=32)))
        print()


if __name__ == "__main__":
    main()
