"""Reward-function study (the paper's Fig. 4, miniature).

Trains the same agent on the same circuit under three rewards:

- Eq. 9 with α (rewards slightly above zero) — the paper's proposal;
- Eq. 9 without α (rewards centered at zero);
- the intuitive −W.

and prints the per-phase mean reward of each run.  Expected shape: the
α-shifted curve climbs fastest; the raw −W run shows no convergence at the
same budget.

    python examples/reward_shaping.py
"""

from __future__ import annotations

import copy

import numpy as np

from repro.agent import (
    ActorCriticTrainer,
    NegativeWirelength,
    NetworkConfig,
    NormalizedReward,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.netlist.suites import make_iccad04_circuit

EPISODES = 240
PHASE = 40


def sparkline(values: list[float]) -> str:
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)


def train_with(reward_fn, coarse, label: str) -> list[float]:
    env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    hist = trainer.train(EPISODES)
    phases = [
        float(np.mean(hist.wirelengths[i : i + PHASE]))
        for i in range(0, EPISODES, PHASE)
    ]
    print(f"{label:24s} phase-mean WL: "
          + "  ".join(f"{p:7.0f}" for p in phases)
          + "   " + sparkline([-p for p in phases]))
    return phases


def main() -> None:
    entry = make_iccad04_circuit("ibm10", scale=0.004, macro_scale=0.04)
    design = entry.design
    print(f"circuit: ibm10-alike  {design.netlist.stats()}")
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))

    env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    calibrated, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength, alpha=0.75,
        n_episodes=20, rng=1,
    )
    print(f"calibration: W in [{calibrated.w_min:.0f}, {calibrated.w_max:.0f}], "
          f"avg {calibrated.w_avg:.0f}\n")

    no_alpha = NormalizedReward(
        w_max=calibrated.w_max, w_min=calibrated.w_min,
        w_avg=calibrated.w_avg, alpha=0.0,
    )
    a = train_with(calibrated, coarse, "Eq.9 with alpha (ours)")
    b = train_with(no_alpha, coarse, "Eq.9 without alpha")
    c = train_with(NegativeWirelength(), coarse, "intuitive -W")

    print("\nexpected shape: 'with alpha' improves most; '-W' stays flat.")
    gain = lambda xs: xs[0] - xs[-1]  # noqa: E731
    print(f"improvement: with-alpha {gain(a):.0f}, no-alpha {gain(b):.0f}, "
          f"-W {gain(c):.0f}")


if __name__ == "__main__":
    main()
