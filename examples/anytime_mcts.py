"""MCTS rescues a half-trained agent (the paper's Fig. 5, miniature).

Checkpoints the agent during RL training and runs MCTS from each
checkpoint.  The paper's claim: MCTS guided by an *early-stage* agent
already reaches rewards close to fully-converged RL — so training can be
halted whenever the user likes.

    python examples/anytime_mcts.py
"""

from __future__ import annotations

import copy

import numpy as np

from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.suites import make_iccad04_circuit

EPISODES = 300
CHECKPOINT_EVERY = 60


def main() -> None:
    entry = make_iccad04_circuit("ibm01", scale=0.01, macro_scale=0.08)
    design = entry.design
    print(f"circuit: ibm01-alike  {design.netlist.stats()}")
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))

    env = MacroGroupPlacementEnv(coarse, cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength, n_episodes=20, rng=1
    )
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    history = trainer.train(EPISODES, checkpoint_every=CHECKPOINT_EVERY)

    print(f"\n{'episode':>8} {'RL reward (recent mean)':>26} "
          f"{'MCTS reward':>12} {'MCTS WL':>9}")
    for snap in history.snapshots:
        stage_net = trainer.network_at(snap)
        stage_env = MacroGroupPlacementEnv(
            copy.deepcopy(coarse), cell_place_iters=2
        )
        result = MCTSPlacer(
            stage_env, stage_net, reward_fn,
            MCTSConfig(explorations=80, seed=0),
        ).run()
        recent = history.rewards[max(0, snap.episode - 30) : snap.episode]
        rl_reward = float(np.mean(recent))
        print(f"{snap.episode:>8} {rl_reward:>26.3f} "
              f"{result.reward:>12.3f} {result.wirelength:>9.0f}")

    print("\nexpected shape: the MCTS column sits above the RL column at "
          "every stage, and its early-stage values approach late-stage RL.")


if __name__ == "__main__":
    main()
