"""Hierarchy-aware placement on an industrial-style design (Table II mini).

The industrial benchmarks carry logical hierarchy and preplaced macros.
This example shows:

1. how the Γ score's hierarchy term groups macros from the same sub-tree;
2. a Table II-style comparison: ours vs the SE-based macro placer [26] vs
   the analytical mixed-size placer (DREAMPlace stand-in).

    python examples/industrial_hierarchy.py
"""

from __future__ import annotations

import copy
from dataclasses import replace

from repro import MCTSGuidedPlacer, PlacerConfig
from repro.baselines import SEPlacer
from repro.eval.report import ComparisonTable
from repro.gp.mixed_size import MixedSizePlacer
from repro.netlist.suites import make_industrial_circuit


def main() -> None:
    entry = make_industrial_circuit("Cir1", scale=0.002, macro_scale=0.5)
    print(f"circuit: {entry.name}-alike  {entry.design.netlist.stats()}")

    # -- our flow (reduced budget) ----------------------------------------
    ours_design = copy.deepcopy(entry.design)
    config = replace(PlacerConfig.benchmark(seed=0), episodes=300)
    result = MCTSGuidedPlacer(config).place(ours_design)

    print("\nmacro groups (hierarchy-aware, Γ of Eq. 1):")
    for i, g in enumerate(result.coarse.macro_groups):
        print(
            f"  group {i}: {len(g.members)} macro(s), area {g.area:7.1f}, "
            f"hierarchy {g.hierarchy or '(top)'}"
        )

    # -- baselines ----------------------------------------------------------
    se_design = copy.deepcopy(entry.design)
    se = SEPlacer(generations=12, seed=0).place(se_design)

    dp_design = copy.deepcopy(entry.design)
    dp = MixedSizePlacer(n_iterations=5).place(dp_design)

    table = ComparisonTable(
        methods=["SE [26]", "DreamPl-like [25]", "Ours"],
        reference="Ours",
        title="\nTable II (miniature): wirelength comparison",
    )
    table.add(entry.name, "SE [26]", se.hpwl)
    table.add(entry.name, "DreamPl-like [25]", dp.hpwl)
    table.add(entry.name, "Ours", min(result.hpwl,
                                      result.search.best_terminal_wirelength))
    print(table.render())


if __name__ == "__main__":
    main()
