"""Render a placement as SVG and ASCII, before and after the flow.

    python examples/visualize_placement.py [output_dir]
"""

from __future__ import annotations

import sys

from repro import MCTSGuidedPlacer, PlacerConfig
from repro.eval.visualize import placement_ascii, save_placement_svg
from repro.grid.plan import GridPlan
from repro.legalize.cells import legalize_cells
from repro.netlist.suites import make_iccad04_circuit


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    entry = make_iccad04_circuit("ibm01", scale=0.01, macro_scale=0.08)
    design = entry.design
    plan = GridPlan(design.region, zeta=8)

    save_placement_svg(design, f"{out_dir}/ibm01_initial.svg", plan=plan)
    print("initial placement:")
    print(placement_ascii(design))

    result = MCTSGuidedPlacer(PlacerConfig.fast(seed=0)).place(design)
    legalize_cells(design)
    save_placement_svg(design, f"{out_dir}/ibm01_placed.svg", plan=plan)
    print(f"\nafter the flow (HPWL {result.hpwl:.1f}, cells legalized):")
    print(placement_ascii(design))
    print(f"\nwrote {out_dir}/ibm01_initial.svg and {out_dir}/ibm01_placed.svg")


if __name__ == "__main__":
    main()
