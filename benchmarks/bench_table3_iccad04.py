"""Table III — ICCAD04 benchmarks: CT [27] vs MaskPlace [19] vs
RePlAce [10] vs Ours.

Paper numbers (normalized HPWL): CT 1.39, MaskPlace 1.10, RePlAce 1.01,
Ours 1.00.  Expected reproduction shape: CT clearly worst among the
learned methods, MaskPlace between CT and the analytical methods, RePlAce
≈ Ours with Ours at least competitive.
"""

from __future__ import annotations

import copy

from benchmarks.conftest import placer_config, run_once
from repro.agent.network import NetworkConfig
from repro.baselines import CTStylePlacer, RePlAceLikePlacer, WiremaskPlacer
from repro.core import MCTSGuidedPlacer
from repro.eval.report import ComparisonTable
from repro.netlist.suites import make_iccad04_circuit

METHODS = ["CT [27]", "MaskPlace [19]", "RePlAce [10]", "Ours"]


def _run_circuit(name: str, budget) -> dict[str, float]:
    entry = make_iccad04_circuit(
        name, scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    values: dict[str, float] = {}

    d = copy.deepcopy(entry.design)
    ct = CTStylePlacer(
        zeta=8,
        network=NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0),
        episodes=max(budget.episodes // 3, 10),
        update_every=10,
        cell_place_iters=2,
        seed=0,
    )
    values["CT [27]"] = ct.place(d).hpwl

    d = copy.deepcopy(entry.design)
    values["MaskPlace [19]"] = (
        WiremaskPlacer(bins=16, rollouts=8, cell_place_iters=2, seed=0)
        .place(d)
        .hpwl
    )

    d = copy.deepcopy(entry.design)
    values["RePlAce [10]"] = (
        RePlAceLikePlacer(gp_iterations=8, refine_moves=800,
                          cell_place_iters=2, seed=0)
        .place(d)
        .hpwl
    )

    d = copy.deepcopy(entry.design)
    result = MCTSGuidedPlacer(placer_config(budget)).place(d)
    values["Ours"] = min(result.hpwl, result.search.best_terminal_wirelength)
    return values


def test_table3_iccad04(benchmark, budget):
    table = ComparisonTable(
        methods=METHODS, reference="Ours",
        title="\nTable III (miniature): ICCAD04 benchmarks, HPWL",
    )

    def run():
        for circuit in budget.iccad04_circuits:
            for method, value in _run_circuit(circuit, budget).items():
                table.add(circuit, method, value)
        return table.normalized()

    normalized = run_once(benchmark, run)
    print(table.render())
    benchmark.extra_info["table"] = {c: dict(v) for c, v in table.rows.items()}
    benchmark.extra_info["normalized"] = normalized

    assert normalized["Ours"] == 1.0
    if budget.name != "smoke":
        # Paper shape: CT is the weakest method by a clear margin.
        assert normalized["CT [27]"] > normalized["Ours"]
        assert normalized["CT [27]"] > normalized["MaskPlace [19]"]
        # Ours at least competitive with every baseline.
        assert normalized["MaskPlace [19]"] >= 0.95
        assert normalized["RePlAce [10]"] >= 0.95
