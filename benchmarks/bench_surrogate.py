#!/usr/bin/env python
"""Microbenchmark for two-tier terminal evaluation (PR 7).

Measures, on one synthetic design:

- **surrogate bitwise** — the incremental prefix-stack scorer must equal
  the from-scratch scorer bit-for-bit across random single-group moves
  (an optimization, never an approximation);
- **fidelity** — Spearman rank correlation between surrogate and exact
  HPWL over a pool of random complete assignments.  This is the gate
  PAPERS.md's Cheng/Kahng assessment insists on *measuring*: a proxy is
  only allowed to prune what it can rank;
- **tier-1 throughput** — surrogate scores/sec vs exact legalize-and-
  place evaluations/sec (the per-call cost ratio the pruning converts
  into wall-clock);
- **two-tier MCTS at matched budget** — the same search with
  ``exact_topk=None`` vs a finite K: exact-call reduction, wall-clock,
  and result quality (``min(committed, best_terminal)``), plus a
  huge-K arm gated *bitwise* against the single-tier baseline;
- **incremental legalizer** — :class:`IncrementalMacroLegalizer`
  (LU-factorization cache, step-1 netlist reuse, axis-net topology
  precompile, per-group region memo) gated bitwise against the
  from-scratch :class:`MacroLegalizer`, with the speedup reported.

Gates (exit 1 on failure): all bitwise-equivalence checks and the
fidelity floor (``--min-spearman``, default 0.9) always gate.  In full
(non ``--quick``) mode the two-tier arm must additionally cut exact
calls by ``--min-exact-reduction`` (default 3×) while keeping quality
within ``--max-hpwl-ratio`` (default 1.01) of the single-tier search.
``--quick`` (the CI mode) gates bitwise + fidelity only — a shared
runner can't promise a representative budget.

Writes a JSON report (default ``BENCH_pr7.json``)::

    python benchmarks/bench_surrogate.py --quick --output BENCH_pr7.json
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import time

import numpy as np

from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.coarsen import coarsen_design
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.legalize.pipeline import IncrementalMacroLegalizer, MacroLegalizer
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.surrogate import GroupCentroidSurrogate, spearman
from repro.utils.host import host_metadata

REWARD = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)


def build_problem(zeta: int = 8, seed: int = 7):
    # Same shape as bench_terminal: cell-heavy so the exact pipeline (QP
    # legalize + cell placement) dominates — the cost tier 1 avoids.
    spec = GeneratorSpec(
        name="bench-surrogate",
        n_movable_macros=12,
        n_pads=12,
        n_cells=160,
        n_nets=220,
        hierarchy_depth=2,
        hierarchy_branching=2,
        seed=seed,
    )
    design = generate_design(spec)
    MixedSizePlacer(n_iterations=2).place(design)
    return coarsen_design(design, GridPlan(design.region, zeta=zeta))


def make_env(coarse, fresh: bool = True) -> MacroGroupPlacementEnv:
    return MacroGroupPlacementEnv(
        copy.deepcopy(coarse) if fresh else coarse, cell_place_iters=1
    )


def random_assignments(env, n: int, seed: int = 0) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    return [
        [int(a) for a in rng.integers(0, env.n_actions, env.n_steps)]
        for _ in range(n)
    ]


def _rate(n_items: int, seconds: float) -> float:
    return n_items / seconds if seconds > 0 else float("inf")


def check_surrogate_bitwise(coarse, n_moves: int) -> dict:
    """Incremental == from-scratch, bit for bit, under random moves."""
    sur = GroupCentroidSurrogate(coarse)
    n, grids = sur.n_macro_groups, coarse.plan.n_grids
    rng = np.random.default_rng(3)
    assignment = [int(a) for a in rng.integers(0, grids, size=n)]
    bitwise = True
    inc_seconds = 0.0
    scratch_seconds = 0.0
    for _ in range(n_moves):
        assignment[int(rng.integers(0, n))] = int(rng.integers(0, grids))
        started = time.perf_counter()
        inc = sur.score(assignment)
        inc_seconds += time.perf_counter() - started
        started = time.perf_counter()
        ref = sur.score_from_scratch(assignment)
        scratch_seconds += time.perf_counter() - started
        bitwise &= inc == ref
    return {
        "n_moves": n_moves,
        "bitwise": bitwise,
        "incremental_scores_per_sec": _rate(n_moves, inc_seconds),
        "scratch_scores_per_sec": _rate(n_moves, scratch_seconds),
        "incremental_speedup": (
            scratch_seconds / inc_seconds if inc_seconds > 0 else float("inf")
        ),
        "net_updates_per_score": sur.n_net_updates / max(sur.n_scores, 1),
    }


def bench_fidelity(coarse, n_assignments: int) -> dict:
    """Spearman(surrogate, exact) over random complete assignments, plus
    the per-call cost ratio between the tiers."""
    env = make_env(coarse)
    sur = GroupCentroidSurrogate(env.coarse)
    assignments = random_assignments(env, n_assignments, seed=11)

    started = time.perf_counter()
    surrogate_scores = [sur.score(a) for a in assignments]
    surrogate_seconds = time.perf_counter() - started
    started = time.perf_counter()
    exact_scores = [env.evaluate_assignment(a) for a in assignments]
    exact_seconds = time.perf_counter() - started

    return {
        "n_assignments": n_assignments,
        "spearman": float(spearman(surrogate_scores, exact_scores)),
        "surrogate_scores_per_sec": _rate(n_assignments, surrogate_seconds),
        "exact_evals_per_sec": _rate(n_assignments, exact_seconds),
        "per_call_cost_ratio": (
            exact_seconds / surrogate_seconds
            if surrogate_seconds > 0
            else float("inf")
        ),
    }


def _quality(result) -> float:
    return min(result.wirelength, result.best_terminal_wirelength)


def bench_two_tier(coarse, net_cfg, explorations: int, topk: int) -> dict:
    """Matched-budget search: single-tier vs top-K pruned vs huge-K.

    The huge-K arm admits every terminal and must reproduce the
    single-tier search bitwise; the finite-K arm is judged on exact-call
    reduction and quality drift.
    """
    out = {"explorations": explorations, "topk": topk}
    net = PolicyValueNet(net_cfg)
    arms = {}
    for label, k in (("baseline", None), ("huge_k", 10**6), ("pruned", topk)):
        env = make_env(coarse)
        placer = MCTSPlacer(
            env, net, REWARD,
            MCTSConfig(explorations=explorations, seed=0, exact_topk=k),
        )
        started = time.perf_counter()
        result = placer.run()
        seconds = time.perf_counter() - started
        arms[label] = result
        out[f"{label}_seconds"] = seconds
        out[f"{label}_exact_evaluations"] = result.n_exact_evaluations
        out[f"{label}_surrogate_evaluations"] = result.n_surrogate_evaluations
        out[f"{label}_seconds_terminal"] = result.seconds_terminal
        out[f"{label}_seconds_surrogate"] = result.seconds_surrogate
        out[f"{label}_wirelength"] = result.wirelength
        out[f"{label}_best_terminal"] = result.best_terminal_wirelength
        out[f"{label}_quality"] = _quality(result)
        if result.surrogate_spearman is not None:
            out[f"{label}_search_spearman"] = result.surrogate_spearman

    base, huge, pruned = arms["baseline"], arms["huge_k"], arms["pruned"]
    out["huge_k_bitwise_baseline"] = (
        huge.assignment == base.assignment
        and huge.wirelength == base.wirelength
        and huge.best_terminal_wirelength == base.best_terminal_wirelength
        and huge.n_exact_evaluations == base.n_exact_evaluations
    )
    out["exact_reduction"] = base.n_exact_evaluations / max(
        pruned.n_exact_evaluations, 1
    )
    out["hpwl_ratio"] = _quality(pruned) / _quality(base)
    # The reported numbers must themselves be exact-pipeline measurements.
    check_env = make_env(coarse)
    out["pruned_committed_is_exact"] = (
        pruned.wirelength == check_env.evaluate_assignment(pruned.assignment)
    )
    out["pruned_best_is_exact"] = (
        pruned.best_terminal_assignment is None
        or pruned.best_terminal_wirelength
        == check_env.evaluate_assignment(pruned.best_terminal_assignment)
    )
    return out


def bench_incremental_legalizer(coarse, n_assignments: int) -> dict:
    """Cached pipeline vs from-scratch: bitwise positions + speedup."""
    env = make_env(coarse)  # only for sizes/assignment sampling
    assignments = random_assignments(env, n_assignments, seed=17)
    assignments.append(list(assignments[0]))  # repeat → region-memo hits

    def positions(c):
        return [(node.x, node.y) for node in c.design.netlist]

    scratch_coarse = copy.deepcopy(coarse)
    scratch = MacroLegalizer()
    started = time.perf_counter()
    scratch_positions = []
    for a in assignments:
        scratch.legalize(scratch_coarse, a)
        scratch_positions.append(positions(scratch_coarse))
    scratch_seconds = time.perf_counter() - started

    incr_coarse = copy.deepcopy(coarse)
    incremental = IncrementalMacroLegalizer()
    started = time.perf_counter()
    bitwise = True
    for a, expected in zip(assignments, scratch_positions):
        incremental.legalize(incr_coarse, a)
        bitwise &= positions(incr_coarse) == expected
    incremental_seconds = time.perf_counter() - started

    out = {
        "n_assignments": len(assignments),
        "bitwise": bitwise,
        "scratch_seconds": scratch_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": (
            scratch_seconds / incremental_seconds
            if incremental_seconds > 0
            else float("inf")
        ),
    }
    out.update(
        {f"cache_{k}": v for k, v in incremental.cache_stats().items()}
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer assignments/explorations; gates bitwise "
             "equivalence and fidelity only",
    )
    parser.add_argument("--output", default="BENCH_pr7.json")
    parser.add_argument(
        "--min-spearman", type=float, default=0.9,
        help="fidelity floor: surrogate must rank exact HPWL at least "
             "this well (always gated)",
    )
    parser.add_argument(
        "--min-exact-reduction", type=float, default=3.0,
        help="matched-budget exact-call reduction the pruned arm must "
             "reach (full mode only)",
    )
    parser.add_argument(
        "--max-hpwl-ratio", type=float, default=1.01,
        help="worst quality drift (pruned/baseline) tolerated at the "
             "matched budget (full mode only)",
    )
    args = parser.parse_args(argv)

    zeta = 8
    net_cfg = NetworkConfig(zeta=zeta, channels=16, res_blocks=2, seed=0)
    if args.quick:
        n_fidelity, n_moves, explorations, topk, n_legalize = 40, 200, 16, 8, 6
    else:
        # γ=320 gives the baseline enough distinct terminal leaves (~120)
        # for the reduction ratio to mean something; K=4 is the matched
        # budget's operating point (4–5× fewer exact calls, quality within
        # noise of the single-tier search).
        n_fidelity, n_moves, explorations, topk, n_legalize = 200, 1000, 320, 4, 16

    host_cores = os.cpu_count() or 1
    coarse = build_problem(zeta=zeta)
    report = {
        "config": {
            "quick": args.quick,
            "zeta": zeta,
            "n_fidelity_assignments": n_fidelity,
            "n_surrogate_moves": n_moves,
            "mcts_explorations": explorations,
            "exact_topk": topk,
            "n_legalize_assignments": n_legalize,
            "min_spearman": args.min_spearman,
            "min_exact_reduction": args.min_exact_reduction,
            "max_hpwl_ratio": args.max_hpwl_ratio,
        },
        "host_cores": host_cores,
        "host": host_metadata(),
    }

    print(f"host cores: {host_cores}")
    print("== surrogate: incremental vs from-scratch ==")
    report["surrogate"] = check_surrogate_bitwise(coarse, n_moves)
    for key, value in report["surrogate"].items():
        print(f"  {key:28s} {value}")

    print("== fidelity: surrogate vs exact HPWL ==")
    report["fidelity"] = bench_fidelity(coarse, n_fidelity)
    for key, value in report["fidelity"].items():
        print(f"  {key:28s} {value}")

    print("== two-tier MCTS at matched budget ==")
    report["two_tier"] = bench_two_tier(coarse, net_cfg, explorations, topk)
    for key, value in report["two_tier"].items():
        print(f"  {key:30s} {value}")

    print("== incremental legalizer ==")
    report["legalizer"] = bench_incremental_legalizer(coarse, n_legalize)
    for key, value in report["legalizer"].items():
        print(f"  {key:28s} {value}")

    # -- gates ----------------------------------------------------------------
    gates = {
        "surrogate_bitwise": report["surrogate"]["bitwise"],
        "legalizer_bitwise": report["legalizer"]["bitwise"],
        "huge_k_bitwise_baseline": report["two_tier"][
            "huge_k_bitwise_baseline"
        ],
        "pruned_results_exact": (
            report["two_tier"]["pruned_committed_is_exact"]
            and report["two_tier"]["pruned_best_is_exact"]
        ),
        "fidelity": report["fidelity"]["spearman"] >= args.min_spearman,
    }
    # Budget-dependent gates only bind in full mode: a CI runner's quick
    # budget is too small for the reduction ratio to be meaningful.
    if not args.quick:
        gates["exact_reduction"] = (
            report["two_tier"]["exact_reduction"] >= args.min_exact_reduction
        )
        gates["hpwl_within_tolerance"] = (
            report["two_tier"]["hpwl_ratio"] <= args.max_hpwl_ratio
        )
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates

    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:28s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not gates["all_passed"]:
        print("TWO-TIER REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
