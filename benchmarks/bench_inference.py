#!/usr/bin/env python
"""Microbenchmark for the batched inference engine.

Measures, on one synthetic design:

- **forwards/sec** — states evaluated per second through the policy/value
  network, sequentially (B=1, the pre-batching path) and via
  ``evaluate_batch`` at B ∈ {8, 32};
- **RL episodes/sec** — rollout throughput of ``ActorCriticTrainer`` at
  ``n_envs`` 1 vs 8 (synchronized vectorized episodes);
- **MCTS explorations/sec** — search throughput at ``leaf_batch`` 1 vs 8
  (virtual-loss leaf batching + the transposition eval cache);
- **equivalence** — batched-vs-sequential agreement checks; these are the
  only thing that can fail the script (exit 1).  Throughput numbers are
  reported, never gated, so slow CI machines cannot flake the job.

Writes everything to a JSON report (default ``BENCH_pr2.json``)::

    python benchmarks/bench_inference.py --quick --output BENCH_pr2.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PlaneView, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.coarsen import coarsen_design
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.utils.host import host_metadata

REWARD = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)


def build_problem(zeta: int = 8, seed: int = 7):
    # Small cell count keeps the terminal legalize-and-place calls cheap, so
    # the RL/MCTS arms measure the inference engine rather than the QP
    # solver (which batching cannot help and which dominates wall-clock on
    # cell-heavy designs).
    spec = GeneratorSpec(
        name="bench",
        n_movable_macros=10,
        n_pads=12,
        n_cells=48,
        n_nets=70,
        hierarchy_depth=2,
        hierarchy_branching=2,
        seed=seed,
    )
    design = generate_design(spec)
    MixedSizePlacer(n_iterations=2).place(design)
    return coarsen_design(design, GridPlan(design.region, zeta=zeta))


def random_states(zeta: int, n: int, seed: int = 0) -> list[PlaneView]:
    rng = np.random.default_rng(seed)
    states = []
    for i in range(n):
        s_a = rng.random((zeta, zeta))
        s_a[s_a < 0.3] = 0.0
        states.append(PlaneView(rng.random((zeta, zeta)), s_a, i % 8, 8))
    return states


def _rate(n_items: int, seconds: float) -> float:
    return n_items / seconds if seconds > 0 else float("inf")


def bench_forwards(net: PolicyValueNet, zeta: int, n_states: int) -> dict:
    """states/sec sequentially vs batched at B ∈ {8, 32}."""
    states = random_states(zeta, n_states)
    # warmup (fills im2col scratch buffers)
    net.evaluate_batch(states[:32])
    for s in states[:2]:
        net.evaluate(s.s_p, s.s_a, s.t, s.total_steps)

    out = {}
    started = time.perf_counter()
    for s in states:
        net.evaluate(s.s_p, s.s_a, s.t, s.total_steps)
    out["b1_per_sec"] = _rate(n_states, time.perf_counter() - started)

    for b in (8, 32):
        started = time.perf_counter()
        for lo in range(0, n_states, b):
            net.evaluate_batch(states[lo : lo + b])
        out[f"b{b}_per_sec"] = _rate(n_states, time.perf_counter() - started)

    out["speedup_b8"] = out["b8_per_sec"] / out["b1_per_sec"]
    out["speedup_b32"] = out["b32_per_sec"] / out["b1_per_sec"]
    return out


def bench_rl(coarse, net_cfg: NetworkConfig, n_episodes: int) -> dict:
    """episodes/sec with sequential (n_envs=1) vs vectorized (n_envs=8)
    rollouts.  Fresh trainer per arm so Adam/buffer state cannot leak."""
    out = {}
    for n_envs in (1, 8):
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        trainer = ActorCriticTrainer(
            env, PolicyValueNet(net_cfg), REWARD,
            update_every=10**9,  # measure rollouts, not updates
            rng=0, n_envs=n_envs,
        )
        done = 0
        started = time.perf_counter()
        while done < n_episodes:
            wave = min(n_envs, n_episodes - done)
            trainer.play_episodes(wave)
            done += wave
        out[f"envs{n_envs}_eps_per_sec"] = _rate(
            done, time.perf_counter() - started
        )
    out["speedup"] = out["envs8_eps_per_sec"] / out["envs1_eps_per_sec"]
    return out


def bench_mcts(coarse, net_cfg: NetworkConfig, explorations: int) -> dict:
    """explorations/sec at leaf_batch 1 vs 8 (same γ budget).

    ``c_puct=5`` keeps selection diversified so both arms expand a fresh
    leaf on most explorations — the network-bound regime leaf batching
    targets.  (At the paper's 1.05, a high-Q path funnels the sequential
    search into already-evaluated nodes and neither arm is network-bound.)
    Note the arms do *different real work* at equal γ: virtual loss spreads
    a wave's descents, so k=8 evaluates more distinct leaves; the
    per-network-evaluation rate isolates the batching gain itself.
    """
    out = {}
    for k in (1, 8):
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        placer = MCTSPlacer(
            env, PolicyValueNet(net_cfg), REWARD,
            MCTSConfig(
                explorations=explorations, leaf_batch=k, c_puct=5.0, seed=0
            ),
        )
        started = time.perf_counter()
        result = placer.run()
        seconds = time.perf_counter() - started
        total = explorations * env.n_steps
        out[f"k{k}_explorations_per_sec"] = _rate(total, seconds)
        out[f"k{k}_network_evaluations"] = result.n_network_evaluations
        out[f"k{k}_net_evals_per_sec"] = _rate(
            result.n_network_evaluations, result.seconds_evaluation
        )
        out[f"k{k}_eval_cache_hits"] = result.n_eval_cache_hits
        out[f"k{k}_seconds_selection"] = result.seconds_selection
        out[f"k{k}_seconds_evaluation"] = result.seconds_evaluation
        out[f"k{k}_seconds_terminal"] = result.seconds_terminal
        out[f"k{k}_wirelength"] = result.wirelength
    out["speedup"] = (
        out["k8_explorations_per_sec"] / out["k1_explorations_per_sec"]
    )
    out["speedup_per_eval"] = (
        out["k8_net_evals_per_sec"] / out["k1_net_evals_per_sec"]
    )
    return out


def check_equivalence(coarse, net_cfg: NetworkConfig, zeta: int) -> dict:
    """The regression gates: batched paths must agree with sequential ones."""
    import copy

    checks = {}

    # 1. evaluate_batch == per-state evaluate (to float32 precision).
    net = PolicyValueNet(net_cfg)
    states = random_states(zeta, 16, seed=3)
    probs_b, values_b = net.evaluate_batch(states)
    ok = True
    for i, s in enumerate(states):
        p, v = net.evaluate(s.s_p, s.s_a, s.t, s.total_steps)
        ok &= bool(np.allclose(probs_b[i], p, rtol=1e-4, atol=1e-7))
        ok &= bool(np.isclose(values_b[i], v, rtol=1e-3, atol=1e-6))
    checks["batch_matches_sequential"] = ok

    # 2. n_envs=1 wave is bitwise the sequential rollout (same RNG stream).
    def trainer(seed):
        env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=1)
        return ActorCriticTrainer(
            env, PolicyValueNet(net_cfg), REWARD, rng=seed, n_envs=1
        )

    a, b = trainer(11), trainer(11)
    ta, wa = a.play_episode()
    [(tb, wb)] = b.play_episodes(1)
    checks["rollout_n1_bitwise"] = bool(
        wa == wb and [t.action for t in ta] == [t.action for t in tb]
    )

    # 3. K=1 search is deterministic across placer instances (the committed
    #    path never depends on wave bookkeeping).
    def search(k):
        env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=1)
        return MCTSPlacer(
            env, PolicyValueNet(net_cfg), REWARD,
            MCTSConfig(explorations=8, leaf_batch=k, seed=0),
        ).run()

    checks["mcts_k1_deterministic"] = bool(
        search(1).assignment == search(1).assignment
    )
    checks["all_passed"] = all(checks.values())
    return checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer states/episodes/explorations",
    )
    parser.add_argument("--output", default="BENCH_pr2.json")
    args = parser.parse_args(argv)

    zeta = 8
    # The repo's default CPU-sized network: per-state compute is small, so
    # the B=1 path is dominated by per-call dispatch — exactly the overhead
    # the batched engine amortizes.
    net_cfg = NetworkConfig(zeta=zeta, channels=16, res_blocks=2, seed=0)
    if args.quick:
        n_states, n_episodes, explorations = 128, 8, 16
    else:
        n_states, n_episodes, explorations = 512, 24, 48

    coarse = build_problem(zeta=zeta)
    report = {
        "config": {
            "quick": args.quick,
            "zeta": zeta,
            "channels": net_cfg.channels,
            "res_blocks": net_cfg.res_blocks,
            "n_states": n_states,
            "rl_episodes": n_episodes,
            "mcts_explorations": explorations,
        },
        "host": host_metadata(),
    }

    print("== forwards/sec (policy/value network) ==")
    report["forwards"] = bench_forwards(PolicyValueNet(net_cfg), zeta, n_states)
    for key, value in report["forwards"].items():
        print(f"  {key:16s} {value:10.2f}")

    print("== RL rollout episodes/sec ==")
    report["rl"] = bench_rl(coarse, net_cfg, n_episodes)
    for key, value in report["rl"].items():
        print(f"  {key:22s} {value:10.3f}")

    print("== MCTS explorations/sec ==")
    report["mcts"] = bench_mcts(coarse, net_cfg, explorations)
    for key, value in report["mcts"].items():
        print(f"  {key:26s} {value:10.2f}")

    print("== equivalence checks ==")
    report["equivalence"] = check_equivalence(coarse, net_cfg, zeta)
    for key, value in report["equivalence"].items():
        print(f"  {key:26s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not report["equivalence"]["all_passed"]:
        print("EQUIVALENCE REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
