"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables/figures at a reduced,
CPU-friendly scale.  The scale is selected by the ``REPRO_BENCH_BUDGET``
environment variable:

- ``smoke``   — seconds per bench; sanity only (CI).
- ``default`` — minutes per bench; enough budget for the paper's
  qualitative shapes (who wins, rough factors) to emerge.
- ``full``    — the full circuit lists and the largest CPU budget; expect
  roughly an hour for the whole suite.

Each bench prints the paper-style table to stdout (run with ``-s``) and
stores the same numbers in ``benchmark.extra_info`` so they survive in the
pytest-benchmark JSON output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchBudget:
    """Knobs every bench derives its workload from."""

    name: str
    episodes: int
    explorations: int
    calibration_episodes: int
    iccad04_circuits: tuple[str, ...]
    industrial_circuits: tuple[str, ...]
    iccad04_scale: float
    iccad04_macro_scale: float
    industrial_scale: float
    industrial_macro_scale: float
    fig_episodes: int
    checkpoint_every: int


_BUDGETS = {
    "smoke": BenchBudget(
        name="smoke",
        episodes=30,
        explorations=12,
        calibration_episodes=6,
        iccad04_circuits=("ibm01",),
        industrial_circuits=("Cir1",),
        iccad04_scale=0.005,
        iccad04_macro_scale=0.04,
        industrial_scale=0.0008,
        industrial_macro_scale=0.3,
        fig_episodes=40,
        checkpoint_every=10,
    ),
    "default": BenchBudget(
        name="default",
        episodes=300,
        explorations=120,
        calibration_episodes=20,
        iccad04_circuits=("ibm01", "ibm06", "ibm10"),
        industrial_circuits=("Cir1", "Cir3", "Cir6"),
        iccad04_scale=0.01,
        iccad04_macro_scale=0.08,
        industrial_scale=0.001,
        industrial_macro_scale=0.4,
        fig_episodes=240,
        checkpoint_every=60,
    ),
    "full": BenchBudget(
        name="full",
        episodes=600,
        explorations=300,
        calibration_episodes=30,
        iccad04_circuits=(
            "ibm01", "ibm02", "ibm03", "ibm04", "ibm06", "ibm07", "ibm08",
            "ibm09", "ibm10", "ibm11", "ibm12", "ibm13", "ibm14", "ibm15",
            "ibm16", "ibm17", "ibm18",
        ),
        industrial_circuits=("Cir1", "Cir2", "Cir3", "Cir4", "Cir5", "Cir6"),
        iccad04_scale=0.01,
        iccad04_macro_scale=0.08,
        industrial_scale=0.002,
        industrial_macro_scale=0.5,
        fig_episodes=400,
        checkpoint_every=80,
    ),
}


@pytest.fixture(scope="session")
def budget() -> BenchBudget:
    name = os.environ.get("REPRO_BENCH_BUDGET", "default").lower()
    if name not in _BUDGETS:
        raise ValueError(
            f"REPRO_BENCH_BUDGET={name!r}; expected one of {sorted(_BUDGETS)}"
        )
    return _BUDGETS[name]


def placer_config(budget: BenchBudget, seed: int = 0):
    """The flow configuration every bench uses for 'Ours'."""
    from dataclasses import replace

    from repro.core.config import PlacerConfig
    from repro.mcts.search import MCTSConfig

    return replace(
        PlacerConfig.benchmark(seed=seed),
        episodes=budget.episodes,
        calibration_episodes=budget.calibration_episodes,
        mcts=MCTSConfig(c_puct=1.05, explorations=budget.explorations, seed=seed),
    )


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    Host metadata rides along in ``extra_info`` so every benchmark JSON
    records what machine produced its numbers.
    """
    from repro.utils.host import host_metadata

    benchmark.extra_info.setdefault("host", host_metadata())
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
