"""Ablation — reward shift α sweep (Eq. 9; paper uses α ∈ [0.5, 1]).

The paper's Sec. III-E claim is that training converges faster when the
average reward sits *slightly above zero*.  This bench trains the same
agent under α ∈ {−0.75, 0, 0.5, 0.75, 1.0, 3.0} and reports early-phase
improvement per α.  Expected shape: the paper's band [0.5, 1] performs at
least as well as the extremes (strongly negative or far-positive shifts).

The α values come from a :class:`repro.study.StudySpec` expansion — the
same declarative sweep machinery behind ``repro study run`` — instead of
a private loop, so the bench and a real α study agree on the points.
"""

from __future__ import annotations

import copy

import numpy as np

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    NormalizedReward,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.netlist.suites import make_iccad04_circuit
from repro.study import StudySpec

#: the declarative sweep; ``alpha`` is the PlacerConfig knob the flow
#: feeds into NormalizedReward (Eq. 9)
ALPHA_SWEEP = StudySpec.from_json({
    "name": "ablation-alpha",
    "circuit": "ibm06",
    "preset": "fast",
    "axes": [{"knob": "alpha", "values": [-0.75, 0.0, 0.5, 0.75, 1.0, 3.0]}],
})


def test_ablation_alpha(benchmark, budget):
    entry = make_iccad04_circuit(
        "ibm06", scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))

    env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    base, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength,
        n_episodes=budget.calibration_episodes, rng=1,
    )
    episodes = max(budget.fig_episodes // 2, 20)

    def train_alpha(alpha: float) -> float:
        reward_fn = NormalizedReward(
            w_max=base.w_max, w_min=base.w_min, w_avg=base.w_avg, alpha=alpha
        )
        e = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
        net = PolicyValueNet(
            NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0)
        )
        trainer = ActorCriticTrainer(
            e, net, reward_fn, lr=2e-3, update_every=10,
            epochs_per_update=3, entropy_coef=0.01, rng=0,
        )
        ws = trainer.train(episodes).wirelengths
        head = float(np.mean(ws[: max(episodes // 4, 5)]))
        tail = float(np.mean(ws[-max(episodes // 4, 5):]))
        return head - tail  # improvement (positive = converging)

    def run():
        return {
            point.assignment()["alpha"]: train_alpha(
                point.assignment()["alpha"]
            )
            for point in ALPHA_SWEEP.expand()
        }

    out = run_once(benchmark, run)
    print("\nAblation: reward shift alpha sweep (paper: alpha in [0.5, 1])")
    for a, gain in out.items():
        marker = "  <- paper band" if 0.5 <= a <= 1.0 else ""
        print(f"  alpha={a:6.2f}  improvement={gain:8.0f}{marker}")
    benchmark.extra_info["sweep"] = {str(k): v for k, v in out.items()}

    band_best = max(out[a] for a in (0.5, 0.75, 1.0))
    assert band_best > 0, "the paper's alpha band must show convergence"
    if budget.name != "smoke":
        extremes_best = max(out[-0.75], out[3.0])
        assert band_best >= extremes_best - abs(band_best) * 0.5, (
            "the paper band should be competitive with extreme shifts"
        )
