"""Ablation — PUCT exploration constant c (Eq. 11; paper uses c = 1.05).

Sweeps c over a range spanning pure exploitation (c → 0) to heavy
exploration and reports the committed wirelength for each.  Expected
shape: extreme settings do not dominate the paper's moderate choice — the
c = 1.05 result is within a few percent of the best sweep point.

The sweep itself is expanded through the study engine's spec API
(:class:`repro.study.StudySpec`), the same expansion ``repro study run``
uses — so the bench's points are, by construction, the points a c-sweep
study would submit.
"""

from __future__ import annotations

import copy

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.suites import make_iccad04_circuit
from repro.study import StudySpec

#: the declarative sweep; its expansion order (deterministic) is the
#: bench's execution order
PUCT_SWEEP = StudySpec.from_json({
    "name": "ablation-puct-c",
    "circuit": "ibm01",
    "preset": "fast",
    "axes": [{"knob": "mcts.c_puct", "values": [0.05, 0.5, 1.05, 2.5, 8.0]}],
})


def test_ablation_puct_c(benchmark, budget):
    entry = make_iccad04_circuit(
        "ibm01", scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))
    env = MacroGroupPlacementEnv(coarse, cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength,
        n_episodes=budget.calibration_episodes, rng=1,
    )
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    trainer.train(max(budget.episodes // 2, 20))
    gamma = max(budget.explorations // 2, 8)

    def run():
        out = {}
        for point in PUCT_SWEEP.expand():
            c = point.assignment()["mcts.c_puct"]
            e = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
            result = MCTSPlacer(
                e, net, reward_fn,
                MCTSConfig(c_puct=c, explorations=gamma, seed=0),
            ).run()
            out[c] = min(result.wirelength, result.best_terminal_wirelength)
        return out

    out = run_once(benchmark, run)
    print("\nAblation: PUCT constant c sweep (paper: c = 1.05)")
    for c, wl in out.items():
        marker = "  <- paper" if c == 1.05 else ""
        print(f"  c={c:5.2f}  wl={wl:8.0f}{marker}")
    benchmark.extra_info["sweep"] = {str(k): v for k, v in out.items()}

    best = min(out.values())
    assert out[1.05] <= best * 1.1, (
        "the paper's c=1.05 should be within 10% of the sweep optimum"
    )
