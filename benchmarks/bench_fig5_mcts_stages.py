"""Fig. 5 — MCTS rewards at successive RL training stages (ibm01, ibm06).

Paper setup: checkpoint the agent every 35 iterations, run MCTS from each
checkpoint, compare against the raw RL reward at the same stage.  Paper
findings: (1) MCTS ≥ RL at every stage; (2) early-stage MCTS approaches
final-stage RL.

This bench reproduces both circuits at reduced scale and asserts both
properties (majority-of-stages form, since miniature training is noisy).
"""

from __future__ import annotations

import copy

import numpy as np

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.suites import make_iccad04_circuit


def _stage_table(circuit: str, budget) -> list[dict]:
    entry = make_iccad04_circuit(
        circuit, scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))
    env = MacroGroupPlacementEnv(coarse, cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength,
        n_episodes=budget.calibration_episodes, rng=1,
    )
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    history = trainer.train(
        budget.fig_episodes, checkpoint_every=budget.checkpoint_every
    )

    rows = []
    for snap in history.snapshots:
        stage_net = trainer.network_at(snap)
        stage_env = MacroGroupPlacementEnv(
            copy.deepcopy(coarse), cell_place_iters=2
        )
        result = MCTSPlacer(
            stage_env, stage_net, reward_fn,
            MCTSConfig(explorations=max(budget.explorations // 2, 8), seed=0),
        ).run()
        recent = history.rewards[max(0, snap.episode - 30) : snap.episode]
        rows.append(
            {
                "episode": snap.episode,
                "rl_reward": float(np.mean(recent)),
                "mcts_reward": max(
                    result.reward,
                    float(reward_fn(result.best_terminal_wirelength)),
                ),
                "mcts_wl": result.wirelength,
            }
        )
    return rows


def test_fig5_mcts_vs_rl_stages(benchmark, budget):
    circuits = ("ibm01", "ibm06") if budget.name != "smoke" else ("ibm01",)

    def run():
        return {c: _stage_table(c, budget) for c in circuits}

    tables = run_once(benchmark, run)
    benchmark.extra_info["stages"] = tables

    for circuit, rows in tables.items():
        print(f"\nFig. 5 (miniature) — {circuit}:")
        print(f"  {'episode':>8} {'RL':>8} {'MCTS':>8} {'MCTS WL':>9}")
        for r in rows:
            print(f"  {r['episode']:>8} {r['rl_reward']:>8.3f} "
                  f"{r['mcts_reward']:>8.3f} {r['mcts_wl']:>9.0f}")

        wins = sum(1 for r in rows if r["mcts_reward"] >= r["rl_reward"])
        assert wins >= max(1, int(0.7 * len(rows))), (
            f"{circuit}: MCTS should beat RL at (most) stages, won {wins}/{len(rows)}"
        )
        # Early-stage MCTS approaches final-stage RL.
        final_rl = rows[-1]["rl_reward"]
        early_mcts = rows[0]["mcts_reward"]
        assert early_mcts >= final_rl - 0.35, (
            f"{circuit}: early MCTS ({early_mcts:.3f}) should approach final "
            f"RL ({final_rl:.3f})"
        )
