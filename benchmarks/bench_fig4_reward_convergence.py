"""Fig. 4 — RL convergence speed under different reward functions.

Paper setup: ibm10, three rewards — Eq. 9 (slightly above zero), Eq. 9
without α (centered at zero), and the intuitive −W.  Paper finding: the
α-shifted curve rises most rapidly; −W never converges ("the agent may
perceive all actions as inadequate if it consistently receives negative
rewards").

This bench trains all three at reduced scale and asserts the shape:
early-phase improvement ordered with-α ≥ without-α, and −W showing no
meaningful improvement.
"""

from __future__ import annotations

import copy

import numpy as np

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NegativeWirelength,
    NetworkConfig,
    NormalizedReward,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.netlist.suites import make_iccad04_circuit


def _train(reward_fn, coarse, episodes: int) -> list[float]:
    env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    return trainer.train(episodes).wirelengths


def test_fig4_reward_convergence(benchmark, budget):
    entry = make_iccad04_circuit(
        "ibm10", scale=budget.iccad04_scale * 0.4,
        macro_scale=budget.iccad04_macro_scale * 0.5,
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))

    env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    calibrated, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength, alpha=0.75,
        n_episodes=budget.calibration_episodes, rng=1,
    )
    no_alpha = NormalizedReward(
        w_max=calibrated.w_max, w_min=calibrated.w_min,
        w_avg=calibrated.w_avg, alpha=0.0,
    )
    episodes = budget.fig_episodes

    def run():
        return {
            "with_alpha": _train(calibrated, coarse, episodes),
            "no_alpha": _train(no_alpha, coarse, episodes),
            "neg_w": _train(NegativeWirelength(), coarse, episodes),
        }

    curves = run_once(benchmark, run)
    phase = max(episodes // 6, 5)

    def phases(ws):
        return [float(np.mean(ws[i : i + phase])) for i in range(0, episodes, phase)]

    table = {k: phases(v) for k, v in curves.items()}
    print("\nFig. 4 (miniature): phase-mean wirelength per reward function")
    for k, row in table.items():
        print(f"  {k:12s} " + "  ".join(f"{p:8.0f}" for p in row))
    benchmark.extra_info["phases"] = table

    # Shape assertions (generous: miniature-scale training is noisy).  At
    # smoke budget only structural sanity is checked — a 40-episode run
    # carries no convergence signal.
    improv = {k: row[0] - row[-1] for k, row in table.items()}
    print(f"  improvement: {improv}")
    assert all(np.isfinite(v) for row in table.values() for v in row)
    if budget.name != "smoke":
        assert improv["with_alpha"] > 0, "Eq.9-with-alpha must improve"
        # −W must improve by clearly less than the normalized rewards.
        assert improv["neg_w"] < 0.5 * max(
            improv["with_alpha"], improv["no_alpha"]
        )
        # Early-phase speed: with-alpha at least as fast as the −W baseline.
        early = {k: row[0] - row[min(2, len(row) - 1)] for k, row in table.items()}
        assert early["with_alpha"] >= early["neg_w"]
