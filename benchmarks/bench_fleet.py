"""Fleet benchmark: multi-shard throughput scaling and the shard-kill gate.

Two questions, one tiny suite circuit:

1. **Does sharding buy throughput?**  Submits the same batch of jobs to
   a fresh fleet directory twice — once drained by a single shard
   daemon, once by three — and measures completed jobs per minute.
   Each shard runs as its own OS process (the real deployment shape),
   so this also exercises lease claiming under genuine contention.
   Gate: the 3-shard fleet is no slower than the single shard (on a
   1-core host the speedup is bounded by the core count; the gate only
   demands the coordination layer never costs throughput).
2. **Does the fleet survive whole-shard loss?**  Runs the shard-kill
   drill (:func:`repro.service.chaos.run_fleet_drill`): 3 shards,
   repeated whole-shard SIGKILLs while work is in flight, plus one
   poisoned job.  Gate: every job terminal — DONE with HPWL
   *bit-identical* to a single-daemon baseline, or QUARANTINED with a
   journaled reason; exactly one terminal record per job in the shared
   journal.

Writes a JSON report (default ``BENCH_pr6.json``)::

    python benchmarks/bench_fleet.py --quick --output BENCH_pr6.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from dataclasses import replace

from repro.service.chaos import (
    DEFAULT_SPEC,
    _spawn_shard,
    format_fleet_report,
    run_fleet_drill,
)
from repro.service.fleet import FleetPaths
from repro.service.jobs import DONE, JobStore
from repro.service.service import submit_job
from repro.utils.host import host_metadata


def bench_throughput(
    root: str, n_shards: int, n_jobs: int, *, max_seconds: float
) -> dict:
    """Drain *n_jobs* with *n_shards* shard processes; report jobs/minute."""
    fleet_dir = os.path.join(root, f"shards-{n_shards}")
    paths = FleetPaths(fleet_dir).ensure()
    job_ids = [
        submit_job(fleet_dir, replace(DEFAULT_SPEC, seed=DEFAULT_SPEC.seed + i))
        for i in range(n_jobs)
    ]
    started = time.perf_counter()
    procs = [
        _spawn_shard(
            fleet_dir, f"shard-{i}",
            lease_ttl=5.0, poll_interval=0.05, max_seconds=max_seconds,
        )
        for i in range(n_shards)
    ]
    for proc in procs:
        proc.wait(timeout=max_seconds + 30)
    elapsed = time.perf_counter() - started
    store = JobStore(paths.journal)
    store.load()
    done = sum(1 for j in job_ids if store.get(j).state == DONE)
    return {
        "n_shards": n_shards,
        "n_jobs": n_jobs,
        "all_done": done == n_jobs,
        "seconds": round(elapsed, 3),
        "jobs_per_minute": round(done / (elapsed / 60.0), 2),
    }


def bench_kill_drill(root: str, *, n_jobs: int, max_seconds: float) -> dict:
    report = run_fleet_drill(
        root, n_shards=3, n_jobs=n_jobs, n_kills=2,
        lease_ttl=1.5, max_seconds=max_seconds,
    )
    print(format_fleet_report(report))
    return {
        "ok": report["ok"],
        "kills": report.get("kills"),
        "reclaims": report.get("reclaims"),
        "total_seconds": report.get("total_seconds"),
        "checks": [
            {"name": c["name"], "ok": c["ok"]} for c in report["checks"]
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer jobs per throughput batch and in the drill",
    )
    parser.add_argument("--output", default="BENCH_pr6.json")
    parser.add_argument("--max-seconds", type=float, default=240.0,
                        dest="max_seconds")
    args = parser.parse_args(argv)

    n_jobs = 4 if args.quick else 8
    drill_jobs = 3 if args.quick else 6
    root = tempfile.mkdtemp(prefix="bench-fleet-")
    report = {
        "config": {
            "quick": args.quick, "spec": DEFAULT_SPEC.to_json(),
            "throughput_jobs": n_jobs, "drill_jobs": drill_jobs,
        },
        "host": host_metadata(),
    }
    try:
        print("== throughput (1 shard vs 3 shards, same batch) ==")
        throughput = {}
        for n_shards in (1, 3):
            result = bench_throughput(
                os.path.join(root, "throughput"), n_shards, n_jobs,
                max_seconds=args.max_seconds,
            )
            throughput[str(n_shards)] = result
            print(
                f"  {n_shards} shard(s): {result['jobs_per_minute']:.2f} "
                f"jobs/min over {result['seconds']:.1f}s "
                f"(all_done={result['all_done']})"
            )
        report["throughput"] = throughput

        print("== shard-kill drill (whole-shard SIGKILL, 3 shards) ==")
        report["kill_drill"] = bench_kill_drill(
            os.path.join(root, "drill"), n_jobs=drill_jobs,
            max_seconds=args.max_seconds,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    one, three = report["throughput"]["1"], report["throughput"]["3"]
    cores = os.cpu_count() or 1
    report["throughput"]["cpu_count"] = cores
    report["throughput"]["scaling_ratio"] = round(
        three["jobs_per_minute"] / max(one["jobs_per_minute"], 1e-9), 3
    )
    gates = {
        "throughput_all_jobs_done": one["all_done"] and three["all_done"],
        # with real cores to spread over, coordination overhead must never
        # make more shards slower (10% noise headroom); on a 1-core host
        # three processes time-slice one core, so only completeness gates
        # and the measured ratio is recorded for the record
        "sharding_not_slower": (
            three["jobs_per_minute"] >= one["jobs_per_minute"] * 0.9
            if cores >= 2
            else three["all_done"]
        ),
        "kill_drill_passed": report["kill_drill"]["ok"],
    }
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates
    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:30s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not gates["all_passed"]:
        print("FLEET GATE REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
