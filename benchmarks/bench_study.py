"""Study-engine benchmark: warm sharing, kill-resume, report quality.

Runs one small 2x2 MCTS-knob sweep (all four points share a single
pre-training fingerprint) three ways and gates on the study engine's
headline claims:

1. **Warm sharing** — an uninterrupted ``Study.run`` performs exactly one
   cold pre-train; the other N-1 points reuse the warm artifacts
   (verified from both the per-run manifest tags and the per-fingerprint
   cache counters in ``metrics.json``).
2. **Kill and resume** — the same sweep is driven by ``repro study run``
   in a subprocess that is SIGKILLed as soon as its first point lands;
   re-running the same command completes the study without ever
   resubmitting a DONE point, and every per-point HPWL is bit-identical
   to the uninterrupted run's.
3. **Report quality** — the consolidated report carries a non-empty
   Pareto front and a sensitivity entry for every swept knob.
4. **Ablation parity** — the sweeps the refactored ablation benches
   expand through the study spec API produce the historical point lists,
   and their expanded configs fingerprint identically to configs built
   by direct field replacement (the pre-refactor construction).

Writes a JSON report (default ``BENCH_pr9.json``)::

    python benchmarks/bench_study.py --quick --output BENCH_pr9.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import repro
from repro.runtime.checkpoint import config_fingerprint
from repro.service.jobs import write_json_atomic
from repro.study import Study, StudySpec, build_report, save_report
from repro.utils.events import read_jsonl
from repro.utils.host import host_metadata

#: the benchmark sweep: two MCTS knobs, so every point shares one
#: pre-training fingerprint and the warm DAG collapses to 1 cold + N-1 warm
SPEC_PAYLOAD = {
    "name": "bench-study",
    "circuit": "ibm01",
    "scale": 0.004,
    "macro_scale": 0.04,
    "preset": "fast",
    "seeds": [3],
    "axes": [
        {"knob": "mcts.c_puct", "values": [0.5, 2.5]},
        {"knob": "mcts.explorations", "values": [4, 8]},
    ],
}


def _spec(quick: bool) -> StudySpec:
    payload = dict(SPEC_PAYLOAD)
    if not quick:
        payload["seeds"] = [3, 4]
    return StudySpec.from_json(payload)


def _point_hpwls(study: Study) -> dict[str, float]:
    return {
        p["point_id"]: p["hpwl"] for p in study.status()["points"]
    }


def bench_warm_sharing(root: str, spec: StudySpec) -> tuple[dict, dict]:
    """Uninterrupted in-process run; returns (section, baseline hpwls)."""
    study_dir = os.path.join(root, "study-a")
    service_dir = os.path.join(root, "svc-a")
    study = Study.create(study_dir, spec)

    start = time.perf_counter()
    status = study.run(service_dir, serve=True, workers=1, poll=0.05)
    wall = time.perf_counter() - start
    report = build_report(study, service_dir)
    save_report(study, report)

    n = status["total"]
    groups = report["warm_groups"]
    counters = report["warm_fingerprint_counters"] or {}
    group_counter = counters.get(groups[0]["fingerprint"], {}) if groups else {}
    section = {
        "points": n,
        "done": status["counts"]["DONE"],
        "wall_seconds": round(wall, 3),
        "groups": len(groups),
        "cold_pretrains": sum(g["cold_pretrains"] for g in groups),
        "warm_reuses": sum(g["warm_reuses"] for g in groups),
        "one_cold_per_fingerprint": report["one_cold_per_fingerprint"],
        "counter_stores": group_counter.get("stores"),
        "counter_hits": group_counter.get("hits"),
        "pareto_points": len(report["pareto"]),
        "sensitivity_knobs": sorted(report["sensitivity"]),
        "failures": len(report["failures"]),
    }
    return section, _point_hpwls(study)


def _run_study_cli(study_dir: str, spec_path: str, service_dir: str,
                   timeout: float, kill_on_first_done: bool) -> dict:
    """Drive ``repro study run --serve`` in a subprocess.

    With *kill_on_first_done*, SIGKILL the process the moment the study
    journal records its first DONE point (mid-flight, followers pending).
    """
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro", "study", "run",
        "--study-dir", study_dir, "--spec", spec_path,
        "--service-dir", service_dir, "--serve", "--poll", "0.05",
    ]
    journal = os.path.join(study_dir, "journal.jsonl")
    proc = subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    if not kill_on_first_done:
        try:
            out, _ = proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            return {"rc": None, "timed_out": True}
        return {"rc": proc.returncode, "timed_out": False,
                "tail": out.splitlines()[-3:]}

    deadline = time.monotonic() + timeout
    killed_with_pending = False
    while time.monotonic() < deadline and proc.poll() is None:
        records = [r for r in read_jsonl(journal)
                   if r.get("record") == "point"]
        done = {r["id"] for r in records if r.get("state") == "DONE"}
        if done:
            proc.kill()
            proc.wait()
            # Mid-flight if any point had not yet reached a terminal state.
            terminal = {r["id"] for r in records
                        if r.get("state") in
                        ("DONE", "FAILED", "CANCELLED", "QUARANTINED")}
            killed_with_pending = bool(
                {r["id"] for r in records} - terminal
            ) or len(terminal) < len(done) + 1
            break
        time.sleep(0.02)
    else:
        proc.kill()
        proc.wait()
        return {"rc": proc.returncode, "timed_out": True}
    return {"rc": proc.returncode, "timed_out": False,
            "killed_midflight": killed_with_pending}


def bench_kill_resume(root: str, spec: StudySpec,
                      baseline: dict[str, float], timeout: float) -> dict:
    """SIGKILL drill: kill after first DONE, resume, compare bitwise."""
    study_dir = os.path.join(root, "study-b")
    service_dir = os.path.join(root, "svc-b")
    spec_path = os.path.join(root, "spec.json")
    write_json_atomic(spec_path, spec.to_json())

    kill = _run_study_cli(study_dir, spec_path, service_dir,
                          timeout=timeout, kill_on_first_done=True)
    resume = _run_study_cli(study_dir, spec_path, service_dir,
                            timeout=timeout, kill_on_first_done=False)

    # A DONE resubmission would show up as a SUBMITTED journal record for
    # a point that already journalled DONE.
    done_seen: set[str] = set()
    resubmitted_after_done = 0
    for record in read_jsonl(os.path.join(study_dir, "journal.jsonl")):
        if record.get("record") != "point":
            continue
        if record.get("state") == "DONE":
            done_seen.add(record["id"])
        elif record.get("state") == "SUBMITTED" and record["id"] in done_seen:
            resubmitted_after_done += 1

    study = Study.load(study_dir)
    status = study.status()
    resumed = _point_hpwls(study)
    return {
        "kill": kill,
        "resume_rc": resume.get("rc"),
        "resume_timed_out": resume.get("timed_out"),
        "done": status["counts"]["DONE"],
        "points": status["total"],
        "done_resubmissions": resubmitted_after_done,
        "bitwise_identical_to_uninterrupted": resumed == baseline,
        "hpwls": {k: resumed[k] for k in sorted(resumed)},
    }


def bench_ablation_parity() -> dict:
    """The refactored benches must expand the historical sweep points."""
    from benchmarks.bench_ablation_alpha import ALPHA_SWEEP
    from benchmarks.bench_ablation_puct_c import PUCT_SWEEP

    historical = {
        "mcts.c_puct": [0.05, 0.5, 1.05, 2.5, 8.0],
        "alpha": [-0.75, 0.0, 0.5, 0.75, 1.0, 3.0],
    }
    out: dict = {}
    for label, sweep, knob in (
        ("puct_c", PUCT_SWEEP, "mcts.c_puct"),
        ("alpha", ALPHA_SWEEP, "alpha"),
    ):
        points = sweep.expand()
        values = [p.assignment()[knob] for p in points]
        spec_fps = []
        direct_fps = []
        for point in points:
            config = point.to_job_spec(sweep).build_config()
            spec_fps.append(config_fingerprint(config))
            base_spec = dataclasses.replace(point.to_job_spec(sweep),
                                            overrides=None)
            base = base_spec.build_config()
            value = point.assignment()[knob]
            if knob == "mcts.c_puct":
                direct = dataclasses.replace(
                    base, mcts=dataclasses.replace(base.mcts, c_puct=value)
                )
            else:
                direct = dataclasses.replace(base, alpha=value)
            direct_fps.append(config_fingerprint(direct))
        out[label] = {
            "values": values,
            "matches_historical": values == historical[knob],
            "config_fingerprints": spec_fps,
            "fingerprints_match_direct_construction": spec_fps == direct_fps,
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single seed (4 points) and shorter subprocess timeouts",
    )
    parser.add_argument("--output", default="BENCH_pr9.json")
    args = parser.parse_args(argv)

    spec = _spec(args.quick)
    timeout = 600.0 if args.quick else 1200.0
    root = tempfile.mkdtemp(prefix="bench_study_")
    report = {
        "benchmark": "study_engine",
        "quick": args.quick,
        "config": {"spec": spec.to_json(), "subprocess_timeout": timeout},
        "host": host_metadata(),
    }
    try:
        print(f"== warm sharing ({len(spec.expand())} points, "
              "uninterrupted) ==")
        warm, baseline = bench_warm_sharing(root, spec)
        report["warm_sharing"] = warm
        print(json.dumps(warm, indent=2))

        print("== kill and resume (SIGKILL after first DONE) ==")
        resume = bench_kill_resume(root, spec, baseline, timeout)
        report["kill_resume"] = resume
        print(json.dumps(resume, indent=2))

        print("== ablation sweep parity ==")
        parity = bench_ablation_parity()
        report["ablation_parity"] = parity
        print(json.dumps(parity, indent=2))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    n = warm["points"]
    gates = {
        "all_points_done": warm["done"] == n and warm["failures"] == 0,
        "single_pretrain_group": warm["groups"] == 1,
        "one_cold_pretrain": (
            warm["one_cold_per_fingerprint"]
            and warm["cold_pretrains"] == 1
            and warm["warm_reuses"] == n - 1
        ),
        "counters_agree": (
            warm["counter_stores"] == 1 and warm["counter_hits"] == n - 1
        ),
        "pareto_front_nonempty": warm["pareto_points"] > 0,
        "sensitivity_covers_every_knob": (
            warm["sensitivity_knobs"]
            == sorted(a.knob for a in spec.axes)
        ),
        "resume_completed": (
            resume["resume_rc"] == 0 and resume["done"] == resume["points"]
        ),
        "zero_done_resubmissions": resume["done_resubmissions"] == 0,
        "resume_bitwise_identical": (
            resume["bitwise_identical_to_uninterrupted"]
        ),
        "ablation_sweeps_unchanged": all(
            parity[k]["matches_historical"]
            and parity[k]["fingerprints_match_direct_construction"]
            for k in parity
        ),
    }
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\n== gates ==\n{json.dumps(gates, indent=2)}")
    print(f"report written to {args.output}")
    return 0 if gates["all_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
