#!/usr/bin/env python
"""Microbenchmark for parallel pure terminal evaluation (PR 3).

Measures, on one synthetic design:

- **purity** — ``evaluate_assignment`` is history-independent: a fresh
  environment, a history-laden one, and a pool worker all return the
  bitwise-identical HPWL for the same assignment;
- **terminal evaluations/sec** — raw legalize-and-place throughput of
  :class:`~repro.parallel.TerminalEvaluationPool` across worker counts;
- **MCTS explorations/sec** — end-to-end search throughput with pooled
  terminal dispatch at each worker count, gated on the pooled searches
  committing the *identical* assignment/wirelength as the no-pool run;
- **RL finalization** — ``play_episodes`` throughput with pooled episode
  finalization, gated bitwise against the in-process path;
- **eval-cache transpositions** — the state-keyed network cache must
  record hits when a wave's descents collide (the PR 2 cache never hit);
- **overlap check** — the vectorized ``any_pairwise_overlap`` vs the old
  O(n²) Python loop, gated on agreeing over random rectangle sets.

Equivalence/purity gates are the only thing that can fail the script
(exit 1).  Throughput is reported, never gated — with one exception: in
full (non ``--quick``) mode, when the host actually has at least as many
cores as a pooled arm uses (``host_cores`` in the report), that arm's
raw-throughput speedup is expected to clear ``--min-speedup``.  On fewer
cores the pool degrades to time-slicing and no honest speedup exists, so
the gate is skipped (and recorded as skipped); ``--quick`` (the CI mode)
always gates equivalence only.

Writes a JSON report (default ``BENCH_pr3.json``)::

    python benchmarks/bench_terminal.py --quick --output BENCH_pr3.json
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import time

import numpy as np

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.coarsen import coarsen_design
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.legalize.pipeline import any_pairwise_overlap
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.model import Node
from repro.parallel import TerminalEvaluationPool
from repro.utils.host import host_metadata

REWARD = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)


def build_problem(zeta: int = 8, seed: int = 7):
    # Cell-heavy relative to bench_inference: terminal evaluation (QP
    # legalize + cell placement) should dominate, because that is the work
    # the pool moves off-process.
    spec = GeneratorSpec(
        name="bench-terminal",
        n_movable_macros=12,
        n_pads=12,
        n_cells=160,
        n_nets=220,
        hierarchy_depth=2,
        hierarchy_branching=2,
        seed=seed,
    )
    design = generate_design(spec)
    MixedSizePlacer(n_iterations=2).place(design)
    return coarsen_design(design, GridPlan(design.region, zeta=zeta))


def make_env(coarse, fresh: bool = True) -> MacroGroupPlacementEnv:
    return MacroGroupPlacementEnv(
        copy.deepcopy(coarse) if fresh else coarse, cell_place_iters=1
    )


def random_assignments(env, n: int, seed: int = 0) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    return [
        [int(a) for a in rng.integers(0, env.n_actions, env.n_steps)]
        for _ in range(n)
    ]


def _rate(n_items: int, seconds: float) -> float:
    return n_items / seconds if seconds > 0 else float("inf")


def check_purity(coarse) -> dict:
    """History independence: fresh env == reused env == pool worker."""
    env = make_env(coarse)
    assignments = random_assignments(env, 4, seed=1)

    fresh = [make_env(coarse).evaluate_assignment(a) for a in assignments]
    # One reused env, evaluating in reverse after a random episode has
    # already dirtied the coarse netlist — the history the purity fix
    # must erase.
    reused_env = make_env(coarse)
    reused_env.play_random_episode(3)
    reused = [
        reused_env.evaluate_assignment(a) for a in reversed(assignments)
    ][::-1]
    with TerminalEvaluationPool(make_env(coarse), workers=2, clamp=False) as pool:
        pooled = pool.evaluate_many(assignments)
        pool_was_parallel = pool.parallel

    return {
        "fresh_vs_reused_bitwise": fresh == reused,
        "fresh_vs_pool_bitwise": fresh == pooled,
        "pool_was_parallel": pool_was_parallel,
    }


def bench_raw_throughput(coarse, workers_list, n_evals: int) -> dict:
    """Raw terminal evaluations/sec per worker count (steady-state)."""
    out = {}
    base_env = make_env(coarse)
    assignments = random_assignments(base_env, n_evals, seed=2)
    for workers in workers_list:
        env = make_env(coarse)
        with TerminalEvaluationPool(env, workers=workers, clamp=False) as pool:
            pool.warm_up(assignments[0], timeout=120.0)
            started = time.perf_counter()
            results = pool.evaluate_many(assignments)
            seconds = time.perf_counter() - started
        out[f"w{workers}_evals_per_sec"] = _rate(n_evals, seconds)
        out[f"w{workers}_seconds"] = seconds
        if workers == workers_list[0]:
            reference = results
        else:
            out[f"w{workers}_matches_w{workers_list[0]}"] = (
                results == reference
            )
    base = out[f"w{workers_list[0]}_evals_per_sec"]
    for workers in workers_list[1:]:
        out[f"w{workers}_speedup"] = out[f"w{workers}_evals_per_sec"] / base
    return out


def bench_mcts(coarse, net_cfg, workers_list, explorations: int) -> dict:
    """End-to-end MCTS with pooled terminal dispatch, per worker count.

    Every arm must commit the identical assignment/wirelength — pooled
    terminal evaluation is an execution detail, not a search change.
    """
    out = {}
    arms = {}
    for workers in workers_list:
        env = make_env(coarse)
        pool = None
        if workers > 1:
            pool = TerminalEvaluationPool(env, workers=workers, clamp=False)
            pool.warm_up([0] * env.n_steps, timeout=120.0)
        placer = MCTSPlacer(
            env, PolicyValueNet(net_cfg), REWARD,
            MCTSConfig(explorations=explorations, leaf_batch=4, seed=0),
            terminal_pool=pool,
        )
        try:
            started = time.perf_counter()
            result = placer.run()
            seconds = time.perf_counter() - started
        finally:
            if pool is not None:
                pool.close()
        arms[workers] = result
        total = explorations * env.n_steps
        out[f"w{workers}_explorations_per_sec"] = _rate(total, seconds)
        out[f"w{workers}_seconds"] = seconds
        out[f"w{workers}_seconds_terminal"] = result.seconds_terminal
        out[f"w{workers}_terminal_evaluations"] = result.n_terminal_evaluations
        out[f"w{workers}_terminal_cache_hits"] = result.n_terminal_cache_hits
        out[f"w{workers}_wirelength"] = result.wirelength
    base = arms[workers_list[0]]
    out["equivalent_across_workers"] = all(
        r.assignment == base.assignment
        and r.wirelength == base.wirelength
        and r.best_terminal_wirelength == base.best_terminal_wirelength
        for r in arms.values()
    )
    for workers in workers_list[1:]:
        out[f"w{workers}_speedup"] = (
            out[f"w{workers}_explorations_per_sec"]
            / out[f"w{workers_list[0]}_explorations_per_sec"]
        )
    return out


def bench_rl(coarse, net_cfg, n_episodes: int, workers: int) -> dict:
    """RL rollout throughput with pooled vs in-process finalization."""
    out = {}
    n_envs = 8
    for pooled in (False, True):
        env = make_env(coarse)
        pool = (
            TerminalEvaluationPool(env, workers=workers, clamp=False) if pooled else None
        )
        if pool is not None:
            pool.warm_up([0] * env.n_steps, timeout=120.0)
        trainer = ActorCriticTrainer(
            env, PolicyValueNet(net_cfg), REWARD,
            update_every=10**9, rng=0, n_envs=n_envs, terminal_pool=pool,
        )
        try:
            episodes = []
            done = 0
            started = time.perf_counter()
            while done < n_episodes:
                wave = min(n_envs, n_episodes - done)
                episodes.extend(trainer.play_episodes(wave))
                done += wave
            seconds = time.perf_counter() - started
        finally:
            if pool is not None:
                pool.close()
        key = "pooled" if pooled else "in_process"
        out[f"{key}_eps_per_sec"] = _rate(done, seconds)
        out[f"{key}_wirelengths"] = [w for _, w in episodes]
    out["pooled_bitwise_in_process"] = (
        out["pooled_wirelengths"] == out["in_process_wirelengths"]
    )
    out["speedup"] = out["pooled_eps_per_sec"] / out["in_process_eps_per_sec"]
    return out


def check_eval_cache(coarse, net_cfg) -> dict:
    """The state-keyed network cache must hit on colliding descents.

    ``virtual_loss=0`` makes every descent of a wave identical, so a
    leaf_batch=8 wave is guaranteed to revisit states — the configuration
    under which the PR 2 prefix-keyed cache still recorded zero hits.
    """
    env = make_env(coarse)
    placer = MCTSPlacer(
        env, PolicyValueNet(net_cfg), REWARD,
        MCTSConfig(explorations=16, leaf_batch=8, virtual_loss=0.0, seed=0),
    )
    result = placer.run()
    return {
        "eval_cache_hits": result.n_eval_cache_hits,
        "nonzero": result.n_eval_cache_hits > 0,
    }


def bench_overlap(n_rects: int, repeats: int) -> dict:
    """Vectorized pairwise-overlap check vs the old O(n²) Python loop."""

    def loop_reference(nodes) -> bool:
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if a.overlaps(b):
                    return True
        return False

    rng = np.random.default_rng(5)
    # Sparse so no pair overlaps: the worst case, where the loop cannot
    # exit early and the full O(n²) cost shows.
    nodes = [
        Node(
            name=f"m{i}",
            width=1.0,
            height=1.0,
            x=float(3 * i),
            y=float(rng.uniform(0, 1000)),
        )
        for i in range(n_rects)
    ]
    started = time.perf_counter()
    for _ in range(repeats):
        vec = any_pairwise_overlap(nodes)
    vec_seconds = (time.perf_counter() - started) / repeats
    started = time.perf_counter()
    for _ in range(repeats):
        ref = loop_reference(nodes)
    loop_seconds = (time.perf_counter() - started) / repeats

    # Agreement over random dense sets (overlaps likely) and the sparse set.
    agree = vec == ref
    for trial in range(20):
        trial_rng = np.random.default_rng(100 + trial)
        dense = [
            Node(
                name=f"d{i}",
                width=float(trial_rng.uniform(1, 8)),
                height=float(trial_rng.uniform(1, 8)),
                x=float(trial_rng.uniform(0, 40)),
                y=float(trial_rng.uniform(0, 40)),
            )
            for i in range(12)
        ]
        agree &= any_pairwise_overlap(dense) == loop_reference(dense)

    return {
        "n_rects": n_rects,
        "vectorized_seconds": vec_seconds,
        "loop_seconds": loop_seconds,
        "speedup": loop_seconds / vec_seconds if vec_seconds > 0 else float("inf"),
        "agrees_with_loop": agree,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: workers {1,2}, fewer evaluations/explorations",
    )
    parser.add_argument("--output", default="BENCH_pr3.json")
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="raw-throughput speedup gate, applied only to pooled arms the "
             "host has enough cores for",
    )
    args = parser.parse_args(argv)

    zeta = 8
    net_cfg = NetworkConfig(zeta=zeta, channels=16, res_blocks=2, seed=0)
    if args.quick:
        workers_list, n_evals, explorations, rl_episodes = [1, 2], 16, 12, 8
    else:
        workers_list, n_evals, explorations, rl_episodes = [1, 2, 4], 48, 24, 16

    host_cores = os.cpu_count() or 1
    coarse = build_problem(zeta=zeta)
    report = {
        "config": {
            "quick": args.quick,
            "zeta": zeta,
            "workers": workers_list,
            "n_evals": n_evals,
            "mcts_explorations": explorations,
            "rl_episodes": rl_episodes,
            "min_speedup": args.min_speedup,
        },
        "host_cores": host_cores,
        "host": host_metadata(),
    }

    print(f"host cores: {host_cores}")
    print("== purity (history independence) ==")
    report["purity"] = check_purity(coarse)
    for key, value in report["purity"].items():
        print(f"  {key:28s} {value}")

    print("== raw terminal evaluations/sec ==")
    report["raw"] = bench_raw_throughput(coarse, workers_list, n_evals)
    for key, value in report["raw"].items():
        print(f"  {key:28s} {value}")

    print("== MCTS explorations/sec (pooled terminal dispatch) ==")
    report["mcts"] = bench_mcts(coarse, net_cfg, workers_list, explorations)
    for key, value in report["mcts"].items():
        print(f"  {key:30s} {value}")

    print("== RL finalization ==")
    report["rl"] = bench_rl(
        coarse, net_cfg, rl_episodes, workers=max(workers_list)
    )
    for key, value in report["rl"].items():
        if key.endswith("_wirelengths"):
            continue
        print(f"  {key:28s} {value}")

    print("== eval-cache transpositions ==")
    report["eval_cache"] = check_eval_cache(coarse, net_cfg)
    for key, value in report["eval_cache"].items():
        print(f"  {key:28s} {value}")

    print("== pairwise overlap check ==")
    report["overlap"] = bench_overlap(
        n_rects=120 if args.quick else 300, repeats=3
    )
    for key, value in report["overlap"].items():
        print(f"  {key:28s} {value}")

    # -- gates ----------------------------------------------------------------
    gates = {
        "purity": all(report["purity"].values()),
        "raw_results_match": all(
            v for k, v in report["raw"].items() if "_matches_" in k
        ),
        "mcts_equivalent": report["mcts"]["equivalent_across_workers"],
        "rl_bitwise": report["rl"]["pooled_bitwise_in_process"],
        "eval_cache_hits_nonzero": report["eval_cache"]["nonzero"],
        "overlap_agrees": report["overlap"]["agrees_with_loop"],
    }
    # Honest speedup gating: only in full mode (CI's --quick gates nothing
    # but equivalence — shared runners can't promise real parallelism) and
    # only for arms the host can truly parallelize.
    speedup_gates = {}
    if not args.quick:
        for workers in workers_list[1:]:
            if host_cores >= workers:
                speedup_gates[f"raw_w{workers}"] = (
                    report["raw"][f"w{workers}_speedup"] >= args.min_speedup
                )
    report["speedup_gates"] = speedup_gates or {
        "skipped": (
            "quick mode gates equivalence only"
            if args.quick
            else f"host has {host_cores} core(s); no pooled arm fits"
        )
    }
    gates.update({k: v for k, v in speedup_gates.items()})
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates

    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:28s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not gates["all_passed"]:
        print("EQUIVALENCE REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
