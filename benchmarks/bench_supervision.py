"""Supervision benchmark: chaos-drill outcomes and clean-path overhead.

Two questions, one tiny suite circuit:

1. **Does self-healing actually heal?**  Runs the full fault-injection
   drill (:mod:`repro.service.chaos`): worker kill, checkpoint bit-rot,
   stage stall, warm-cache corruption, and a poison job.  Gate: every
   scenario passes — faulted jobs end DONE-after-retry with HPWL
   *bit-identical* to the unfaulted baseline, the poison job ends
   QUARANTINED, nothing hangs.
2. **What does supervision cost when nothing fails?**  The clean path
   now computes artifact checksums, streams heartbeats from every event
   and budget poll, and re-verifies the final placement.  Measures
   min-of-N wall-clock of the flow with full supervision (heartbeat +
   verification) against the plain persisted flow.  Gate: overhead
   under 2%.

Writes a JSON report (default ``BENCH_pr5.json``)::

    python benchmarks/bench_supervision.py --quick --output BENCH_pr5.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from dataclasses import replace

from repro.core import MCTSGuidedPlacer, PlacerConfig
from repro.service.chaos import DEFAULT_SPEC, format_report, run_chaos_drill
from repro.service.jobs import resolve_design
from repro.service.scheduler import JobRunContext
from repro.service.supervisor import Heartbeat
from repro.utils.host import host_metadata

SPEC_KW = dict(circuit="ibm01", scale=0.004, macro_scale=0.04, preset="fast")


def bench_chaos(root: str, stall_seconds: float) -> dict:
    report = run_chaos_drill(root, stall_seconds=stall_seconds)
    print(format_report(report))
    return {
        "ok": report["ok"],
        "reference_hpwl": report.get("reference_hpwl"),
        "total_seconds": report.get("total_seconds"),
        "scenarios": [
            {
                "name": s["name"],
                "ok": s["ok"],
                "seconds": s["seconds"],
                "states": [f"{j['state']}:a{j['attempts']}" for j in s["jobs"]],
            }
            for s in report["scenarios"]
        ],
    }


def _time_flow(config: PlacerConfig, design, heartbeat: bool) -> float:
    """One cold flow run into a throwaway run dir; returns wall seconds."""
    run_dir = tempfile.mkdtemp(prefix="bench-supervision-run-")
    try:
        ctx = JobRunContext(
            run_dir,
            config,
            design,
            heartbeat=Heartbeat("bench", 1) if heartbeat else None,
        )
        started = time.perf_counter()
        MCTSGuidedPlacer(config).place(design, context=ctx)
        return time.perf_counter() - started
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)


def bench_overhead(repeats: int, seed: int) -> dict:
    """Min-of-*repeats* clean-path cost of supervision on the quick config.

    *base* is the persisted flow exactly as a pre-supervision service ran
    it (checkpoints, budgets, no heartbeat, no verification); *supervised*
    adds the full PR 5 clean-path machinery: a heartbeat fed by every
    event emission and budget poll, plus independent result verification.
    """
    _, design = resolve_design(
        circuit=SPEC_KW["circuit"], scale=SPEC_KW["scale"],
        macro_scale=SPEC_KW["macro_scale"],
    )
    base_cfg = PlacerConfig.fast(seed=seed)
    sup_cfg = replace(base_cfg, verify_results=True)
    _time_flow(base_cfg, design, heartbeat=False)  # untimed warm-up (imports)
    base, supervised = [], []
    for _ in range(repeats):
        base.append(_time_flow(base_cfg, design, heartbeat=False))
        supervised.append(_time_flow(sup_cfg, design, heartbeat=True))
    base_min, sup_min = min(base), min(supervised)
    return {
        "repeats": repeats,
        "base_seconds_min": round(base_min, 4),
        "supervised_seconds_min": round(sup_min, 4),
        "overhead_pct": round((sup_min / base_min - 1.0) * 100.0, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer overhead repeats",
    )
    parser.add_argument("--output", default="BENCH_pr5.json")
    parser.add_argument("--stall-seconds", type=float, default=0.2,
                        dest="stall_seconds")
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else 7
    root = tempfile.mkdtemp(prefix="bench-supervision-")
    report = {
        "config": {
            "quick": args.quick, **SPEC_KW,
            "seed": DEFAULT_SPEC.seed, "repeats": repeats,
        },
        "host": host_metadata(),
    }
    try:
        print("== chaos drill (fault injection over a live service) ==")
        report["chaos"] = bench_chaos(f"{root}/chaos", args.stall_seconds)

        print("== clean-path overhead (supervision on vs off) ==")
        report["overhead"] = bench_overhead(repeats, seed=DEFAULT_SPEC.seed)
        for key, value in report["overhead"].items():
            print(f"  {key:26s} {value}")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    gates = {
        "chaos_all_scenarios_pass": report["chaos"]["ok"],
        "clean_path_overhead_under_2pct": (
            report["overhead"]["overhead_pct"] < 2.0
        ),
    }
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates
    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:34s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not gates["all_passed"]:
        print("SUPERVISION GATE REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
