"""Ablation — value-network leaf evaluation vs random rollouts (Sec. IV-B3).

The paper replaces the traditional random-rollout evaluation with the
value network's prediction and claims it "reduces runtime significantly by
avoiding unnecessary computations in non-terminal states".

This bench runs MCTS twice from the same pre-trained agent with the same
exploration budget: once with V_θ leaf evaluation (the paper's scheme) and
once with random rollouts to terminal + true evaluation (the traditional
scheme, implemented here as a subclass).  Reported: wall-clock, number of
true terminal evaluations, and final wirelength.

Expected shape: the V_θ scheme is much cheaper per exploration (orders
fewer terminal legalize-and-place calls) at comparable quality.
"""

from __future__ import annotations

import copy

import numpy as np

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.agent.state import StateBuilder
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.suites import make_iccad04_circuit
from repro.utils.timer import timed


class RolloutMCTSPlacer(MCTSPlacer):
    """Traditional MCTS: leaf value from a uniform-random rollout to the
    terminal state, evaluated with the real legalize-and-place pipeline.

    Expansion still uses π_θ for the priors (identical tree policy to the
    paper's scheme); only the *leaf evaluation* differs, which is exactly
    the Sec. IV-B3 design decision under test.
    """

    def _expand(self, node, builder: StateBuilder, prefix: list[int]) -> float:
        state = builder.observe()
        probs, _ = self.network.evaluate(
            state.s_p, state.s_a, state.t, state.total_steps
        )
        self.n_network_evaluations += 1
        mask = state.action_mask
        actions = np.flatnonzero(mask > 0)
        prior = probs[actions]
        total = prior.sum()
        prior = (
            prior / total if total > 0 else np.full(len(actions), 1.0 / len(actions))
        )
        node.actions = actions.astype(np.int64)
        node.prior = prior
        node.visit = np.zeros(len(actions))
        node.total_value = np.zeros(len(actions))
        node.expanded = True

        # Random rollout to the end (the step the paper removes): continue
        # from the leaf's state (occupancy + step counter) with uniform
        # valid actions, then truly evaluate the completed assignment.
        rollout = StateBuilder(self.env.coarse)
        rollout.occupancy = builder.occupancy.copy()
        rollout.t = builder.t
        actions_taken = list(prefix)
        while not rollout.done():
            s = rollout.observe()
            m = s.action_mask
            a = int(self.rng.choice(len(m), p=m / m.sum()))
            actions_taken.append(a)
            rollout.apply(a)
        return self._terminal_value(actions_taken)


def test_ablation_leaf_evaluation(benchmark, budget):
    entry = make_iccad04_circuit(
        "ibm01", scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))
    env = MacroGroupPlacementEnv(coarse, cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength,
        n_episodes=budget.calibration_episodes, rng=1,
    )
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    trainer.train(max(budget.episodes // 3, 10))
    gamma = max(budget.explorations // 4, 8)

    def run():
        out = {}
        arms = (
            ("value_net", MCTSPlacer, None),
            ("rollout", RolloutMCTSPlacer, None),
            # PR 7's two-tier scheme on top of the paper's V_θ evaluation:
            # terminal leaves surrogate-ranked, only the running top-K
            # admitted to the exact pipeline.
            ("surrogate_pruned", MCTSPlacer, 4),
        )
        for label, cls, topk in arms:
            e = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
            placer = cls(
                e, net, reward_fn,
                MCTSConfig(explorations=gamma, seed=0, exact_topk=topk),
            )
            with timed() as elapsed:
                result = placer.run()
                seconds = elapsed()
            out[label] = {
                "seconds": seconds,
                "terminal_evals": result.n_terminal_evaluations,
                "exact_evals": result.n_exact_evaluations,
                "surrogate_evals": result.n_surrogate_evaluations,
                "wirelength": result.wirelength,
                "best_terminal": result.best_terminal_wirelength,
            }
        return out

    out = run_once(benchmark, run)
    print("\nAblation: leaf evaluation scheme (Sec. IV-B3)")
    for k, v in out.items():
        print(f"  {k:10s} t={v['seconds']:7.1f}s terminal_evals="
              f"{v['terminal_evals']:5d} wl={v['wirelength']:8.0f}")
    benchmark.extra_info.update(out)

    # The paper's claim: the value-net scheme does far fewer true
    # evaluations (and is correspondingly cheaper).
    assert out["value_net"]["terminal_evals"] < out["rollout"]["terminal_evals"]
    # The two-tier scheme prunes further still without giving up the
    # exactness of the reported result.
    assert (
        out["surrogate_pruned"]["exact_evals"]
        <= out["value_net"]["exact_evals"]
    )
    if budget.name != "smoke":
        assert out["value_net"]["seconds"] <= out["rollout"]["seconds"]
