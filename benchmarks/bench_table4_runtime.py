"""Table IV — MCTS-stage runtime per benchmark.

Paper finding: "the runtime of MCTS correlates with the number of macros
in the benchmarks" — ibm10 (most macros) slowest, ibm06 (fewest) fastest.

This bench runs the flow on a circuit set spanning the macro-count range,
reports the MCTS stage's wall-clock (the Table IV quantity) and asserts a
positive rank correlation between macro-group count and MCTS runtime.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from benchmarks.conftest import placer_config, run_once
from repro.core import MCTSGuidedPlacer
from repro.netlist.suites import make_iccad04_circuit


def test_table4_mcts_runtime(benchmark, budget):
    from dataclasses import replace

    circuits = budget.iccad04_circuits
    if budget.name == "default":
        # Spread the macro-count range: ibm06 (min) ... ibm10 (max).
        circuits = ("ibm06", "ibm01", "ibm12", "ibm10")

    # The Table IV claim is about MCTS-stage *runtime* scaling, which is
    # insensitive to agent quality — train with a third of the episode
    # budget to keep this bench affordable on large-macro circuits.
    config = replace(placer_config(budget), episodes=max(budget.episodes // 3, 10))

    def run():
        rows = []
        for name in circuits:
            entry = make_iccad04_circuit(
                name, scale=budget.iccad04_scale,
                macro_scale=budget.iccad04_macro_scale,
            )
            result = MCTSGuidedPlacer(config).place(entry.design)
            rows.append(
                {
                    "circuit": name,
                    "macros": len(entry.design.netlist.movable_macros),
                    "macro_groups": result.n_macro_groups,
                    "mcts_seconds": result.mcts_runtime,
                    "total_seconds": result.stopwatch.overall(),
                    "hpwl": result.hpwl,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nTable IV (miniature): MCTS runtime per benchmark")
    print(f"  {'circuit':>8} {'macros':>7} {'groups':>7} "
          f"{'MCTS (s)':>9} {'total (s)':>10}")
    for r in rows:
        print(f"  {r['circuit']:>8} {r['macros']:>7} {r['macro_groups']:>7} "
              f"{r['mcts_seconds']:>9.2f} {r['total_seconds']:>10.1f}")
    benchmark.extra_info["rows"] = rows

    if len(rows) >= 3:
        groups = [r["macro_groups"] for r in rows]
        seconds = [r["mcts_seconds"] for r in rows]
        if len(set(groups)) > 1:
            rho = stats.spearmanr(groups, seconds).statistic
            print(f"  Spearman(groups, MCTS seconds) = {rho:.2f}")
            benchmark.extra_info["spearman"] = float(rho)
            assert rho > 0, (
                "MCTS runtime should grow with the number of macro groups"
            )
    # The paper's extrema: ibm10 slower than ibm06 whenever both present.
    by_name = {r["circuit"]: r for r in rows}
    if "ibm10" in by_name and "ibm06" in by_name:
        assert (
            by_name["ibm10"]["mcts_seconds"] >= by_name["ibm06"]["mcts_seconds"]
        )
