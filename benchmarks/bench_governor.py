"""Resource-governance benchmark: GC under quota, and what it costs.

Four questions, one tiny suite circuit:

1. **Can the fleet finish inside a quota it cannot fit ungoverned?**
   Runs the governed chaos drill (:func:`repro.service.chaos.
   run_governed_drill`): a 3-shard fleet inside a synthetic disk quota
   at 80% of the ungoverned footprint, plus one transient and one
   persistent ``disk.enospc`` fault.  Gate: every job DONE bit-identical
   to the ungoverned baseline or QUARANTINED with a structured reason,
   zero shard deaths, final footprint within quota, GC and ENOSPC
   degradation both actually observed.
2. **Is GC lossless?**  Drains a service, then runs the offline
   collector at full strength (``repro gc --emergency``: run dirs
   retired, terminal cache compacted, journal compacted to snapshot
   records).  Gate: a daemon restarted on the collected dir replays the
   identical job ledger, and resubmitting a collected job is still a
   warm hit with a bit-identical HPWL.
3. **Does usage plateau under sustained load?**  Soaks one governed
   service dir with fresh-seed rounds under a quota sized from round
   one.  Gate: every post-round footprint stays within the quota
   (growth is collected, not accumulated).
4. **What does the governor cost when nothing is under pressure?**
   Min-of-N wall-clock of idle daemon poll cycles with the governor
   sampling versus stubbed out.  Gate: overhead under 2%.

Writes a JSON report (default ``BENCH_pr10.json``)::

    python benchmarks/bench_governor.py --quick --output BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from dataclasses import replace

from repro.runtime.resources import dir_usage_bytes
from repro.service.chaos import (
    DEFAULT_SPEC,
    format_governed_report,
    run_governed_drill,
)
from repro.service.governor import ResourceGovernor
from repro.service.jobs import DONE, JobStore, ServicePaths
from repro.service.metrics import ServiceMetrics
from repro.service.service import PlacementService, submit_job
from repro.service.warm import WarmArtifactCache
from repro.utils.host import host_metadata

SPEC_KW = dict(circuit="ibm01", scale=0.004, macro_scale=0.04, preset="fast")


def _drain(service_dir: str, max_seconds: float, **kwargs) -> PlacementService:
    """Boot a daemon on *service_dir*, drain it, release the guard hooks."""
    service = PlacementService(
        service_dir, workers=1, poll_interval=0.02, backoff_base=0.05,
        **kwargs,
    )
    try:
        service.run(drain=True, max_seconds=max_seconds)
    finally:
        service.governor.uninstall()
    return service


def _ledger(store: JobStore) -> list[tuple]:
    """The replayed journal state, reduced to what must survive GC."""
    return sorted(
        (
            j.id, j.state, j.attempts, j.hpwl, j.warm_hit,
            (j.error or {}).get("kind"),
        )
        for j in store.jobs()
    )


def bench_drill(root: str, max_seconds: float) -> dict:
    report = run_governed_drill(root, max_seconds=max_seconds)
    print(format_governed_report(report))
    return {
        "ok": report["ok"],
        "baseline_bytes": report.get("baseline_bytes"),
        "disk_quota_bytes": report.get("disk_quota_bytes"),
        "final_bytes": report.get("final_bytes"),
        "gc_runs": report.get("gc_runs"),
        "emergency_gc_runs": report.get("emergency_gc_runs"),
        "resource_degradations": report.get("resource_degradations"),
        "shard_exit_codes": report.get("shard_exit_codes"),
        "seconds": report.get("seconds"),
        "failed_checks": [
            c["name"] for c in report.get("checks", []) if not c["ok"]
        ],
    }


def bench_post_gc(root: str, max_seconds: float) -> dict:
    """Emergency-GC a drained dir, restart, replay + warm-resubmit."""
    seeds = [DEFAULT_SPEC.seed, DEFAULT_SPEC.seed + 1]
    for seed in seeds:
        submit_job(root, replace(DEFAULT_SPEC, seed=seed))
    service = _drain(root, max_seconds)
    before = _ledger(service.store)
    before_ok = bool(before) and all(row[1] == DONE for row in before)
    hpwl_by_seed = {
        j.spec.seed: j.hpwl for j in service.store.jobs()
    }
    before_bytes = dir_usage_bytes(root)

    # The offline collector, exactly as ``repro gc --emergency`` builds
    # it: plain components, no daemon, no leases.
    paths = ServicePaths(root).ensure()
    store = JobStore(paths.journal)
    store.load()
    governor = ResourceGovernor(
        paths, store, ServiceMetrics(), WarmArtifactCache(paths.warm),
        retention_runs=0,
    )
    gc_summary = governor.gc(emergency=True)
    after_bytes = dir_usage_bytes(root)

    restarted = JobStore(paths.journal)
    restarted.load()
    replay_identical = _ledger(restarted) == before

    # A collected job must still be a warm hit with the same answer.
    resubmit_id = submit_job(root, replace(DEFAULT_SPEC, seed=seeds[0]))
    service = _drain(root, max_seconds)
    job = service.store.get(resubmit_id)
    warm_hit = job is not None and job.state == DONE and bool(job.warm_hit)
    hpwl_identical = (
        job is not None and job.hpwl == hpwl_by_seed[seeds[0]]
    )
    result = {
        "before_bytes": before_bytes,
        "after_bytes": after_bytes,
        "run_dirs_deleted": gc_summary["run_dirs_deleted"],
        "journal": gc_summary["journal"],
        "terminal_cache": gc_summary["terminal_cache"],
        "baseline_done": before_ok,
        "replay_identical": replay_identical,
        "resubmit_warm_hit": warm_hit,
        "resubmit_hpwl_identical": hpwl_identical,
        "ok": before_ok and replay_identical and warm_hit and hpwl_identical,
    }
    for key, value in result.items():
        print(f"  {key:26s} {value}")
    return result


def bench_soak(root: str, rounds: int, max_seconds: float) -> dict:
    """Fresh-seed rounds under one quota; footprint must plateau."""
    seed0 = DEFAULT_SPEC.seed + 100
    submit_job(root, replace(DEFAULT_SPEC, seed=seed0))
    _drain(root, max_seconds)
    round1 = dir_usage_bytes(root)
    quota = int(round1 * 2.5)
    warm_quota = int(
        max(1, dir_usage_bytes(ServicePaths(root).warm)) * 1.5
    )
    governed = dict(
        disk_quota_bytes=quota,
        retention_runs=1,
        warm_quota_bytes=warm_quota,
        journal_quota_bytes=round1,
        terminal_cache_quota_bytes=round1,
        high_water=0.8, low_water=0.5,
        rundir_projection_bytes=max(1, round1 // 2),
        resource_sample_interval=0.02,
    )
    usage = []
    states = []
    for i in range(1, rounds):
        job_id = submit_job(root, replace(DEFAULT_SPEC, seed=seed0 + i))
        service = _drain(root, max_seconds, **governed)
        job = service.store.get(job_id)
        states.append(job.state if job else "MISSING")
        usage.append(dir_usage_bytes(root))
    result = {
        "rounds": rounds,
        "round1_bytes": round1,
        "disk_quota_bytes": quota,
        "warm_quota_bytes": warm_quota,
        "post_round_bytes": usage,
        "round_states": states,
        "all_rounds_done": all(s == DONE for s in states),
        "plateaued": all(u <= quota for u in usage),
    }
    result["ok"] = result["all_rounds_done"] and result["plateaued"]
    for key, value in result.items():
        print(f"  {key:26s} {value}")
    return result


def bench_overhead(root: str, repeats: int, cycles: int) -> dict:
    """Min-of-*repeats* cost of *cycles* idle poll loops, governor on/off.

    The governed side runs the real thing — a disk quota set and the
    default 1s sampling cadence, so most cycles pay only the rate-limit
    check.  The baseline stubs the governor's poll out of the identical
    service, emulating the pre-governor daemon loop.
    """
    service = PlacementService(
        root, workers=1, poll_interval=0.02,
        disk_quota_bytes=64 << 20, retention_runs=8,
    )
    try:
        governed_poll = service.governor.poll
        # One sample up front so the resource_* gauges exist during both
        # timings — every cycle writes metrics.json, and the baseline
        # must pay for the same payload it would carry at steady state.
        service.governor.sample()

        def _run(poll) -> float:
            service.governor.poll = poll
            service.poll()  # warm-up (inbox scan, metrics write)
            started = time.perf_counter()
            for _ in range(cycles):
                service.poll()
            return time.perf_counter() - started

        base, governed = [], []
        for _ in range(repeats):
            base.append(_run(lambda: None))
            governed.append(_run(governed_poll))
        service.governor.poll = governed_poll
    finally:
        service.governor.uninstall()
    base_min, gov_min = min(base), min(governed)
    result = {
        "repeats": repeats,
        "cycles": cycles,
        "base_seconds_min": round(base_min, 4),
        "governed_seconds_min": round(gov_min, 4),
        "overhead_pct": round((gov_min / base_min - 1.0) * 100.0, 2),
    }
    for key, value in result.items():
        print(f"  {key:26s} {value}")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer soak rounds and overhead repeats",
    )
    parser.add_argument("--output", default="BENCH_pr10.json")
    parser.add_argument("--max-seconds", type=float, default=150.0,
                        dest="max_seconds")
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 5
    repeats = 3 if args.quick else 5
    cycles = 600 if args.quick else 2000
    root = tempfile.mkdtemp(prefix="bench-governor-")
    report = {
        "config": {
            "quick": args.quick, **SPEC_KW,
            "seed": DEFAULT_SPEC.seed, "rounds": rounds,
            "repeats": repeats, "cycles": cycles,
        },
        "host": host_metadata(),
    }
    try:
        print("== governed chaos drill (fleet inside a tight quota) ==")
        report["drill"] = bench_drill(f"{root}/drill", args.max_seconds)

        print("== post-GC correctness (collect, restart, resubmit) ==")
        report["post_gc"] = bench_post_gc(f"{root}/postgc", args.max_seconds)

        print("== steady-state soak (footprint plateau under quota) ==")
        report["soak"] = bench_soak(f"{root}/soak", rounds, args.max_seconds)

        print("== governor poll overhead (clean path) ==")
        report["overhead"] = bench_overhead(
            f"{root}/overhead", repeats, cycles
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    gates = {
        "governed_drill_passes": report["drill"]["ok"],
        "post_gc_state_identical": report["post_gc"]["ok"],
        "soak_plateaus_under_quota": report["soak"]["ok"],
        "poll_overhead_under_2pct": (
            report["overhead"]["overhead_pct"] < 2.0
        ),
    }
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates
    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:34s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not gates["all_passed"]:
        print("RESOURCE GOVERNANCE GATE REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
