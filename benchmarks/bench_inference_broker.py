#!/usr/bin/env python
"""Microbenchmark + gates for the shared inference broker (PR 8).

Simulates N concurrent placement jobs, each issuing MCTS-sized leaf
batches (``leaf_batch`` states per request) against one shared
:class:`~repro.inference.broker.InferenceBroker`, and measures:

- **equivalence** (gated, every concurrency): each job's broker-served
  results must be *bitwise identical* to the private-network path
  (``InferenceClient(net, broker=None)`` — the same fixed-tile forward
  without the broker);
- **cross-job coalescing** (gated at >= 4 jobs): the broker's mean
  forward batch must exceed a single job's ``leaf_batch`` — proof that
  independent jobs' requests actually fuse into larger GEMMs;
- **aggregate throughput** (gated at 4 jobs, full mode on multi-core
  hosts only — the same honest-gating policy as ``bench_terminal``):
  broker-served aggregate forwards/sec must reach 2x the
  private-network arm.  On a single-core host the arms share one core
  and the broker adds pure IPC overhead, and in ``--quick`` (the CI
  mode) shared runners can't promise real parallelism — in both cases
  the gate is *honestly skipped*: recorded as skipped with the reason
  and host metadata, never silently passed.

Writes a JSON report (default ``BENCH_pr8.json``)::

    python benchmarks/bench_inference_broker.py --quick --output BENCH_pr8.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

from repro.agent.network import NetworkConfig, PlaneView, PolicyValueNet
from repro.inference import InferenceBroker, InferenceClient
from repro.utils.host import host_metadata

LEAF_BATCH = 8  # states per request: the MCTS virtual-loss wave size


def build_net(cfg: NetworkConfig) -> PolicyValueNet:
    net = PolicyValueNet(cfg)
    # Populate BN running stats so eval mode is meaningful.
    net.train(True)
    net.forward(
        np.random.default_rng(9)
        .random((8, 3, cfg.zeta, cfg.zeta))
        .astype(net.dtype)
    )
    net.eval()
    return net


def random_states(zeta: int, n: int, seed: int = 0) -> list[PlaneView]:
    rng = np.random.default_rng(seed)
    states = []
    for i in range(n):
        s_a = rng.random((zeta, zeta))
        s_a[s_a < 0.3] = 0.0
        states.append(PlaneView(rng.random((zeta, zeta)), s_a, i % 8, 8))
    return states


def job_workload(zeta: int, job: int, n_requests: int) -> list:
    """Job *job*'s deterministic request sequence (leaf-batch sized)."""
    return [
        random_states(zeta, LEAF_BATCH, seed=1000 * job + r)
        for r in range(n_requests)
    ]


def run_jobs(
    clients: list, workloads: list, synchronize: bool
) -> tuple[list, float]:
    """Run every job's request sequence on its own thread; returns the
    per-job result lists and the wall-clock seconds of the whole
    fan-out.  *synchronize* aligns the jobs round-by-round (a barrier
    before each request) — the steady concurrent-search regime the
    coalescing window targets."""
    n = len(clients)
    barrier = threading.Barrier(n)
    results: list = [None] * n

    def worker(i: int) -> None:
        out = []
        for states in workloads[i]:
            if synchronize:
                barrier.wait()
            out.append(clients[i].evaluate_batch(states))
        results[i] = out

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    return results, elapsed


def bench_concurrency(
    net_cfg: NetworkConfig, n_jobs: int, n_requests: int, coalesce_us: int
) -> dict:
    """One concurrency level: equivalence, coalescing stats, throughput."""
    zeta = net_cfg.zeta
    workloads = [job_workload(zeta, j, n_requests) for j in range(n_jobs)]

    # Private-network reference: per-job tiled evaluation, no broker.
    nets = [build_net(net_cfg) for _ in range(n_jobs)]
    private = [InferenceClient(nets[j], broker=None) for j in range(n_jobs)]
    reference, _ = run_jobs(private, workloads, synchronize=False)
    _, private_seconds = run_jobs(private, workloads, synchronize=False)

    out = {"n_jobs": n_jobs, "n_requests": n_requests}
    with InferenceBroker(max_batch=64, coalesce_us=coalesce_us) as broker:
        clients = [InferenceClient(nets[j], broker) for j in range(n_jobs)]
        served, _ = run_jobs(clients, workloads, synchronize=True)
        _, broker_seconds = run_jobs(clients, workloads, synchronize=True)
        stats = broker.stats() or {}
        out["broker_served_requests"] = sum(c.n_broker for c in clients)
        out["local_fallbacks"] = sum(c.n_local for c in clients)
        for c in clients:
            c.close()

    bitwise = True
    for job_results, job_reference in zip(served, reference):
        for (p_a, v_a), (p_b, v_b) in zip(job_results, job_reference):
            bitwise &= bool(np.array_equal(p_a, p_b))
            bitwise &= bool(np.array_equal(v_a, v_b))
    n_states = n_jobs * n_requests * LEAF_BATCH
    out.update(
        {
            "bitwise_identical": bitwise,
            "batch_size_mean": stats.get("batch_size_mean", 0.0),
            "batch_size_p90": stats.get("batch_size_p90", 0.0),
            "batch_size_max": stats.get("batch_size_max", 0),
            "coalesced_batches": stats.get("coalesced_batches", 0),
            "wait_us_mean": stats.get("wait_us_mean", 0.0),
            "wait_us_p90": stats.get("wait_us_p90", 0.0),
            "private_states_per_sec": n_states / private_seconds,
            "broker_states_per_sec": n_states / broker_seconds,
        }
    )
    out["throughput_ratio"] = (
        out["broker_states_per_sec"] / out["private_states_per_sec"]
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run: fewer requests"
    )
    parser.add_argument("--output", default="BENCH_pr8.json")
    parser.add_argument(
        "--coalesce-us", type=int, default=20000, dest="coalesce_us",
        help="coalescing window; generous by default so the coalescing "
             "gate is robust to slow or loaded hosts",
    )
    args = parser.parse_args(argv)

    zeta = 8
    net_cfg = NetworkConfig(zeta=zeta, channels=16, res_blocks=2, seed=0)
    n_requests = 12 if args.quick else 40
    host = host_metadata()
    multi_core = (host.get("cpu_count") or 1) >= 2

    report = {
        "config": {
            "quick": args.quick,
            "zeta": zeta,
            "channels": net_cfg.channels,
            "res_blocks": net_cfg.res_blocks,
            "leaf_batch": LEAF_BATCH,
            "n_requests": n_requests,
            "coalesce_us": args.coalesce_us,
        },
        "host": host,
        "concurrency": {},
    }

    for n_jobs in (1, 2, 4):
        print(f"== {n_jobs} concurrent job(s) ==")
        level = bench_concurrency(
            net_cfg, n_jobs, n_requests, args.coalesce_us
        )
        report["concurrency"][str(n_jobs)] = level
        for key in (
            "bitwise_identical", "batch_size_mean", "batch_size_max",
            "coalesced_batches", "broker_states_per_sec",
            "private_states_per_sec", "throughput_ratio",
        ):
            print(f"  {key:24s} {level[key]}")

    gates = {}
    gates["bitwise_all_concurrencies"] = all(
        level["bitwise_identical"]
        for level in report["concurrency"].values()
    )
    at4 = report["concurrency"]["4"]
    gates["cross_job_batching"] = at4["batch_size_mean"] > LEAF_BATCH
    if not multi_core:
        # One core: the broker cannot add parallelism, only IPC cost.
        gates["throughput_gate_skipped"] = True
        gates["throughput_skip_reason"] = (
            f"single-core host (cpu_count={host.get('cpu_count')}): "
            "broker and private arms share one core, so the 2x aggregate "
            "forwards/sec gate is not meaningful; re-record on a "
            "multi-core host"
        )
    elif args.quick:
        gates["throughput_gate_skipped"] = True
        gates["throughput_skip_reason"] = (
            "--quick mode gates equivalence and coalescing only (shared "
            "CI runners can't promise real parallelism); the ratio is "
            "recorded informationally"
        )
    else:
        gates["throughput_2x_at_4_jobs"] = at4["throughput_ratio"] >= 2.0
        gates["throughput_gate_skipped"] = False
    report["gates"] = gates

    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:28s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    hard = [
        gates["bitwise_all_concurrencies"],
        gates["cross_job_batching"],
        gates.get("throughput_2x_at_4_jobs", True),
    ]
    if not all(hard):
        print("BROKER GATE FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
