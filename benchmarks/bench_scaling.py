"""Scaling study — flow runtime and quality vs design size.

The paper's title claims effectiveness "for very large scale designs";
its mechanism is that grouping keeps the decision problem near-constant
(≤ ~ζ² groups) while design size grows.  This bench sweeps the synthetic
ibm01-alike over increasing macro/cell counts and reports:

- macro groups (should grow sub-linearly in macros — the coarsening
  absorbs scale);
- per-episode cost (dominated by the terminal legalize-and-place, which
  grows with cells);
- final quality vs the analytical baseline.
"""

from __future__ import annotations

import copy

from benchmarks.conftest import placer_config, run_once
from repro.core import MCTSGuidedPlacer
from repro.gp.mixed_size import MixedSizePlacer
from repro.netlist.suites import make_iccad04_circuit


def test_scaling_with_design_size(benchmark, budget):
    if budget.name == "smoke":
        factors = (0.5, 1.0)
    else:
        factors = (0.5, 1.0, 2.0)
    base_scale = budget.iccad04_scale
    base_macro = budget.iccad04_macro_scale
    from dataclasses import replace

    config = replace(placer_config(budget), episodes=max(budget.episodes // 3, 10))

    def run():
        rows = []
        for f in factors:
            entry = make_iccad04_circuit(
                "ibm01", scale=base_scale * f, macro_scale=base_macro * f
            )
            analytical = copy.deepcopy(entry.design)
            ref = MixedSizePlacer(n_iterations=5).place(analytical).hpwl

            result = MCTSGuidedPlacer(config).place(entry.design)
            ours = min(result.hpwl, result.search.best_terminal_wirelength)
            stats = entry.design.netlist.stats()
            rows.append(
                {
                    "factor": f,
                    "macros": stats["movable_macros"],
                    "cells": stats["cells"],
                    "groups": result.n_macro_groups,
                    "total_seconds": result.stopwatch.overall(),
                    "ours": ours,
                    "analytical": ref,
                    "ratio": ours / ref,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nScaling study: flow vs design size (ibm01-alike)")
    print(f"  {'factor':>6} {'macros':>7} {'cells':>6} {'groups':>7} "
          f"{'time (s)':>9} {'ours/GP':>8}")
    for r in rows:
        print(f"  {r['factor']:>6.1f} {r['macros']:>7} {r['cells']:>6} "
              f"{r['groups']:>7} {r['total_seconds']:>9.1f} {r['ratio']:>8.2f}")
    benchmark.extra_info["rows"] = rows

    # Grouping absorbs scale: groups grow slower than macros.
    if len(rows) >= 2:
        g_growth = rows[-1]["groups"] / max(rows[0]["groups"], 1)
        m_growth = rows[-1]["macros"] / max(rows[0]["macros"], 1)
        assert g_growth <= m_growth + 1e-9
    # Quality stays in the analytical baseline's neighbourhood at any size.
    if budget.name != "smoke":
        assert all(r["ratio"] < 1.6 for r in rows)
