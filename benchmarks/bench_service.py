"""Placement-service benchmark: warm-artifact reuse and concurrency.

Measures, on one tiny suite circuit:

1. **Warm reuse** — a cold job (pre-training runs) vs a duplicate-
   fingerprint job (warm artifacts injected).  Gates: the warm job must
   actually hit the cache, its HPWL must be *bitwise identical* to the
   cold job's, and the warm run must not be slower than the cold one.
   The speedup itself is informational (CI machines vary).
2. **Concurrent throughput** — a batch of distinct-seed jobs served
   with 1 worker vs 2 workers.  Results must be identical per seed
   across worker counts (scheduling must not leak into placement);
   the wall-clock ratio is informational.

Writes a JSON report (default ``BENCH_pr4.json``)::

    python benchmarks/bench_service.py --quick --output BENCH_pr4.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

from repro.service import JobSpec, PlacementService
from repro.service.service import read_result, submit_job
from repro.utils.host import host_metadata

SPEC_KW = dict(circuit="ibm01", scale=0.004, macro_scale=0.04, preset="fast")


def _drain(service_dir: str, workers: int) -> tuple[PlacementService, float]:
    service = PlacementService(service_dir, workers=workers,
                               poll_interval=0.02)
    start = time.perf_counter()
    service.run(drain=True)
    return service, time.perf_counter() - start


def bench_warm_reuse(service_dir: str) -> dict:
    cold_id = submit_job(service_dir, JobSpec(seed=0, **SPEC_KW))
    _, cold_seconds = _drain(service_dir, workers=1)
    warm_id = submit_job(service_dir, JobSpec(seed=0, **SPEC_KW))
    service, warm_seconds = _drain(service_dir, workers=1)

    cold = read_result(service_dir, cold_id)
    warm = read_result(service_dir, warm_id)
    return {
        "cold_seconds": round(cold["seconds"], 3),
        "warm_seconds": round(warm["seconds"], 3),
        "speedup": round(cold["seconds"] / warm["seconds"], 2),
        "warm_hit": warm["warm_hit"],
        "cold_hpwl": cold["hpwl"],
        "warm_hpwl": warm["hpwl"],
        "bitwise_identical": warm["hpwl"] == cold["hpwl"],
        "pretraining_seconds_skipped": round(
            sum(cold["stage_seconds"][s] for s in ("calibration",
                                                   "rl_training")), 3
        ),
        "warm_cache_entries": int(
            service.write_metrics()["gauges"]["warm_cache_entries"]
        ),
    }


def bench_concurrency(root: str, n_jobs: int) -> dict:
    out: dict = {"n_jobs": n_jobs}
    hpwls: dict[int, dict[int, float]] = {}
    for workers in (1, 2):
        sdir = f"{root}/svc-w{workers}"
        ids = {
            seed: submit_job(sdir, JobSpec(seed=seed, **SPEC_KW))
            for seed in range(n_jobs)
        }
        _, wall = _drain(sdir, workers=workers)
        out[f"wall_seconds_w{workers}"] = round(wall, 3)
        hpwls[workers] = {
            seed: read_result(sdir, job_id)["hpwl"]
            for seed, job_id in ids.items()
        }
    out["speedup"] = round(
        out["wall_seconds_w1"] / out["wall_seconds_w2"], 2
    )
    out["results_match_across_worker_counts"] = hpwls[1] == hpwls[2]
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer concurrent jobs",
    )
    parser.add_argument("--output", default="BENCH_pr4.json")
    args = parser.parse_args(argv)

    n_jobs = 3 if args.quick else 6
    root = tempfile.mkdtemp(prefix="bench-service-")
    report = {
        "config": {"quick": args.quick, **SPEC_KW, "n_jobs": n_jobs},
        "host": host_metadata(),
    }
    try:
        print("== warm-artifact reuse (cold vs duplicate job) ==")
        report["warm"] = bench_warm_reuse(f"{root}/svc-warm")
        for key, value in report["warm"].items():
            print(f"  {key:28s} {value}")

        print("== concurrent throughput (1 vs 2 workers) ==")
        report["concurrency"] = bench_concurrency(root, n_jobs)
        for key, value in report["concurrency"].items():
            print(f"  {key:34s} {value}")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    gates = {
        "warm_hit": report["warm"]["warm_hit"],
        "warm_bitwise_identical": report["warm"]["bitwise_identical"],
        "warm_not_slower": (
            report["warm"]["warm_seconds"] <= report["warm"]["cold_seconds"]
        ),
        "concurrent_results_identical": (
            report["concurrency"]["results_match_across_worker_counts"]
        ),
    }
    gates["all_passed"] = all(gates.values())
    report["gates"] = gates
    print("== gates ==")
    for key, value in gates.items():
        print(f"  {key:34s} {value}")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"report -> {args.output}")

    if not gates["all_passed"]:
        print("SERVICE GATE REGRESSION", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
