"""Table II — industrial benchmarks: SE placer [26] vs DREAMPlace-like [25]
vs Ours.

Paper numbers (normalized wirelength): SE 1.05, DREAMPlace 1.23, Ours 1.00.
Expected reproduction shape: Ours best (normalized 1.00), both baselines
≥ 1.  The hierarchy-aware methods (SE, Ours) profit from the designs'
hierarchy; the analytical placer is hierarchy-blind.
"""

from __future__ import annotations

import copy

from benchmarks.conftest import placer_config, run_once
from repro.baselines import SEPlacer
from repro.core import MCTSGuidedPlacer
from repro.eval.report import ComparisonTable
from repro.gp.mixed_size import MixedSizePlacer
from repro.netlist.suites import make_industrial_circuit

METHODS = ["SE [26]", "DreamPl [25]", "Ours"]


def _run_circuit(name: str, budget) -> dict[str, float]:
    entry = make_industrial_circuit(
        name, scale=budget.industrial_scale,
        macro_scale=budget.industrial_macro_scale,
    )
    values: dict[str, float] = {}

    d = copy.deepcopy(entry.design)
    values["SE [26]"] = SEPlacer(generations=12, seed=0).place(d).hpwl

    d = copy.deepcopy(entry.design)
    values["DreamPl [25]"] = MixedSizePlacer(n_iterations=5).place(d).hpwl

    d = copy.deepcopy(entry.design)
    result = MCTSGuidedPlacer(placer_config(budget)).place(d)
    values["Ours"] = min(result.hpwl, result.search.best_terminal_wirelength)
    return values


def test_table2_industrial(benchmark, budget):
    table = ComparisonTable(
        methods=METHODS, reference="Ours",
        title="\nTable II (miniature): industrial benchmarks, wirelength",
    )

    def run():
        for circuit in budget.industrial_circuits:
            for method, value in _run_circuit(circuit, budget).items():
                table.add(circuit, method, value)
        return table.normalized()

    normalized = run_once(benchmark, run)
    print(table.render())
    benchmark.extra_info["table"] = {
        c: dict(v) for c, v in table.rows.items()
    }
    benchmark.extra_info["normalized"] = normalized

    assert normalized["Ours"] == 1.0
    if budget.name != "smoke":
        # Paper shape: ours wins on normalized wirelength.
        assert normalized["SE [26]"] >= 0.97, "SE should not dominate ours"
        assert normalized["DreamPl [25]"] >= 0.97, (
            "the analytical baseline should not dominate ours"
        )
