"""Ablation — single post-training MCTS (the paper) vs the AlphaZero-style
iterative loop (Sec. I-B, the design the paper argues against).

The paper's core efficiency argument: "the total runtime will increase
significantly as more MCTS processes are executed" when MCTS generates RL
samples, because every sample needs cell placements.  This bench measures
both schemes at *equal wall-clock-ish budgets*:

- **paper scheme** — A2C pre-training (cheap: 1 terminal eval/episode)
  followed by one MCTS pass;
- **iterative scheme** — rounds of MCTS sample generation + network
  training (expensive: a full MCTS placement per round).

Reported: final wirelength, total terminal evaluations, wall-clock.
Expected shape: the paper scheme reaches comparable (or better) quality
with far fewer terminal evaluations per unit of improvement.
"""

from __future__ import annotations

import copy
import time

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.iterative import IterativeMCTSTrainer
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.suites import make_iccad04_circuit


def test_ablation_single_vs_iterative(benchmark, budget):
    entry = make_iccad04_circuit(
        "ibm01", scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    coarse = coarsen_design(design, GridPlan(design.region, zeta=8))

    env0 = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env0.play_random_episode(g).wirelength,
        n_episodes=budget.calibration_episodes, rng=1,
    )
    episodes = max(budget.episodes // 2, 10)
    gamma = max(budget.explorations // 2, 8)
    rounds = max(episodes // 30, 2)

    def run():
        out = {}

        # Paper scheme: A2C pre-training + one MCTS.
        env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
        net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
        t0 = time.perf_counter()
        trainer = ActorCriticTrainer(
            env, net, reward_fn, lr=2e-3, update_every=10,
            epochs_per_update=3, entropy_coef=0.01, rng=0,
        )
        trainer.train(episodes)
        result = MCTSPlacer(
            env, net, reward_fn, MCTSConfig(explorations=gamma, seed=0)
        ).run()
        out["paper_single_pass"] = {
            "seconds": time.perf_counter() - t0,
            "terminal_evals": episodes + result.n_terminal_evaluations,
            "wirelength": min(result.wirelength, result.best_terminal_wirelength),
        }

        # Iterative scheme: MCTS generates every training sample.
        env = MacroGroupPlacementEnv(copy.deepcopy(coarse), cell_place_iters=2)
        net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
        t0 = time.perf_counter()
        it = IterativeMCTSTrainer(
            env, net, reward_fn,
            MCTSConfig(explorations=gamma), lr=2e-3, train_epochs=4,
        )
        history = it.train(rounds)
        out["iterative_alphazero"] = {
            "seconds": time.perf_counter() - t0,
            "terminal_evals": sum(history.terminal_evaluations),
            "wirelength": history.best_wirelength(),
            "rounds": rounds,
        }
        return out

    out = run_once(benchmark, run)
    print("\nAblation: single post-training MCTS vs iterative MCTS-RL loop")
    for k, v in out.items():
        print(f"  {k:22s} t={v['seconds']:7.1f}s "
              f"terminal_evals={v['terminal_evals']:5d} "
              f"wl={v['wirelength']:8.0f}")
    benchmark.extra_info.update(out)

    paper = out["paper_single_pass"]
    iterative = out["iterative_alphazero"]
    # The cost structure the paper predicts: per round, the iterative loop
    # pays a whole MCTS placement; the paper scheme's evaluations are flat
    # per episode.  Quality at equal-ish budget should not favor iterating.
    if budget.name != "smoke":
        assert paper["wirelength"] <= iterative["wirelength"] * 1.15, (
            "single-pass should be competitive with the iterative loop"
        )
