"""Ablation — macro grouping vs per-macro allocation (Sec. I-C / II-A).

The paper motivates coarsening by complexity: grouping shrinks both the
episode length (RL) and the branching-times-depth of the MCTS tree.  This
bench trains the same agent budget with and without grouping and reports
episode length, wall-clock per episode, and the resulting quality.

Expected shape: grouping gives shorter episodes and at-least-comparable
wirelength at equal episode budget.
"""

from __future__ import annotations

import copy
import time

from benchmarks.conftest import run_once
from repro.agent import (
    ActorCriticTrainer,
    NetworkConfig,
    PolicyValueNet,
    calibrate_reward,
)
from repro.baselines.ct_placer import singleton_macro_coarsening
from repro.coarsen import coarsen_design
from repro.env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.netlist.suites import make_iccad04_circuit


def _train_eval(coarse, episodes: int, calibration: int) -> dict:
    env = MacroGroupPlacementEnv(coarse, cell_place_iters=2)
    reward_fn, _ = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength,
        n_episodes=calibration, rng=1,
    )
    net = PolicyValueNet(NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=0))
    trainer = ActorCriticTrainer(
        env, net, reward_fn, lr=2e-3, update_every=10,
        epochs_per_update=3, entropy_coef=0.01, rng=0,
    )
    t0 = time.perf_counter()
    history = trainer.train(episodes)
    train_seconds = time.perf_counter() - t0

    def policy(state):
        probs, _ = net.evaluate(state.s_p, state.s_a, state.t, state.total_steps)
        return probs

    record = env.play_greedy_episode(policy)
    return {
        "episode_length": env.n_steps,
        "train_seconds": train_seconds,
        "best_wl": min(history.wirelengths),
        "greedy_wl": record.wirelength,
    }


def test_ablation_grouping(benchmark, budget):
    entry = make_iccad04_circuit(
        "ibm01", scale=budget.iccad04_scale, macro_scale=budget.iccad04_macro_scale
    )
    design = entry.design
    MixedSizePlacer(n_iterations=3).place(design)
    plan = GridPlan(design.region, zeta=8)
    episodes = max(budget.episodes // 2, 20)

    def run():
        grouped = coarsen_design(copy.deepcopy(design), plan)
        ungrouped = singleton_macro_coarsening(copy.deepcopy(design), plan)
        return {
            "grouped": _train_eval(grouped, episodes, budget.calibration_episodes),
            "ungrouped": _train_eval(
                ungrouped, episodes, budget.calibration_episodes
            ),
        }

    out = run_once(benchmark, run)
    print("\nAblation: macro grouping vs per-macro allocation")
    for k, v in out.items():
        print(f"  {k:10s} episode_len={v['episode_length']:3d} "
              f"train={v['train_seconds']:6.1f}s best_wl={v['best_wl']:8.0f} "
              f"greedy_wl={v['greedy_wl']:8.0f}")
    benchmark.extra_info.update(out)

    # Grouping must shrink the decision sequence — the complexity claim.
    assert out["grouped"]["episode_length"] <= out["ungrouped"]["episode_length"]
    if budget.name != "smoke":
        # And quality should not regress at equal episode budget.
        assert out["grouped"]["best_wl"] <= out["ungrouped"]["best_wl"] * 1.1
