"""Cross-module integration tests: the claims the paper's experiments rest
on, exercised end-to-end at miniature scale."""

import copy

import numpy as np
import pytest

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import calibrate_reward
from repro.coarsen import coarsen_design
from repro.core import MCTSGuidedPlacer, PlacerConfig
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.eval.metrics import macro_overlap_area, out_of_region_area
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.suites import make_iccad04_circuit, make_industrial_circuit


@pytest.fixture(scope="module")
def pipeline():
    """A shared trained mini-pipeline: coarse + env + calibrated reward +
    briefly-trained network."""
    design = generate_design(
        GeneratorSpec(
            name="integration", n_movable_macros=8, n_preplaced_macros=1,
            n_pads=6, n_cells=60, n_nets=80, seed=21,
        )
    )
    MixedSizePlacer(n_iterations=2).place(design)
    plan = GridPlan(design.region, zeta=4)
    coarse = coarsen_design(design, plan)
    env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
    reward_fn, samples = calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength, n_episodes=8, rng=1
    )
    net = PolicyValueNet(NetworkConfig(zeta=4, channels=8, res_blocks=1, seed=0))
    trainer = ActorCriticTrainer(env, net, reward_fn, update_every=5, rng=0)
    history = trainer.train(30)
    return coarse, env, reward_fn, net, history, samples


class TestGroupingReducesComplexity:
    def test_macro_groups_no_more_than_macros(self, pipeline):
        coarse = pipeline[0]
        assert coarse.n_macro_groups <= len(
            coarse.design.netlist.movable_macros
        )

    def test_coarse_nets_no_more_than_nets(self, pipeline):
        coarse = pipeline[0]
        assert len(coarse.coarse_nets) <= len(coarse.design.netlist.nets)


class TestRewardCalibration:
    def test_rewards_slightly_above_zero(self, pipeline):
        """The Sec. III-E property: calibrated rewards hover above zero for
        wirelengths inside the sampled band."""
        _, _, reward_fn, _, history, samples = pipeline
        for w in samples:
            assert reward_fn(w) >= reward_fn.alpha - 1.0
        mean_reward = float(np.mean([reward_fn(w) for w in samples]))
        assert mean_reward == pytest.approx(reward_fn.alpha, abs=0.05)


class TestMCTSOverRL:
    def test_mcts_matches_or_beats_rl_average(self, pipeline):
        """The Fig. 5 property at miniature scale: guided MCTS achieves a
        wirelength no worse than the RL policy's recent average."""
        coarse, env, reward_fn, net, history, _ = pipeline
        result = MCTSPlacer(
            env, net, reward_fn, MCTSConfig(explorations=24, seed=0)
        ).run()
        rl_recent = float(np.mean(history.wirelengths[-10:]))
        best = min(result.wirelength, result.best_terminal_wirelength)
        assert best <= rl_recent * 1.05

    def test_mcts_beats_random_play(self, pipeline):
        coarse, env, reward_fn, net, _, samples = pipeline
        result = MCTSPlacer(
            env, net, reward_fn, MCTSConfig(explorations=24, seed=1)
        ).run()
        assert min(result.wirelength, result.best_terminal_wirelength) < np.mean(
            samples
        )


class TestSuiteFlows:
    def test_flow_on_iccad04_circuit(self):
        entry = make_iccad04_circuit("ibm06", scale=0.003, macro_scale=0.04)
        result = MCTSGuidedPlacer(PlacerConfig.fast(seed=3)).place(entry.design)
        assert result.hpwl > 0
        assert macro_overlap_area(entry.design) < 1e-9
        assert out_of_region_area(entry.design) < 1e-6

    def test_flow_on_industrial_circuit(self):
        entry = make_industrial_circuit("Cir1", scale=0.0005, macro_scale=0.25)
        result = MCTSGuidedPlacer(PlacerConfig.fast(seed=3)).place(entry.design)
        assert result.hpwl > 0
        assert macro_overlap_area(entry.design) < 1e-9
        # Hierarchy must have survived into the groups for Γ to see it.
        assert any(g.hierarchy for g in result.coarse.macro_groups)


class TestEndToEndDeterminism:
    def test_same_seed_same_result(self):
        spec = GeneratorSpec(
            name="det", n_movable_macros=6, n_preplaced_macros=0,
            n_pads=4, n_cells=40, n_nets=50, seed=5,
        )
        results = []
        for _ in range(2):
            design = generate_design(spec)
            results.append(
                MCTSGuidedPlacer(PlacerConfig.fast(seed=11)).place(design).hpwl
            )
        assert results[0] == pytest.approx(results[1])
