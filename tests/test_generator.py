"""Synthetic benchmark generator tests."""

import numpy as np
import pytest

from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.model import NodeKind


def small_spec(**overrides) -> GeneratorSpec:
    base = dict(
        name="g",
        n_movable_macros=6,
        n_preplaced_macros=2,
        n_pads=6,
        n_cells=40,
        n_nets=50,
        seed=3,
    )
    base.update(overrides)
    return GeneratorSpec(**base)


class TestSpecValidation:
    def test_rejects_zero_macros(self):
        with pytest.raises(ValueError, match="macro"):
            GeneratorSpec(n_movable_macros=0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError, match="utilization"):
            GeneratorSpec(utilization=1.5)

    def test_rejects_bad_macro_fraction(self):
        with pytest.raises(ValueError, match="macro_area_fraction"):
            GeneratorSpec(macro_area_fraction=1.0)

    def test_rejects_tiny_net_degree(self):
        with pytest.raises(ValueError, match="degree"):
            GeneratorSpec(mean_net_degree=1.5)


class TestGeneratedStructure:
    def test_counts_match_spec(self):
        spec = small_spec()
        design = generate_design(spec)
        stats = design.netlist.stats()
        assert stats["movable_macros"] == spec.n_movable_macros
        assert stats["preplaced_macros"] == spec.n_preplaced_macros
        assert stats["pads"] == spec.n_pads
        assert stats["cells"] == spec.n_cells
        assert stats["nets"] == spec.n_nets

    def test_deterministic_given_seed(self):
        a = generate_design(small_spec())
        b = generate_design(small_spec())
        for na, nb in zip(a.netlist, b.netlist):
            assert na.name == nb.name
            assert (na.x, na.y) == (nb.x, nb.y)

    def test_different_seeds_differ(self):
        a = generate_design(small_spec(seed=1))
        b = generate_design(small_spec(seed=2))
        coords_a = [(n.x, n.y) for n in a.netlist]
        coords_b = [(n.x, n.y) for n in b.netlist]
        assert coords_a != coords_b

    def test_every_net_has_at_least_two_pins(self):
        design = generate_design(small_spec())
        assert all(net.degree >= 2 for net in design.netlist.nets)

    def test_net_pins_reference_existing_nodes(self):
        design = generate_design(small_spec())
        for net in design.netlist.nets:
            for pin in net.pins:
                assert pin.node in design.netlist

    def test_movable_macros_inside_region(self):
        design = generate_design(small_spec())
        for m in design.netlist.movable_macros:
            assert design.region.contains(m, tol=1e-6)

    def test_preplaced_macros_are_fixed_and_inside(self):
        design = generate_design(small_spec())
        for m in design.netlist.preplaced_macros:
            assert m.fixed
            assert design.region.contains(m, tol=1e-6)

    def test_pads_sit_on_or_outside_boundary(self):
        design = generate_design(small_spec())
        r = design.region
        for p in design.netlist.pads:
            on_edge = (
                p.x <= r.x or p.y <= r.y or p.x >= r.x_max - p.width
                or p.y >= r.y_max - p.height
            )
            assert on_edge

    def test_utilization_close_to_target(self):
        spec = small_spec(n_cells=400, n_nets=300, utilization=0.5)
        design = generate_design(spec)
        placeable = sum(
            n.area for n in design.netlist if n.kind is not NodeKind.PAD
        )
        assert placeable / design.region.area == pytest.approx(0.5, rel=0.05)

    def test_macro_area_fraction(self):
        spec = small_spec(n_cells=400, n_nets=300, macro_area_fraction=0.4)
        design = generate_design(spec)
        macro_area = sum(m.area for m in design.netlist.macros)
        cell_area = sum(c.area for c in design.netlist.cells)
        frac = macro_area / (macro_area + cell_area)
        assert frac == pytest.approx(0.4, rel=0.05)

    def test_hierarchy_exposed_when_requested(self):
        design = generate_design(small_spec(expose_hierarchy=True))
        assert any(m.hierarchy for m in design.netlist.movable_macros)

    def test_hierarchy_hidden_when_disabled(self):
        design = generate_design(small_spec(expose_hierarchy=False))
        assert all(m.hierarchy == "" for m in design.netlist.movable_macros)
        assert all(c.hierarchy == "" for c in design.netlist.cells)

    def test_net_degree_capped(self):
        design = generate_design(small_spec(max_net_degree=5, n_nets=200))
        # +1 allows the optional pad pin appended after degree sampling.
        assert max(net.degree for net in design.netlist.nets) <= 6
