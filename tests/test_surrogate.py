"""Two-tier terminal evaluation tests.

Three contracts are locked in here:

- the incremental surrogate is an *optimization, never an approximation*:
  ``score`` must equal ``score_from_scratch`` bitwise across arbitrary
  move sequences (property-tested with random single-group moves);
- ``exact_topk=None`` (and measure-only mode, surrogate attached but no
  pruning) reproduces the single-tier search bit-for-bit;
- whatever K prunes, the *reported* results stay exact: the committed
  wirelength and ``best_terminal_wirelength`` always re-derive from the
  real legalize-and-place pipeline.

Plus the incremental legalizer's equivalence gate: cached-pipeline
positions must match the from-scratch pipeline bitwise.
"""

import copy
import math

import numpy as np
import pytest

from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.legalize.pipeline import IncrementalMacroLegalizer, MacroLegalizer
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.surrogate import GroupCentroidSurrogate, SurrogateCalibration, spearman


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1.0, 2.0, 3.0], [10.0, 20.0, 30.0]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert spearman([1.0, 2.0, 3.0], [5.0, 4.0, 3.0]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_is_still_one(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert spearman(x, [v**3 for v in x]) == pytest.approx(1.0)

    def test_ties_use_average_ranks(self):
        # [1, 2, 2, 3] vs [1, 2, 2, 3]: ties on both sides, still rho=1.
        assert spearman([1, 2, 2, 3], [10, 20, 20, 30]) == pytest.approx(1.0)

    def test_degenerate_inputs_are_nan(self):
        assert math.isnan(spearman([1.0], [2.0]))
        assert math.isnan(spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]))
        assert math.isnan(spearman([1.0, 2.0], [1.0, 2.0, 3.0]))


class TestSurrogateCalibration:
    def test_empty_is_identity(self):
        assert SurrogateCalibration().predict(123.5) == 123.5

    def test_single_pair_uses_ratio(self):
        cal = SurrogateCalibration()
        cal.observe(10.0, 30.0)
        assert cal.predict(20.0) == pytest.approx(60.0)

    def test_least_squares_recovers_linear_map(self):
        cal = SurrogateCalibration()
        for s in [1.0, 2.0, 5.0, 9.0]:
            cal.observe(s, 3.0 * s + 7.0)
        assert cal.predict(4.0) == pytest.approx(19.0)

    def test_zero_variance_falls_back_to_ratio(self):
        cal = SurrogateCalibration()
        cal.observe(10.0, 20.0)
        cal.observe(10.0, 40.0)
        assert cal.predict(10.0) == pytest.approx(30.0)

    def test_pair_replay_is_bit_identical(self):
        cal = SurrogateCalibration()
        rng = np.random.default_rng(3)
        for s, e in rng.random((17, 2)):
            cal.observe(float(s * 100), float(e * 100 + 50))
        clone = SurrogateCalibration.from_pairs(cal.export_pairs())
        for probe in [0.0, 13.7, 91.2]:
            assert clone.predict(probe) == cal.predict(probe)
        assert clone.fidelity() == cal.fidelity()


class TestGroupCentroidSurrogate:
    def test_incremental_matches_scratch_on_random_moves(self, coarse_small):
        """Property: after any sequence of random single-group re-anchors,
        the prefix-stack score equals the from-scratch score bitwise."""
        sur = GroupCentroidSurrogate(coarse_small)
        n, grids = sur.n_macro_groups, coarse_small.plan.n_grids
        rng = np.random.default_rng(0)
        assignment = [int(a) for a in rng.integers(0, grids, size=n)]
        for _ in range(200):
            assignment[int(rng.integers(0, n))] = int(rng.integers(0, grids))
            assert sur.score(assignment) == sur.score_from_scratch(assignment)

    def test_suffix_only_recompute(self, coarse_small):
        """Changing only the last group must re-push exactly one move."""
        sur = GroupCentroidSurrogate(coarse_small)
        n, grids = sur.n_macro_groups, coarse_small.plan.n_grids
        if n < 2:
            pytest.skip("needs >= 2 macro groups")
        base = [0] * n
        sur.score(base)
        moved = sur.n_moves_applied
        base[-1] = grids - 1
        sur.score(base)
        assert sur.n_moves_applied == moved + 1

    def test_scoring_does_not_disturb_the_design(self, coarse_small):
        """Tier 1 must never leak coordinates into what tier 2 sees."""
        before = {
            node.name: (node.x, node.y) for node in coarse_small.design.netlist
        }
        sur = GroupCentroidSurrogate(coarse_small)
        rng = np.random.default_rng(1)
        for _ in range(5):
            sur.score(
                rng.integers(0, coarse_small.plan.n_grids, size=sur.n_macro_groups)
            )
        after = {
            node.name: (node.x, node.y) for node in coarse_small.design.netlist
        }
        assert after == before

    def test_rejects_incomplete_assignment(self, coarse_small):
        sur = GroupCentroidSurrogate(coarse_small)
        with pytest.raises(ValueError):
            sur.score([0] * (sur.n_macro_groups + 1))


class TestTwoTierSearch:
    @pytest.fixture
    def setup(self, coarse_small):
        env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
        reward_fn = NormalizedReward(
            w_max=2000.0, w_min=500.0, w_avg=1200.0, alpha=0.75
        )
        return env, net, reward_fn

    def _fresh_env(self, env):
        return MacroGroupPlacementEnv(copy.deepcopy(env.coarse), cell_place_iters=1)

    def test_measure_only_mode_is_bitwise_identical(self, setup):
        """Surrogate attached with exact_topk=None: fidelity is measured
        but nothing is pruned — the search result must not move a bit."""
        env, net, reward_fn = setup
        cfg = MCTSConfig(explorations=6, seed=2)
        base = MCTSPlacer(env, net, reward_fn, cfg).run()
        env2 = self._fresh_env(env)
        placer = MCTSPlacer(
            env2, net, reward_fn, cfg,
            surrogate=GroupCentroidSurrogate(env2.coarse),
        )
        measured = placer.run()
        assert measured.assignment == base.assignment
        assert measured.wirelength == base.wirelength
        assert measured.best_terminal_wirelength == base.best_terminal_wirelength
        assert measured.n_exact_evaluations == base.n_exact_evaluations
        assert measured.n_surrogate_evaluations > 0

    def test_huge_k_is_bitwise_identical(self, setup):
        """A K larger than the number of terminals admits everything —
        bit-for-bit the single-tier search."""
        env, net, reward_fn = setup
        base = MCTSPlacer(
            env, net, reward_fn, MCTSConfig(explorations=6, seed=2)
        ).run()
        topk = MCTSPlacer(
            self._fresh_env(env), net, reward_fn,
            MCTSConfig(explorations=6, seed=2, exact_topk=10**6),
        ).run()
        assert topk.assignment == base.assignment
        assert topk.wirelength == base.wirelength
        assert topk.best_terminal_wirelength == base.best_terminal_wirelength
        assert topk.n_exact_evaluations == base.n_exact_evaluations

    def test_small_k_prunes_but_reports_exact(self, setup):
        env, net, reward_fn = setup
        base = MCTSPlacer(
            env, net, reward_fn, MCTSConfig(explorations=8, seed=1)
        ).run()
        env2 = self._fresh_env(env)
        pruned = MCTSPlacer(
            env2, net, reward_fn,
            MCTSConfig(explorations=8, seed=1, exact_topk=2),
        ).run()
        assert pruned.n_exact_evaluations <= base.n_exact_evaluations
        assert pruned.n_surrogate_evaluations > 0
        # The committed wirelength is always a real pipeline measurement.
        check_env = self._fresh_env(env)
        assert pruned.wirelength == check_env.evaluate_assignment(
            pruned.assignment
        )
        # ... and so is the anytime best-terminal.
        if pruned.best_terminal_assignment is not None:
            assert pruned.best_terminal_wirelength == check_env.evaluate_assignment(
                pruned.best_terminal_assignment
            )

    def test_k_zero_prunes_every_search_time_exact_call(self, setup):
        env, net, reward_fn = setup
        result = MCTSPlacer(
            self._fresh_env(env), net, reward_fn,
            MCTSConfig(explorations=4, seed=0, exact_topk=0),
        ).run()
        assert result.n_exact_evaluations == 0
        assert result.n_surrogate_evaluations > 0
        assert len(result.assignment) == env.n_steps
        assert math.isfinite(result.wirelength)

    def test_inflight_future_reused_not_resubmitted(self, setup):
        """A key already in flight on a pool worker rides that future;
        the avoided resubmission counts as a terminal-cache hit."""
        env, net, reward_fn = setup

        class _Done:
            def __init__(self, value):
                self._value = value

            def result(self):
                return self._value

        placer = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=2))
        key = tuple([0] * env.n_steps)
        placer._inflight[key] = _Done(1234.5)
        value = placer._terminal_value(list(key))
        assert value == pytest.approx(float(reward_fn(1234.5)))
        assert placer.n_terminal_cache_hits == 1
        assert placer.n_exact_evaluations == 0

    def test_pooled_waves_never_submit_a_key_twice(self, setup):
        env, net, reward_fn = setup

        class _Done:
            def __init__(self, value):
                self._value = value

            def result(self):
                return self._value

        class _CountingPool:
            """In-process stand-in for TerminalEvaluationPool: resolves
            immediately but journals every submission per key."""

            parallel = True

            def __init__(self, pool_env):
                self.env = pool_env
                self.submissions: dict[tuple[int, ...], int] = {}

            def submit(self, key):
                self.submissions[key] = self.submissions.get(key, 0) + 1
                return _Done(self.env.evaluate_assignment(list(key)))

            def evaluate(self, key):
                return self.env.evaluate_assignment(list(key))

        cfg = MCTSConfig(explorations=8, seed=4, leaf_batch=4, exact_topk=3)
        env_pool = self._fresh_env(env)
        pool = _CountingPool(self._fresh_env(env))
        pooled = MCTSPlacer(
            env_pool, net, reward_fn, cfg, terminal_pool=pool
        ).run()
        assert pool.submissions  # the wave path actually dispatched
        assert max(pool.submissions.values()) == 1
        # Pooled and in-process two-tier searches agree bitwise.
        inproc = MCTSPlacer(self._fresh_env(env), net, reward_fn, cfg).run()
        assert pooled.assignment == inproc.assignment
        assert pooled.wirelength == inproc.wirelength

    def test_checkpoint_resume_is_bitwise_with_pruning(self, setup):
        """Heap + calibration pairs round-trip through a snapshot: a
        resumed pruned search finishes exactly like an uninterrupted one."""
        env, net, reward_fn = setup
        cfg = MCTSConfig(explorations=6, seed=5, exact_topk=2)
        snapshots = []
        full = MCTSPlacer(
            self._fresh_env(env), net, reward_fn, cfg,
            # The harness pickles each snapshot to disk, freezing it; the
            # in-memory dict holds live tree references, so freeze by copy.
            on_commit=lambda state: snapshots.append(copy.deepcopy(state)),
        ).run()
        if len(snapshots) < 2:
            pytest.skip("search too short to interrupt")
        resumed = MCTSPlacer(
            self._fresh_env(env), net, reward_fn, cfg
        ).run(resume_state=snapshots[len(snapshots) // 2 - 1])
        assert resumed.assignment == full.assignment
        assert resumed.wirelength == full.wirelength
        assert resumed.best_terminal_wirelength == full.best_terminal_wirelength

    def test_fidelity_reported_when_surrogate_active(self, setup):
        env, net, reward_fn = setup
        result = MCTSPlacer(
            self._fresh_env(env), net, reward_fn,
            MCTSConfig(explorations=8, seed=1, exact_topk=4),
        ).run()
        if result.surrogate_spearman is not None:
            assert -1.0 <= result.surrogate_spearman <= 1.0
        base = MCTSPlacer(
            self._fresh_env(env), net, reward_fn, MCTSConfig(explorations=4)
        ).run()
        assert base.surrogate_spearman is None
        assert base.n_surrogate_evaluations == 0


class TestIncrementalLegalizer:
    def _positions(self, coarse):
        return {node.name: (node.x, node.y) for node in coarse.design.netlist}

    def test_bitwise_equivalent_to_from_scratch(self, coarse_small):
        """Every cached reuse (LU factorization, step-1 netlist, axis-net
        topology, region memo) must reproduce from-scratch positions
        exactly — including on repeated assignments."""
        baseline_coarse = coarse_small
        incr_coarse = copy.deepcopy(coarse_small)
        baseline = MacroLegalizer()
        incremental = IncrementalMacroLegalizer()
        n, grids = coarse_small.n_macro_groups, coarse_small.plan.n_grids
        rng = np.random.default_rng(7)
        assignments = [
            [int(a) for a in rng.integers(0, grids, size=n)] for _ in range(4)
        ]
        assignments.append(list(assignments[0]))  # repeat → memo hits
        for assignment in assignments:
            baseline.legalize(baseline_coarse, assignment)
            incremental.legalize(incr_coarse, assignment)
            assert self._positions(incr_coarse) == self._positions(
                baseline_coarse
            )
        stats = incremental.cache_stats()
        assert stats["legalize_calls"] == len(assignments)
        assert stats["factor_hits"] > 0
        assert stats["region_memo_hits"] > 0

    def test_self_check_finds_no_divergence(self, coarse_small):
        legalizer = IncrementalMacroLegalizer(self_check=True)
        n, grids = coarse_small.n_macro_groups, coarse_small.plan.n_grids
        rng = np.random.default_rng(9)
        for _ in range(3):
            legalizer.legalize(
                coarse_small,
                [int(a) for a in rng.integers(0, grids, size=n)],
            )
        assert legalizer.cache_stats()["equivalence_failures"] == 0

    def test_new_coarse_drops_caches(self, coarse_small):
        legalizer = IncrementalMacroLegalizer()
        n = coarse_small.n_macro_groups
        legalizer.legalize(coarse_small, [0] * n)
        other = copy.deepcopy(coarse_small)
        legalizer.legalize(other, [0] * n)
        # Second coarse rebuilt everything: misses again, no stale reuse.
        assert legalizer.cache_stats()["legalize_calls"] == 2
