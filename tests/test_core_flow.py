"""End-to-end flow tests (Algorithm 1) and config validation."""

import pytest

from repro.core import MCTSGuidedPlacer, PlacerConfig
from repro.core.config import PlacerConfig as PC
from repro.agent.network import NetworkConfig
from repro.eval.metrics import macro_overlap_area, out_of_region_area


class TestPlacerConfig:
    def test_defaults_consistent(self):
        cfg = PlacerConfig()
        assert cfg.network.zeta == cfg.zeta

    def test_zeta_propagates_to_network(self):
        cfg = PlacerConfig(zeta=4)
        assert cfg.network.zeta == 4

    def test_paper_config_matches_published_values(self):
        cfg = PlacerConfig.paper()
        assert cfg.zeta == 16
        assert cfg.network.channels == 128
        assert cfg.network.res_blocks == 10
        assert cfg.update_every == 30
        assert cfg.calibration_episodes == 50
        assert cfg.mcts.c_puct == pytest.approx(1.05)
        assert 0.5 <= cfg.alpha <= 1.0
        assert cfg.gamma_params.delta == pytest.approx(0.001)
        assert cfg.gamma_params.epsilon == pytest.approx(0.0003)
        assert cfg.gamma_params.kappa == pytest.approx(1.0)
        assert cfg.gamma_params.threshold == pytest.approx(0.001)
        assert cfg.phi_params.rho == pytest.approx(1.0)

    def test_fast_config_is_small(self):
        cfg = PlacerConfig.fast()
        assert cfg.episodes <= 30
        assert cfg.network.channels <= 16


class TestFullFlow:
    @pytest.fixture(scope="class")
    def flow_result(self, _flow_design):
        design, result = _flow_design
        return design, result

    @pytest.fixture(scope="class")
    def _flow_design(self):
        import copy

        from tests.conftest import _SMALL_SPEC
        from repro.netlist.generator import generate_design

        design = generate_design(copy.deepcopy(_SMALL_SPEC))
        cfg = PC.fast(seed=1)
        result = MCTSGuidedPlacer(cfg).place(design)
        return design, result

    def test_hpwl_positive(self, flow_result):
        _, result = flow_result
        assert result.hpwl > 0

    def test_final_placement_legal(self, flow_result):
        design, _ = flow_result
        assert macro_overlap_area(design) < 1e-9
        assert out_of_region_area(design) < 1e-6

    def test_assignment_complete(self, flow_result):
        _, result = flow_result
        assert len(result.assignment) == result.n_macro_groups

    def test_history_populated(self, flow_result):
        _, result = flow_result
        assert len(result.history.rewards) == PC.fast().episodes

    def test_stopwatch_covers_stages(self, flow_result):
        _, result = flow_result
        for stage in ("prototype", "preprocess", "calibration", "rl_training",
                      "mcts", "final"):
            assert result.stopwatch.total(stage) > 0
        assert result.mcts_runtime == result.stopwatch.total("mcts")

    def test_stage_seconds_breakdown(self, flow_result):
        """The per-stage wall-clock accessor the CLI and service print."""
        _, result = flow_result
        breakdown = result.stage_seconds
        assert tuple(breakdown) == result.STAGE_ORDER
        for stage, seconds in breakdown.items():
            assert seconds == result.stopwatch.total(stage)
        # Cell legalization is off by default, so its slot reads zero.
        assert breakdown["cell_legalization"] == 0.0
        assert sum(breakdown.values()) == pytest.approx(
            result.stopwatch.overall()
        )

    def test_result_accessors(self, flow_result):
        _, result = flow_result
        assert result.n_macro_groups == len(result.assignment) > 0
        assert result.mcts_runtime > 0

    def test_flow_beats_random_play(self, flow_result):
        """The training process must beat the mean random-play wirelength
        captured by the reward calibration; the committed MCTS result may
        wobble around it at the minimal CI budget (20 episodes, γ=8), so it
        only gets a noise margin."""
        _, result = flow_result
        assert result.history.best_wirelength() < result.reward_fn.w_avg
        assert result.hpwl < result.reward_fn.w_avg * 1.15

    def test_checkpointing_through_flow(self):
        import copy

        from tests.conftest import _SMALL_SPEC
        from repro.netlist.generator import generate_design
        from dataclasses import replace

        design = generate_design(copy.deepcopy(_SMALL_SPEC))
        cfg = replace(PC.fast(seed=2), checkpoint_every=10)
        result = MCTSGuidedPlacer(cfg).place(design)
        assert len(result.history.snapshots) == cfg.episodes // 10


class TestCellLegalizationOption:
    def test_flow_with_legalize_cells(self):
        import copy
        from dataclasses import replace

        from tests.conftest import _SMALL_SPEC
        from repro.netlist.generator import generate_design

        design = generate_design(copy.deepcopy(_SMALL_SPEC))
        cfg = replace(PC.fast(seed=4), legalize_cells=True)
        result = MCTSGuidedPlacer(cfg).place(design)
        assert result.legal_hpwl is not None
        assert result.cell_legalization is not None
        assert result.cell_legalization.failed == 0
        # Legalized cells must not overlap each other or macros.
        cells = design.netlist.cells
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                assert not cells[i].overlaps(cells[j])
            for m in design.netlist.macros:
                assert not cells[i].overlaps(m)

    def test_flow_without_legalize_cells_default(self):
        import copy

        from tests.conftest import _SMALL_SPEC
        from repro.netlist.generator import generate_design

        design = generate_design(copy.deepcopy(_SMALL_SPEC))
        result = MCTSGuidedPlacer(PC.fast(seed=4)).place(design)
        assert result.legal_hpwl is None
