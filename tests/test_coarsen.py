"""Coarsening tests: scores Γ/φ, greedy clustering, coarse netlist."""

import numpy as np
import pytest

from repro.coarsen.cluster import (
    cluster_cells,
    cluster_macros,
    greedy_cluster,
    singleton_groups,
)
from repro.coarsen.coarse import coarsen_design
from repro.coarsen.groups import Group, GroupKind
from repro.coarsen.scores import (
    GammaParams,
    PhiParams,
    gamma_score,
    phi_score,
)
from repro.grid.plan import GridPlan
from repro.netlist.model import Macro, Net, Pin


def make_group(gid, cx, cy, area=10.0, hierarchy="", kind=GroupKind.MACRO):
    return Group(
        gid=gid, kind=kind, members=[f"n{gid}"], area=area, cx=cx, cy=cy,
        hierarchy=hierarchy, bbox=(cx - 1, cy - 1, cx + 1, cy + 1),
    )


class TestGammaScore:
    def test_distance_dominates(self):
        near = gamma_score(make_group(0, 0, 0), make_group(1, 1, 0), 0.0)
        far = gamma_score(make_group(0, 0, 0), make_group(1, 100, 0), 0.0)
        assert near > far

    def test_hierarchy_term(self):
        p = GammaParams(delta=10.0)
        a = make_group(0, 0, 0, hierarchy="top/cpu/alu")
        b_same = make_group(1, 10, 0, hierarchy="top/cpu/fpu")
        b_other = make_group(2, 10, 0, hierarchy="io/uart")
        assert gamma_score(a, b_same, 0.0, p) > gamma_score(a, b_other, 0.0, p)

    def test_connectivity_term(self):
        a, b = make_group(0, 0, 0), make_group(1, 10, 0)
        assert gamma_score(a, b, 100.0) > gamma_score(a, b, 0.0)

    def test_area_similarity_term(self):
        a = make_group(0, 0, 0, area=10.0)
        b_same = make_group(1, 10, 0, area=10.0)
        b_diff = make_group(2, 10, 0, area=100.0)
        assert gamma_score(a, b_same, 0.0) > gamma_score(a, b_diff, 0.0)

    def test_zero_distance_guarded(self):
        a, b = make_group(0, 5, 5), make_group(1, 5, 5)
        assert np.isfinite(gamma_score(a, b, 0.0))

    def test_symmetry(self):
        a = make_group(0, 0, 0, area=5.0, hierarchy="t/x")
        b = make_group(1, 7, 3, area=9.0, hierarchy="t/y")
        assert gamma_score(a, b, 2.0) == pytest.approx(gamma_score(b, a, 2.0))


class TestPhiScore:
    def test_distance_dominates(self):
        near = phi_score(make_group(0, 0, 0), make_group(1, 1, 0), 0.0)
        far = phi_score(make_group(0, 0, 0), make_group(1, 50, 0), 0.0)
        assert near > far

    def test_connectivity_normalized_by_area(self):
        small = phi_score(
            make_group(0, 0, 0, area=1.0), make_group(1, 10, 0, area=1.0), 4.0
        )
        big = phi_score(
            make_group(0, 0, 0, area=100.0), make_group(1, 10, 0, area=100.0), 4.0
        )
        assert small > big

    def test_symmetry(self):
        a = make_group(0, 0, 0, area=2.0)
        b = make_group(1, 3, 4, area=8.0)
        assert phi_score(a, b, 1.0) == pytest.approx(phi_score(b, a, 1.0))


class TestGroupMerging:
    def test_merged_centroid_is_area_weighted(self):
        a = make_group(0, 0.0, 0.0, area=10.0)
        b = make_group(1, 10.0, 0.0, area=30.0)
        m = a.merged_with(b, gid=2)
        assert m.cx == pytest.approx(7.5)
        assert m.area == 40.0

    def test_merged_members_concatenate(self):
        m = make_group(0, 0, 0).merged_with(make_group(1, 1, 1), gid=2)
        assert m.members == ["n0", "n1"]

    def test_merged_hierarchy_is_common_prefix(self):
        a = make_group(0, 0, 0, hierarchy="top/cpu/alu")
        b = make_group(1, 1, 1, hierarchy="top/cpu/fpu")
        assert a.merged_with(b, 2).hierarchy == "top/cpu"

    def test_merged_bbox_unions(self):
        a = make_group(0, 0, 0)
        b = make_group(1, 10, 10)
        m = a.merged_with(b, 2)
        assert m.bbox == (-1, -1, 11, 11)

    def test_shape_preserves_area(self):
        g = make_group(0, 0, 0, area=36.0)
        w, h = g.shape()
        assert w * h == pytest.approx(36.0)

    def test_shape_clamps_aspect(self):
        g = make_group(0, 0, 0, area=16.0)
        g.bbox = (0.0, 0.0, 100.0, 1.0)  # extreme aspect
        w, h = g.shape(max_aspect=2.0)
        assert w / h == pytest.approx(2.0)

    def test_of_node_captures_attributes(self):
        m = Macro("m", 4.0, 2.0, x=10.0, y=20.0, hierarchy="a/b")
        g = Group.of_node(5, m, GroupKind.MACRO)
        assert g.area == 8.0
        assert (g.cx, g.cy) == (12.0, 21.0)
        assert g.hierarchy == "a/b"


class TestGreedyCluster:
    def _seeds(self, positions, area=4.0):
        return [
            make_group(i, x, y, area=area) for i, (x, y) in enumerate(positions)
        ]

    def test_close_pair_merges(self):
        seeds = self._seeds([(0, 0), (0.5, 0), (100, 100)])
        out = greedy_cluster(seeds, [], lambda a, b, w: gamma_score(a, b, w),
                             max_area=100.0, threshold=0.5)
        sizes = sorted(len(g.members) for g in out)
        assert sizes == [1, 2]

    def test_max_area_respected(self):
        seeds = self._seeds([(0, 0), (0.1, 0), (0.2, 0)], area=60.0)
        out = greedy_cluster(seeds, [], lambda a, b, w: gamma_score(a, b, w),
                             max_area=100.0, threshold=0.0)
        assert all(g.area <= 120.0 for g in out)
        # No group can absorb a third member (2*60 > 100 already blocks pairs)
        assert all(len(g.members) == 1 for g in out)

    def test_threshold_stops_merging(self):
        seeds = self._seeds([(0, 0), (1000, 1000)])
        out = greedy_cluster(seeds, [], lambda a, b, w: gamma_score(a, b, w),
                             max_area=1e9, threshold=10.0)
        assert len(out) == 2

    def test_connectivity_drives_merges(self):
        seeds = self._seeds([(0, 0), (50, 0), (50.1, 100)])
        nets = [Net("n", pins=[Pin("n0"), Pin("n1")], weight=1.0)] * 5
        score = lambda a, b, w: 1e-6 + w  # connectivity-only score
        out = greedy_cluster(seeds, nets, score, max_area=1e9, threshold=0.5)
        merged = [g for g in out if len(g.members) == 2]
        assert merged and set(merged[0].members) == {"n0", "n1"}

    def test_members_conserved(self, placed_design):
        plan_area = 400.0
        groups = cluster_macros(placed_design.netlist, plan_area)
        members = sorted(m for g in groups for m in g.members)
        expected = sorted(m.name for m in placed_design.netlist.movable_macros)
        assert members == expected

    def test_cell_grouping_reduces_count(self, placed_design):
        groups = cluster_cells(placed_design.netlist, max_area=1e9)
        assert 0 < len(groups) < len(placed_design.netlist.cells)

    def test_singleton_groups(self, placed_design):
        pads = placed_design.netlist.pads
        groups = singleton_groups(pads, GroupKind.FIXED, start_gid=100)
        assert len(groups) == len(pads)
        assert groups[0].gid == 100
        assert all(len(g.members) == 1 for g in groups)


class TestCoarsenDesign:
    def test_macro_groups_sorted_by_area(self, coarse_small):
        areas = [g.area for g in coarse_small.macro_groups]
        assert areas == sorted(areas, reverse=True)

    def test_all_movable_macros_covered(self, coarse_small):
        members = sorted(
            m for g in coarse_small.macro_groups for m in g.members
        )
        expected = sorted(
            m.name for m in coarse_small.design.netlist.movable_macros
        )
        assert members == expected

    def test_fixed_groups_cover_pads_and_preplaced(self, coarse_small):
        nl = coarse_small.design.netlist
        assert len(coarse_small.fixed_groups) == len(nl.pads) + len(
            nl.preplaced_macros
        )

    def test_coarse_nets_span_multiple_groups(self, coarse_small):
        for cnet in coarse_small.coarse_nets:
            assert len(cnet.groups) >= 2
            assert len(set(cnet.groups)) == len(cnet.groups)

    def test_coarse_net_weights_accumulate(self, coarse_small):
        total_weight = sum(c.weight for c in coarse_small.coarse_nets)
        assert total_weight > 0
        # Merged projection can never exceed the original net count (all
        # original weights are 1.0 here).
        assert total_weight <= len(coarse_small.design.netlist.nets)

    def test_as_netlist_structure(self, coarse_small):
        nl = coarse_small.as_netlist()
        n_groups = len(coarse_small.all_groups)
        assert len(nl) == n_groups
        assert len(nl.nets) == len(coarse_small.coarse_nets)

    def test_as_netlist_fixed_flags(self, coarse_small):
        nl = coarse_small.as_netlist()
        n_mg = coarse_small.n_macro_groups
        n_cg = len(coarse_small.cell_groups)
        for i in range(len(coarse_small.all_groups)):
            node = nl[coarse_small.group_node_name(i)]
            if i < n_mg + n_cg:
                assert not node.fixed
            else:
                assert node.fixed

    def test_group_span_positive(self, coarse_small):
        for i in range(coarse_small.n_macro_groups):
            rows, cols = coarse_small.group_span(i)
            assert rows >= 1 and cols >= 1

    def test_scatter_macro_group_rigid(self, coarse_small):
        g = coarse_small.macro_groups[0]
        nl = coarse_small.design.netlist
        before = [(nl[m].cx - g.cx, nl[m].cy - g.cy) for m in g.members]
        coarse_small.scatter_macro_group(0, 12.3, 4.5)
        after = [(nl[m].cx - 12.3, nl[m].cy - 4.5) for m in g.members]
        for (bx, by), (ax, ay) in zip(before, after):
            assert ax == pytest.approx(bx)
            assert ay == pytest.approx(by)
        assert (g.cx, g.cy) == (12.3, 4.5)
