"""Fault-tolerant runtime: checkpoint/resume, guards, budgets, injection.

The headline tests drive the full flow through ``place(run_dir=...)``
with deterministic injected faults and assert the two ISSUE acceptance
properties:

- a run killed mid-training (or mid-MCTS) and resumed from its run dir
  produces the *bit-for-bit* same final HPWL and macro positions as an
  uninterrupted same-seed run;
- injected LP-infeasibility and NaN-loss faults complete with recorded
  degradation events instead of raising.
"""

from __future__ import annotations

import copy
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core import MCTSGuidedPlacer
from repro.core.config import PlacerConfig as PC
from repro.netlist.generator import generate_design
from repro.runtime import faults as fault_mod
from repro.runtime.budget import StageBudget
from repro.runtime.checkpoint import RunDir, config_fingerprint
from repro.runtime.errors import (
    CalibrationError,
    FaultInjected,
    PlacementError,
    SolverInfeasibleError,
    StageTimeoutError,
    TrainingDivergedError,
    UsageError,
)
from repro.runtime.faults import Fault, FaultPlan, inject
from repro.utils.events import EventLog
from tests.conftest import _SMALL_SPEC


def _design():
    return generate_design(copy.deepcopy(_SMALL_SPEC))


def _cfg(seed: int = 1, **overrides) -> PC:
    cfg = PC.fast(seed=seed)
    return replace(cfg, **overrides) if overrides else cfg


# ---------------------------------------------------------------------------
# unit level: errors, faults, budgets, events
# ---------------------------------------------------------------------------


class TestErrors:
    def test_exit_codes_distinct(self):
        codes = [
            PlacementError.exit_code,
            CalibrationError.exit_code,
            TrainingDivergedError.exit_code,
            SolverInfeasibleError.exit_code,
            StageTimeoutError.exit_code,
            FaultInjected.exit_code,
            UsageError.exit_code,
        ]
        assert len(set(codes)) == len(codes)

    def test_str_carries_stage_and_details(self):
        exc = SolverInfeasibleError("LP failed", stage="mcts", status=2)
        assert "[mcts]" in str(exc)
        assert "status=2" in str(exc)
        assert exc.details["status"] == 2

    def test_hierarchy(self):
        assert issubclass(TrainingDivergedError, PlacementError)
        assert issubclass(FaultInjected, PlacementError)
        # Bookshelf errors stay catchable as ValueError too.
        from repro.netlist.bookshelf import BookshelfError

        assert issubclass(BookshelfError, ValueError)
        assert issubclass(BookshelfError, PlacementError)


class TestFaultPlan:
    def test_arrival_window(self):
        f = Fault("x", at=3, count=2)
        assert [f.arrive() for _ in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_forever(self):
        f = Fault("x", at=2, count=None)
        assert [f.arrive() for _ in range(4)] == [False, True, True, True]

    def test_inject_scopes_active_plan(self):
        plan = FaultPlan(Fault("site.a", at=1))
        assert not fault_mod.should_fire("site.a")
        with inject(plan):
            assert fault_mod.should_fire("site.a")
            assert plan.total_fired("site.a") == 1
        assert fault_mod.active() is None

    def test_check_kill_raises_with_site(self):
        with inject(FaultPlan(Fault("k", at=1))):
            with pytest.raises(FaultInjected, match="injected fault at k"):
                fault_mod.check_kill("k", stage="rl_training")


class TestStageBudget:
    def test_unlimited_never_exhausts(self):
        b = StageBudget("s", None)
        assert not b.exhausted()
        assert b.remaining() == float("inf")

    def test_real_clock(self):
        b = StageBudget("s", 1e-9)
        assert b.exhausted()
        with pytest.raises(StageTimeoutError):
            b.check()

    def test_fault_forced_is_sticky(self):
        with inject(FaultPlan(Fault("budget.s", at=1, count=1))):
            b = StageBudget("s", None)
            assert b.exhausted()
            # count=1 expired, but exhaustion must not un-happen
            assert b.exhausted()


class TestEventLog:
    def test_jsonl_roundtrip_and_torn_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("a", stage="s1", value=1)
        log.emit("b", value=2)
        with open(path, "a") as f:
            f.write('{"name": "torn')  # simulated crash mid-write
        records = EventLog.read(path)
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[0]["stage"] == "s1"
        assert log.count("a") == 1


# ---------------------------------------------------------------------------
# solver guards
# ---------------------------------------------------------------------------


class TestLPDegradation:
    def test_infeasible_lp_falls_back_to_packing(self):
        from repro.legalize.lp_spread import lp_legalize_axis, lp_solve_axis

        # Two rectangles of width 10 chained into a span of 5: infeasible.
        sizes = np.array([10.0, 10.0])
        edges = [(0, 1)]
        with pytest.raises(SolverInfeasibleError):
            lp_solve_axis(sizes, edges, 0.0, 5.0, [])
        seen = []
        pos = lp_legalize_axis(
            sizes, edges, 0.0, 5.0, [], on_degrade=seen.append
        )
        assert len(seen) == 1 and isinstance(seen[0], SolverInfeasibleError)
        assert pos.shape == (2,)
        # Packing keeps the sequence-pair order even when clamped.
        assert pos[0] <= pos[1]

    def test_injected_lp_fault_degrades(self):
        from repro.legalize.lp_spread import lp_legalize_axis

        sizes = np.array([1.0, 1.0])
        edges = [(0, 1)]
        seen = []
        with inject(FaultPlan(Fault("lp.solve", at=1, count=None))):
            pos = lp_legalize_axis(
                sizes, edges, 0.0, 10.0, [], on_degrade=seen.append
            )
        assert len(seen) == 1
        assert pos[0] == 0.0 and pos[1] == 1.0

    def test_lp_fault_through_flow_records_degradations(self):
        design = _design()
        plan = FaultPlan(Fault("lp.solve", at=1, count=None))
        # zeta=4 coarsens this design into multi-macro groups, so the
        # per-region LP spread actually runs (singleton groups skip it).
        result = MCTSGuidedPlacer(_cfg(zeta=4)).place(design, faults=plan)
        assert result.hpwl > 0
        degradations = result.events.of("degradation")
        assert degradations and all(
            e.data["solver"] == "lp" for e in degradations
        )
        assert plan.total_fired("lp.solve") > 0

    def test_qp_fault_through_flow_records_degradations(self):
        design = _design()
        plan = FaultPlan(Fault("qp.solve", at=1, count=None))
        result = MCTSGuidedPlacer(_cfg()).place(design, faults=plan)
        assert result.hpwl > 0
        assert any(
            e.data["solver"] == "qp" for e in result.events.of("degradation")
        )


# ---------------------------------------------------------------------------
# trainer guards
# ---------------------------------------------------------------------------


class TestTrainerGuards:
    def test_nan_loss_rolls_back_and_completes(self):
        design = _design()
        plan = FaultPlan(Fault("trainer.nan_loss", at=1))
        result = MCTSGuidedPlacer(_cfg()).place(design, faults=plan)
        rollbacks = result.events.of("divergence_rollback")
        assert len(rollbacks) == 1
        assert len(result.history.rewards) == _cfg().episodes
        # The poisoned update was rolled back: parameters stayed finite and
        # only the healthy updates recorded a loss.
        assert len(result.history.losses) == _cfg().episodes // _cfg().update_every - 1

    def test_persistent_nan_raises_training_diverged(self):
        design = _design()
        # update_every=5 gives four updates over 20 episodes; every one is
        # poisoned, so the third consecutive rollback exceeds the tolerance.
        cfg = _cfg(max_divergence_rollbacks=2, update_every=5)
        plan = FaultPlan(Fault("trainer.nan_loss", at=1, count=None))
        with pytest.raises(TrainingDivergedError):
            MCTSGuidedPlacer(cfg).place(design, faults=plan)

    def test_episode_exception_skipped(self):
        design = _design()
        plan = FaultPlan(Fault("trainer.episode", at=2, count=3))
        result = MCTSGuidedPlacer(_cfg()).place(design, faults=plan)
        assert len(result.history.rewards) == _cfg().episodes
        assert len(result.events.of("episode_failed")) == 3

    def test_too_many_episode_failures_raise(self):
        design = _design()
        cfg = _cfg(max_episode_failures=2)
        plan = FaultPlan(Fault("trainer.episode", at=1, count=None))
        with pytest.raises(TrainingDivergedError, match="failed episodes"):
            MCTSGuidedPlacer(cfg).place(design, faults=plan)

    def test_final_partial_interval_snapshotted(self, coarse_small):
        """train(7, checkpoint_every=3) must snapshot the tail episode 7."""
        from repro.agent.actorcritic import ActorCriticTrainer
        from repro.agent.network import NetworkConfig, PolicyValueNet
        from repro.agent.reward import NormalizedReward
        from repro.env.placement_env import MacroGroupPlacementEnv

        env = MacroGroupPlacementEnv(coarse_small)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1))
        reward = NormalizedReward(w_max=2.0, w_min=0.5, w_avg=1.0, alpha=0.75)
        trainer = ActorCriticTrainer(env, net, reward, update_every=3)
        hist = trainer.train(7, checkpoint_every=3)
        assert [s.episode for s in hist.snapshots] == [3, 6, 7]
        # On-cadence finals keep the historical behaviour (no duplicate).
        hist2 = ActorCriticTrainer(env, net, reward, update_every=3).train(
            6, checkpoint_every=3
        )
        assert [s.episode for s in hist2.snapshots] == [3, 6]


# ---------------------------------------------------------------------------
# budgets (fault-forced: no real waiting)
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_rl_budget_gives_anytime_history(self):
        design = _design()
        # Exhaust the RL budget after 5 episode-boundary polls.
        plan = FaultPlan(Fault("budget.rl_training", at=6, count=None))
        result = MCTSGuidedPlacer(_cfg()).place(design, faults=plan)
        assert result.hpwl > 0
        assert len(result.history.rewards) == 5
        exhausted = result.events.of("budget_exhausted")
        assert exhausted and exhausted[0].stage == "rl_training"

    def test_mcts_budget_commits_by_prior(self):
        design = _design()
        plan = FaultPlan(Fault("budget.mcts", at=1, count=None))
        result = MCTSGuidedPlacer(_cfg()).place(design, faults=plan)
        assert result.hpwl > 0
        assert len(result.assignment) == result.n_macro_groups
        assert result.events.of("budget_exhausted")

    def test_hard_stage_budget_raises_timeout(self):
        design = _design()
        plan = FaultPlan(Fault("budget.calibration", at=1, count=None))
        with pytest.raises(StageTimeoutError) as err:
            MCTSGuidedPlacer(_cfg()).place(design, faults=plan)
        assert err.value.stage == "calibration"


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------


class TestRunDir:
    def test_fingerprint_ignores_runtime_location(self):
        a = config_fingerprint(_cfg(run_dir="/tmp/a", resume=False))
        b = config_fingerprint(_cfg(run_dir="/tmp/b", resume=True))
        c = config_fingerprint(_cfg(episodes=7))
        assert a == b
        assert a != c

    def test_resume_with_other_config_rejected(self, tmp_path):
        d = str(tmp_path / "run")
        design = _design()
        RunDir(d).init_manifest(_cfg(), design, resume=False)
        with pytest.raises(UsageError, match="different configuration"):
            RunDir(d).init_manifest(_cfg(episodes=7), design, resume=True)

    def test_torn_pickle_treated_as_absent(self, tmp_path):
        d = RunDir(str(tmp_path / "run"))
        d.save_pickle("snap.pkl", {"ok": True})
        with open(d.file("snap.pkl"), "wb") as f:
            f.write(b"\x80\x04garbage")
        assert d.load_pickle("snap.pkl") is None


class TestKillAndResume:
    """The acceptance property: interrupted == uninterrupted, bit for bit."""

    SEED = 3

    def _baseline(self):
        design = _design()
        result = MCTSGuidedPlacer(_cfg(self.SEED, checkpoint_every=5)).place(
            design
        )
        return result, design.clone_placement()

    def test_kill_mid_training_then_resume_is_bit_for_bit(self, tmp_path):
        ref, ref_pos = self._baseline()
        d = str(tmp_path / "run")
        cfg = _cfg(self.SEED, checkpoint_every=5)
        design = _design()
        # Die at the 13th episode boundary: snapshots exist for 5 and 10.
        plan = FaultPlan(Fault("trainer.kill", at=13))
        with pytest.raises(FaultInjected):
            MCTSGuidedPlacer(cfg).place(design, run_dir=d, faults=plan)
        manifest = json.load(open(f"{d}/manifest.json"))
        assert not manifest["stages"].get("rl_training", {}).get("completed")

        design2 = _design()
        result = MCTSGuidedPlacer(cfg).place(design2, run_dir=d, resume=True)
        assert result.hpwl == ref.hpwl
        assert result.assignment == ref.assignment
        assert design2.clone_placement() == ref_pos
        # The completed early stages were skipped, training resumed from
        # the episode-10 snapshot rather than restarting.
        skipped = {e.stage for e in result.events.of("stage_skipped")}
        assert {"prototype", "calibration"} <= skipped
        resumes = result.events.of("resume")
        assert resumes and resumes[0].data["episode"] == 10

    def test_kill_before_first_snapshot_then_resume_is_bit_for_bit(
        self, tmp_path
    ):
        """The pre-PR3 latent divergence, now closed end-to-end.

        Dying before the first RL snapshot leaves nothing to restore:
        resume skips calibration (loaded from JSON) and restarts training
        from episode 0 inside an environment that never replayed the
        calibration episodes.  While terminal evaluation was
        history-dependent, that fresh-history environment could drift from
        the uninterrupted run by ~1e-2 HPWL at a later episode; the
        canonical-rewind purity fix makes the two runs bitwise-identical.
        """
        ref, ref_pos = self._baseline()
        d = str(tmp_path / "run")
        cfg = _cfg(self.SEED, checkpoint_every=5)
        design = _design()
        # Die at the 2nd episode boundary: before the episode-5 snapshot.
        plan = FaultPlan(Fault("trainer.kill", at=2))
        with pytest.raises(FaultInjected):
            MCTSGuidedPlacer(cfg).place(design, run_dir=d, faults=plan)
        manifest = json.load(open(f"{d}/manifest.json"))
        assert not manifest["stages"].get("rl_training", {}).get("completed")

        design2 = _design()
        result = MCTSGuidedPlacer(cfg).place(design2, run_dir=d, resume=True)
        assert result.hpwl == ref.hpwl
        assert result.assignment == ref.assignment
        assert design2.clone_placement() == ref_pos
        skipped = {e.stage for e in result.events.of("stage_skipped")}
        assert "calibration" in skipped
        # no snapshot existed — training restarted, nothing was resumed
        assert not result.events.of("resume")

    def test_kill_mid_mcts_then_resume_is_bit_for_bit(self, tmp_path):
        ref, ref_pos = self._baseline()
        d = str(tmp_path / "run")
        cfg = _cfg(self.SEED, checkpoint_every=5)
        design = _design()
        plan = FaultPlan(Fault("mcts.kill", at=3))
        with pytest.raises(FaultInjected):
            MCTSGuidedPlacer(cfg).place(design, run_dir=d, faults=plan)

        design2 = _design()
        result = MCTSGuidedPlacer(cfg).place(design2, run_dir=d, resume=True)
        assert result.hpwl == ref.hpwl
        assert result.assignment == ref.assignment
        assert design2.clone_placement() == ref_pos
        # rl_training completed before the kill, so resume skips it whole.
        skipped = {e.stage for e in result.events.of("stage_skipped")}
        assert "rl_training" in skipped
        resumes = result.events.of("resume")
        assert resumes and resumes[0].stage == "mcts"
        # the kill fired at the start of step 2, so the snapshot holds the
        # commit of step 1 and the search resumes at step 2
        assert resumes[0].data["step"] == 1

    def test_resume_after_completion_skips_everything(self, tmp_path):
        d = str(tmp_path / "run")
        cfg = _cfg(self.SEED, checkpoint_every=5)
        design = _design()
        first = MCTSGuidedPlacer(cfg).place(design, run_dir=d)

        design2 = _design()
        again = MCTSGuidedPlacer(cfg).place(design2, run_dir=d, resume=True)
        assert again.hpwl == first.hpwl
        assert again.assignment == first.assignment
        assert design2.clone_placement() == design.clone_placement()
        started = {e.stage for e in again.events.of("stage_start")}
        # preprocess is the only recomputed stage (cheap pure derivation).
        assert started == {"preprocess"}

    def test_fresh_run_ignores_stale_state(self, tmp_path):
        d = str(tmp_path / "run")
        cfg = _cfg(self.SEED, checkpoint_every=5)
        design = _design()
        plan = FaultPlan(Fault("trainer.kill", at=13))
        with pytest.raises(FaultInjected):
            MCTSGuidedPlacer(cfg).place(design, run_dir=d, faults=plan)
        # Without resume=True the same run dir starts from scratch.
        design2 = _design()
        result = MCTSGuidedPlacer(cfg).place(design2, run_dir=d)
        assert not result.events.of("stage_skipped")
        assert not result.events.of("resume")
        ref, _ = self._baseline()
        assert result.hpwl == ref.hpwl


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------


class TestCLIExitCodes:
    def test_unknown_circuit_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["place", "--circuit", "nosuch"]) == 64
        assert "unknown circuit" in capsys.readouterr().err

    def test_resume_without_run_dir_rejected(self, capsys):
        from repro.cli import main

        assert main(["place", "--resume"]) == 64
        assert "--run-dir" in capsys.readouterr().err
