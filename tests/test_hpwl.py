"""HPWL engine tests: object-model evaluation, flat view, and equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.hpwl import FlatNetlist, hpwl, net_hpwl
from repro.netlist.model import Cell, Net, Netlist, Pin


def chain_netlist(positions: list[tuple[float, float]]) -> Netlist:
    """Cells at given centers connected pairwise in a chain."""
    nl = Netlist()
    for i, (x, y) in enumerate(positions):
        c = Cell(f"c{i}", 0.0, 0.0)
        c.move_center_to(x, y)
        nl.add_node(c)
    for i in range(len(positions) - 1):
        nl.add_net(Net(f"n{i}", pins=[Pin(f"c{i}"), Pin(f"c{i+1}")]))
    return nl


class TestObjectModelHPWL:
    def test_two_pin_net(self):
        nl = chain_netlist([(0, 0), (3, 4)])
        assert net_hpwl(nl, nl.nets[0]) == pytest.approx(7.0)

    def test_single_pin_net_is_zero(self):
        nl = Netlist()
        nl.add_node(Cell("c", 1, 1))
        net = Net("n", pins=[Pin("c")])
        nl.add_net(net)
        assert net_hpwl(nl, net) == 0.0

    def test_pin_offsets_respected(self):
        nl = Netlist()
        nl.add_node(Cell("a", 4.0, 2.0, x=0.0, y=0.0))
        nl.add_node(Cell("b", 4.0, 2.0, x=10.0, y=0.0))
        net = Net("n", pins=[Pin("a", dx=1.0), Pin("b", dx=-1.0)])
        nl.add_net(net)
        # centers at x=2 and x=12; pins at 3 and 11.
        assert net_hpwl(nl, net) == pytest.approx(8.0)

    def test_total_weighted(self):
        nl = chain_netlist([(0, 0), (1, 0), (2, 0)])
        nl.nets[0].weight = 3.0
        assert hpwl(nl) == pytest.approx(2.0)
        assert hpwl(nl, weighted=True) == pytest.approx(3.0 + 1.0)

    def test_multi_pin_bbox(self):
        nl = Netlist()
        for i, (x, y) in enumerate([(0, 0), (10, 2), (4, 8)]):
            c = Cell(f"c{i}", 0, 0)
            c.move_center_to(x, y)
            nl.add_node(c)
        nl.add_net(Net("n", pins=[Pin("c0"), Pin("c1"), Pin("c2")]))
        assert hpwl(nl) == pytest.approx(10.0 + 8.0)


class TestFlatNetlist:
    def test_matches_object_model(self, placed_design):
        flat = FlatNetlist(placed_design.netlist)
        assert flat.total_hpwl() == pytest.approx(hpwl(placed_design.netlist))

    def test_weighted_matches_object_model(self, placed_design):
        for i, net in enumerate(placed_design.netlist.nets):
            net.weight = 1.0 + (i % 3)
        flat = FlatNetlist(placed_design.netlist)
        assert flat.total_hpwl(weighted=True) == pytest.approx(
            hpwl(placed_design.netlist, weighted=True)
        )

    def test_degenerate_nets_dropped(self):
        nl = Netlist()
        nl.add_node(Cell("c", 1, 1))
        nl.add_net(Net("single", pins=[Pin("c")]))
        nl.add_net(Net("empty", pins=[]))
        flat = FlatNetlist(nl)
        assert flat.n_nets == 0
        assert flat.total_hpwl() == 0.0

    def test_set_centers_moves_hpwl(self):
        nl = chain_netlist([(0, 0), (10, 0)])
        flat = FlatNetlist(nl)
        before = flat.total_hpwl()
        flat.set_centers(np.array([1]), np.array([20.0]), np.array([0.0]))
        assert flat.total_hpwl() == pytest.approx(20.0)
        assert before == pytest.approx(10.0)

    def test_writeback_roundtrip(self):
        nl = chain_netlist([(0, 0), (10, 0)])
        flat = FlatNetlist(nl)
        flat.cx[0] = 5.0
        flat.writeback()
        assert nl["c0"].cx == pytest.approx(5.0)

    def test_refresh_from_model(self):
        nl = chain_netlist([(0, 0), (10, 0)])
        flat = FlatNetlist(nl)
        nl["c0"].move_center_to(3.0, 4.0)
        flat.refresh_from_model()
        assert flat.cx[0] == pytest.approx(3.0)
        assert flat.cy[0] == pytest.approx(4.0)

    def test_per_net_hpwl_shape(self, placed_design):
        flat = FlatNetlist(placed_design.netlist)
        per_net = flat.per_net_hpwl()
        assert per_net.shape == (flat.n_nets,)
        assert (per_net >= 0).all()

    def test_nets_of_node(self):
        nl = chain_netlist([(0, 0), (1, 0), (2, 0)])
        flat = FlatNetlist(nl)
        incidence = flat.nets_of_node()
        assert incidence[0] == [0]
        assert incidence[1] == [0, 1]
        assert incidence[2] == [1]

    def test_empty_netlist(self):
        flat = FlatNetlist(Netlist())
        assert flat.total_hpwl() == 0.0
        assert flat.n_nodes == 0


class TestHPWLProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(-1e3, 1e3, allow_nan=False),
                st.floats(-1e3, 1e3, allow_nan=False),
            ),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_translation_invariance(self, points):
        """HPWL is invariant under a rigid translation of everything."""
        nl = chain_netlist(points)
        flat = FlatNetlist(nl)
        base = flat.total_hpwl()
        flat.cx += 123.0
        flat.cy -= 45.0
        assert flat.total_hpwl() == pytest.approx(base, rel=1e-9, abs=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.floats(-1e3, 1e3, allow_nan=False),
                st.floats(-1e3, 1e3, allow_nan=False),
            ),
            min_size=2,
            max_size=8,
        ),
        st.floats(0.1, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scaling_homogeneity(self, points, k):
        """Scaling all coordinates by k scales HPWL by k."""
        nl = chain_netlist(points)
        flat = FlatNetlist(nl)
        base = flat.total_hpwl()
        flat.cx *= k
        flat.cy *= k
        assert flat.total_hpwl() == pytest.approx(k * base, rel=1e-9, abs=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_and_flat_matches_object(self, points):
        nl = chain_netlist(points)
        flat = FlatNetlist(nl)
        total = flat.total_hpwl()
        assert total >= 0.0
        assert total == pytest.approx(hpwl(nl), rel=1e-9, abs=1e-9)
