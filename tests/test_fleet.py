"""Sharded placement fleet (PR 6).

Covers the lease protocol (exclusive create, expiry steal with fencing
token + nonce read-back, renewal, same-shard takeover, release), the
shared multi-writer journal (incremental refresh, first-submit-wins /
first-terminal-wins replay, two OS processes appending concurrently),
fleet-wide metrics aggregation, in-process shard cooperation (work
sharing, reclaim of a dead shard's QUEUED and RUNNING jobs, fencing of
disowned attempts), and — as the capstone — the multi-process shard-kill
drill at reduced scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.parallel import TerminalCache
from repro.service.chaos import run_fleet_drill
from repro.service.fleet import (
    FleetPaths,
    FleetShard,
    LeaseManager,
    fleet_status,
    write_fleet_metrics,
)
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    JobStore,
)
from repro.service.service import submit_job

#: tiny-but-real spec: one full flow run in well under a second
SPEC = JobSpec(
    circuit="ibm01", scale=0.004, macro_scale=0.04, preset="fast", seed=3
)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- lease protocol -----------------------------------------------------------
class TestLeaseProtocol:
    def test_exclusive_create_blocks_peers(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        lease = a.acquire("job-1")
        assert lease is not None and lease.token == 1
        assert a.owns("job-1")
        assert b.acquire("job-1") is None
        assert not b.owns("job-1")

    def test_acquire_is_idempotent_for_the_owner(self, tmp_path):
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=FakeClock())
        first = a.acquire("job-1")
        again = a.acquire("job-1")
        assert again is first

    def test_expired_lease_is_stolen_with_higher_token(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        a.acquire("job-1")
        clock.advance(5.1)
        stolen = b.acquire("job-1")
        assert stolen is not None and stolen.token == 2
        assert b.owns("job-1")
        # the old owner discovers the loss at its next renewal
        assert not a.renew("job-1")
        assert not a.owns("job-1")

    def test_renewal_keeps_a_lease_alive_past_the_ttl(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        a.acquire("job-1")
        for _ in range(3):
            clock.advance(4.0)
            assert a.renew("job-1")
        assert b.acquire("job-1") is None  # still live after 12s of ttl=5

    def test_same_shard_takeover_skips_the_ttl(self, tmp_path):
        clock = FakeClock()
        a1 = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        a1.acquire("job-1")
        # Replacement daemon under the same shard id: supersedes its dead
        # predecessor immediately — no TTL wait.
        a2 = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        lease = a2.acquire("job-1")
        assert lease is not None and lease.token == 2
        assert not a1.renew("job-1")

    def test_release_frees_the_id(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        a.acquire("job-1")
        a.release("job-1")
        assert not a.owns("job-1")
        fresh = b.acquire("job-1")
        assert fresh is not None and fresh.token == 1

    def test_corrupt_lease_file_is_stealable(self, tmp_path):
        clock = FakeClock()
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        with open(tmp_path / "job-1.lease", "w") as f:
            f.write("not json at all")
        lease = b.acquire("job-1")
        assert lease is not None and lease.token == 1

    def test_racing_stealers_last_writer_wins(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        c = LeaseManager(str(tmp_path), "c", ttl=5.0, clock=clock)
        a.acquire("job-1")
        clock.advance(6.0)
        expired = a._read("job-1")
        # Both stealers observed the same expired lease; their replaces
        # race and the read-back decides: the later write wins, the
        # earlier contender is fenced out.
        assert b._steal("job-1", expired) is not None
        assert c._steal("job-1", expired) is not None
        assert c.owns("job-1")
        assert not b.renew("job-1")
        assert not b.owns("job-1")

    def test_renewal_detects_mid_flight_theft(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), "a", ttl=5.0, clock=clock)
        b = LeaseManager(str(tmp_path), "b", ttl=5.0, clock=clock)
        a.acquire("job-1")
        clock.advance(6.0)
        assert b.acquire("job-1") is not None
        assert not a.renew("job-1")  # write-back loses to b's newer nonce
        assert b.renew("job-1")


# -- the shared multi-writer journal ------------------------------------------
class TestSharedJournal:
    def test_refresh_folds_in_peer_appends(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        a = JobStore(path).load()
        b = JobStore(path).load()
        job = a.add(SPEC, job_id="job-x")
        assert b.get("job-x") is None
        b.refresh()
        assert b.get("job-x").state == QUEUED
        b.transition("job-x", RUNNING, attempt=1)
        a.refresh()
        assert a.get("job-x").state == RUNNING
        assert a.get("job-x").attempts == 1
        assert job.id == "job-x"

    def test_first_terminal_wins_in_replay_and_live(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        a = JobStore(path).load()
        b = JobStore(path).load()
        a.add(SPEC, job_id="job-x")
        b.refresh()
        a.transition("job-x", DONE, hpwl=123.0)
        b.refresh()
        n_records = len(open(path).readlines())
        # A fenced-out writer trying to re-decide the finished job is a
        # no-op: nothing journaled, stale counter bumped.
        result = b.transition("job-x", FAILED, error={"kind": "Zombie"})
        assert result.state == DONE
        assert b.stale_records >= 1
        assert len(open(path).readlines()) == n_records
        assert JobStore(path).load().get("job-x").hpwl == 123.0

    def test_own_records_reapply_as_noops(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        a = JobStore(path).load()
        a.add(SPEC, job_id="job-x")
        a.transition("job-x", RUNNING, attempt=1)
        a.transition("job-x", DONE, hpwl=9.0)
        before = {j.id: (j.state, j.hpwl) for j in a.jobs()}
        a.refresh()  # re-reads its own appends
        assert {j.id: (j.state, j.hpwl) for j in a.jobs()} == before

    def test_shard_tag_lands_in_every_record(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        a = JobStore(path)
        a.tag = {"shard": "shard-7"}
        a.load()
        a.add(SPEC, job_id="job-x")
        a.transition("job-x", RUNNING, attempt=1)
        records = [json.loads(line) for line in open(path)]
        assert all(r["shard"] == "shard-7" for r in records)
        reloaded = JobStore(path).load()
        assert reloaded.get("job-x").shard == "shard-7"

    def test_two_processes_append_concurrently(self, tmp_path):
        """Two OS processes hammer one journal and one terminal-cache
        file; the replayed state is the exact union — no loss, no
        duplicates, no corrupt entries."""
        journal = str(tmp_path / "jobs.jsonl")
        cache_path = str(tmp_path / "terminal_cache.jsonl")
        n = 60
        script = (
            "import sys\n"
            "from repro.service.jobs import JobSpec, JobStore\n"
            "from repro.parallel import TerminalCache\n"
            "who, journal, cache_path, n = sys.argv[1:5]\n"
            "n = int(n)\n"
            "store = JobStore(journal)\n"
            "store.tag = {'shard': who}\n"
            "store.load()\n"
            "cache = TerminalCache('fp', path=cache_path)\n"
            "spec = JobSpec(circuit='ibm01')\n"
            "for i in range(n):\n"
            "    store.add(spec, job_id=f'job-{who}-{i}')\n"
            "    store.transition(f'job-{who}-{i}', 'DONE', hpwl=float(i))\n"
            "    cache.put([ord(who), i], float(i))\n"
            "    cache.put([0, i], float(i))  # shared key, same value\n"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, who, journal, cache_path,
                 str(n)],
                env=env,
            )
            for who in ("a", "b")
        ]
        assert [p.wait() for p in procs] == [0, 0]

        store = JobStore(journal).load()
        jobs = store.jobs()
        assert len(jobs) == 2 * n
        assert {j.id for j in jobs} == {
            f"job-{who}-{i}" for who in "ab" for i in range(n)
        }
        assert all(j.state == DONE for j in jobs)
        # every line parses whole: single-syscall appends never interleave
        for line in open(journal):
            json.loads(line)
        cache = TerminalCache("fp", path=cache_path)
        assert cache.corrupt_entries == 0
        assert len(cache) == 3 * n  # a-keys + b-keys + shared keys
        for i in range(n):
            assert cache.get([0, i]) == float(i)


# -- fleet metrics aggregation ------------------------------------------------
class TestFleetMetrics:
    def test_merge_counters_gauges_histograms(self, tmp_path):
        paths = FleetPaths(str(tmp_path)).ensure()
        for shard, done in (("s0", 2), ("s1", 3)):
            snap = {
                "shard": shard,
                "ts": 1.0,
                "queue_depth": 0,
                "jobs": {"DONE": done},
                "counters": {"jobs_done": done, "leases_lost": 1},
                "gauges": {"leases_held": 1},
                "histograms": {
                    "job_seconds": {
                        "count": done, "sum": float(done), "mean": 1.0,
                        "min": 0.5, "max": 1.5, "p50": 1.0, "p90": 1.5,
                    }
                },
            }
            with open(paths.shard_metrics(shard), "w") as f:
                json.dump(snap, f)
        merged = write_fleet_metrics(paths, counts={"DONE": 5})
        assert merged["n_shards"] == 2
        assert merged["counters"]["jobs_done"] == 5
        assert merged["counters"]["leases_lost"] == 2
        assert merged["gauges"]["leases_held"] == 2
        hist = merged["histograms"]["job_seconds"]
        assert hist["count"] == 5 and hist["sum"] == 5.0
        assert hist["min"] == 0.5 and hist["max"] == 1.5
        assert "p50" not in hist  # cross-shard percentiles are dropped
        assert os.path.exists(paths.fleet_metrics)


# -- in-process shard cooperation ---------------------------------------------
def _shard(tmp_path, name, **kw):
    kw.setdefault("lease_ttl", 5.0)
    kw.setdefault("poll_interval", 0.01)
    kw.setdefault("backoff_base", 0.05)
    return FleetShard(str(tmp_path), shard=name, **kw)


def _drive(shards, total, timeout=90.0):
    for s in shards:
        s.scheduler.start()
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            for s in shards:
                s.poll()
            counts = shards[0].store.counts()
            if sum(counts[st] for st in TERMINAL_STATES) >= total:
                return
            time.sleep(0.01)
        raise AssertionError(
            f"fleet did not converge: {shards[0].store.counts()}"
        )
    finally:
        for s in shards:
            s.scheduler.stop()


class TestFleetShard:
    def test_two_shards_share_one_directory(self, tmp_path):
        ids = [
            submit_job(str(tmp_path), JobSpec(**{**SPEC.to_json(), "seed": s}))
            for s in (3, 4)
        ]
        a = _shard(tmp_path, "a")
        b = _shard(tmp_path, "b")
        _drive([a, b], total=2)
        for shard in (a, b):
            shard.store.refresh()
            for job_id in ids:
                job = shard.store.get(job_id)
                assert job.state == DONE and job.hpwl is not None
                assert job.shard in ("a", "b")
        # leases are released once jobs are terminal
        a.poll()
        b.poll()
        assert fleet_status(str(tmp_path))["leases"] == []
        # every result file exists exactly once
        for job_id in ids:
            assert os.path.exists(a.paths.result_file(job_id))

    def test_queued_orphan_reclaimed_after_ttl(self, tmp_path):
        job_id = submit_job(str(tmp_path), SPEC)
        a = _shard(tmp_path, "a", lease_ttl=0.2)
        a.poll()  # admits + leases the job; scheduler never started = death
        assert a.store.get(job_id).state == QUEUED
        b = _shard(tmp_path, "b", lease_ttl=0.2)
        b.poll()
        assert not b.leases.owns(job_id)  # a's lease still live
        time.sleep(0.25)
        _drive([b], total=1)
        job = b.store.get(job_id)
        assert job.state == DONE and job.shard == "b"

    def test_running_orphan_reclaimed_and_resumed(self, tmp_path):
        job_id = submit_job(str(tmp_path), SPEC)
        a = _shard(tmp_path, "a", lease_ttl=0.2)
        a.poll()
        # Simulate a SIGKILL mid-run: the journal says RUNNING, the lease
        # stops being renewed, and the daemon is gone.
        a.store.transition(job_id, RUNNING, attempt=1)
        time.sleep(0.25)
        b = _shard(tmp_path, "b", lease_ttl=5.0)
        _drive([b], total=1)
        job = b.store.get(job_id)
        assert job.state == DONE
        assert job.attempts == 2  # the reclaimed attempt, not a fresh job
        assert b.metrics.counter("jobs_reclaimed") == 1
        journal = [json.loads(line) for line in open(b.store.path)]
        assert any(r.get("reason") == "lease_reclaim" for r in journal)

    def test_unleased_attempt_is_fenced(self, tmp_path):
        a = _shard(tmp_path, "a")
        job = a.store.add(SPEC, job_id="job-x")
        # No lease held (a peer owns it): the executor must drop the
        # attempt before journaling anything.
        a._execute(job.id)
        assert a.store.get("job-x").state == QUEUED
        assert a.metrics.counter("stale_lease_drops") == 1

    def test_lost_lease_cancels_the_running_heartbeat(self, tmp_path):
        a = _shard(tmp_path, "a", lease_ttl=0.2)
        a.store.add(SPEC, job_id="job-x")
        assert a.leases.acquire("job-x") is not None
        hb = a.supervisor.begin("job-x", 1)
        time.sleep(0.25)
        b = _shard(tmp_path, "b", lease_ttl=5.0)
        assert b.leases.acquire("job-x") is not None  # steals the expired lease
        a._renew_leases()
        assert not a.leases.owns("job-x")
        assert hb.cancelled
        assert a.metrics.counter("leases_lost") == 1


# -- the capstone: whole-shard SIGKILL drill ----------------------------------
class TestFleetDrill:
    def test_shard_kill_drill_reduced_scale(self, tmp_path):
        report = run_fleet_drill(
            str(tmp_path),
            n_shards=3,
            n_jobs=2,
            n_kills=1,
            lease_ttl=1.0,
            max_seconds=120.0,
        )
        failed = [c for c in report["checks"] if not c["ok"]]
        assert report["ok"], f"failed checks: {failed}"
        assert len(report["kills"]) == 1
        states = {j["state"] for j in report["jobs"]}
        assert states == {"DONE", "QUARANTINED"}
