"""Benchmark-suite definition tests (Table II/III statistics)."""

import pytest

from repro.netlist.suites import (
    ICCAD04_STATS,
    INDUSTRIAL_STATS,
    industrial_suite,
    iccad04_suite,
    make_iccad04_circuit,
    make_industrial_circuit,
)


class TestICCAD04Suite:
    def test_all_17_circuits_defined(self):
        assert len(ICCAD04_STATS) == 17
        assert "ibm05" not in ICCAD04_STATS  # no macros, excluded as in paper

    def test_paper_counts_recorded(self):
        assert ICCAD04_STATS["ibm01"] == (246, 12_000, 14_000)
        assert ICCAD04_STATS["ibm10"] == (786, 68_000, 75_000)
        assert ICCAD04_STATS["ibm18"] == (285, 210_000, 201_000)

    def test_unknown_circuit_rejected(self):
        with pytest.raises(KeyError, match="ibm05"):
            make_iccad04_circuit("ibm05")

    def test_scaling_proportionality(self):
        small = make_iccad04_circuit("ibm03", scale=0.005, macro_scale=0.05)
        large = make_iccad04_circuit("ibm03", scale=0.01, macro_scale=0.1)
        assert len(large.design.netlist.cells) > len(small.design.netlist.cells)
        assert len(large.design.netlist.movable_macros) > len(
            small.design.netlist.movable_macros
        )

    def test_macro_ordering_matches_paper(self):
        # ibm10 has the most macros, ibm06 the fewest — the Table IV claim.
        entries = {n: ICCAD04_STATS[n][0] for n in ICCAD04_STATS}
        assert max(entries, key=entries.get) == "ibm10"
        assert min(entries, key=entries.get) == "ibm06"
        e10 = make_iccad04_circuit("ibm10", macro_scale=0.05)
        e06 = make_iccad04_circuit("ibm06", macro_scale=0.05)
        assert len(e10.design.netlist.movable_macros) > len(
            e06.design.netlist.movable_macros
        )

    def test_no_hierarchy_no_preplaced(self):
        entry = make_iccad04_circuit("ibm01")
        nl = entry.design.netlist
        assert not nl.preplaced_macros
        assert all(m.hierarchy == "" for m in nl.movable_macros)

    def test_suite_subset_selection(self):
        suite = iccad04_suite(circuits=["ibm01", "ibm06"])
        assert [e.name for e in suite] == ["ibm01", "ibm06"]

    def test_entries_are_deterministic(self):
        a = make_iccad04_circuit("ibm02")
        b = make_iccad04_circuit("ibm02")
        assert [(n.x, n.y) for n in a.design.netlist] == [
            (n.x, n.y) for n in b.design.netlist
        ]

    def test_paper_stats_attached(self):
        entry = make_iccad04_circuit("ibm07")
        assert entry.paper_macros == 507
        assert entry.paper_cells == 45_000


class TestIndustrialSuite:
    def test_all_6_circuits_defined(self):
        assert list(INDUSTRIAL_STATS) == [f"Cir{i}" for i in range(1, 7)]

    def test_paper_counts_recorded(self):
        assert INDUSTRIAL_STATS["Cir2"] == (71, 47, 365, 1_098_000, 1_126_000)

    def test_hierarchy_and_preplaced_present(self):
        entry = make_industrial_circuit("Cir1")
        nl = entry.design.netlist
        assert nl.preplaced_macros
        assert any(m.hierarchy for m in nl.movable_macros)

    def test_unknown_circuit_rejected(self):
        with pytest.raises(KeyError):
            make_industrial_circuit("Cir9")

    def test_full_suite(self):
        suite = industrial_suite(scale=0.001, macro_scale=0.3)
        assert len(suite) == 6
        for entry in suite:
            assert entry.design.netlist.movable_macros
