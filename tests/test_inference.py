"""Shared inference broker: bitwise equivalence of broker-served,
fallback, and private-network tiled evaluation; coalescing across
concurrent clients; crash/timeout degradation; weight-epoch rollover
during RL training; and the config-fingerprint exclusions."""

import copy
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PlaneView, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.inference import (
    INFERENCE_TILE,
    BrokerUnavailable,
    InferenceBroker,
    InferenceClient,
)
from repro.inference.broker import (
    export_params,
    import_params,
    weights_fingerprint,
)
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.runtime.faults import Fault, FaultPlan, inject
from repro.utils.events import EventLog

REWARD = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)


def _net(zeta=4, seed=0):
    net = PolicyValueNet(
        NetworkConfig(zeta=zeta, channels=4, res_blocks=1, seed=seed)
    )
    # Populate BN running stats so eval mode is meaningful.
    net.train(True)
    net.forward(
        np.random.default_rng(9).random((8, 3, zeta, zeta)).astype(net.dtype)
    )
    net.eval()
    return net


def _states(zeta, n, seed=0):
    rng = np.random.default_rng(seed)
    states = []
    for i in range(n):
        s_a = rng.random((zeta, zeta))
        s_a[s_a < 0.3] = 0.0
        states.append(PlaneView(rng.random((zeta, zeta)), s_a, i, n))
    return states


def _assert_bitwise(a, b):
    np.testing.assert_array_equal(a[0], b[0])
    np.testing.assert_array_equal(a[1], b[1])


# -- weight shipping -----------------------------------------------------------
class TestWeightShipping:
    def test_export_import_roundtrip_bitwise(self):
        src, dst = _net(seed=1), _net(seed=2)
        import_params(dst, export_params(src))
        states = _states(4, 5)
        _assert_bitwise(
            src.evaluate_batch(states, tile=INFERENCE_TILE),
            dst.evaluate_batch(states, tile=INFERENCE_TILE),
        )

    def test_export_copies_do_not_alias(self):
        net = _net()
        arrays = export_params(net)
        p0 = next(iter(net.parameters()))
        p0.data += 1.0
        assert not np.array_equal(arrays["p0"], p0.data)

    def test_fingerprint_tracks_weights(self):
        a, b = _net(seed=3), _net(seed=3)
        assert weights_fingerprint(a) == weights_fingerprint(b)
        next(iter(b.parameters())).data += 1e-3
        assert weights_fingerprint(a) != weights_fingerprint(b)

    def test_tiled_forward_invariant_to_batch_size(self):
        """The fixed-tile contract: a state's tiled result is identical
        whether it arrives alone or inside a larger batch."""
        net = _net()
        states = _states(4, 7, seed=4)
        probs_all, values_all = net.evaluate_batch(
            states, tile=INFERENCE_TILE
        )
        for i, s in enumerate(states):
            p, v = net.evaluate_batch([s], tile=INFERENCE_TILE)
            np.testing.assert_array_equal(probs_all[i], p[0])
            assert values_all[i] == v[0]


# -- broker-served vs private-network equivalence ------------------------------
class TestBrokerEquivalence:
    def test_broker_matches_private_tiled_bitwise(self):
        net = _net()
        states = _states(4, 9, seed=1)
        private = InferenceClient(net, broker=None)
        reference = private.evaluate_batch(states)
        with InferenceBroker(coalesce_us=0) as broker:
            client = InferenceClient(net, broker)
            served = client.evaluate_batch(states)
            assert client.n_broker == 1 and client.n_local == 0
            _assert_bitwise(served, reference)
            p1, v1 = client.evaluate(
                states[0].s_p, states[0].s_a, states[0].t,
                states[0].total_steps,
            )
            np.testing.assert_array_equal(p1, reference[0][0])
            assert v1 == float(reference[1][0])
            client.close()

    def test_restart_mid_search_bitwise(self, coarse_small):
        """inference.worker_kill mid-search: the broker respawns, the
        client re-ships, and the search finishes with the exact result
        of a private-network run."""
        cfg = MCTSConfig(explorations=6, leaf_batch=3, seed=0)

        def run(inference):
            env = MacroGroupPlacementEnv(
                copy.deepcopy(coarse_small), cell_place_iters=1
            )
            return MCTSPlacer(env, net, REWARD, cfg, inference=inference).run()

        net = _net()
        baseline = run(InferenceClient(net, broker=None))
        with InferenceBroker(coalesce_us=0, respawn_limit=2) as broker:
            client = InferenceClient(net, broker)
            with inject(FaultPlan(Fault("inference.worker_kill", at=3))):
                faulted = run(client)
            # Under load the respawned child's slow startup can race a
            # pending request's liveness check into a second respawn
            # cycle (respawn_limit=2 absorbs it) — the invariant is that
            # the kill fired and the broker survived, not the exact count.
            assert broker.respawns >= 1 and broker.available
            client.close()
        assert faulted.assignment == baseline.assignment
        assert faulted.wirelength == baseline.wirelength

    def test_exhausted_respawns_degrade_in_process(self):
        """Killing the broker on every eval exhausts the bounded respawn
        budget; the client degrades permanently, emits one degradation
        event, and stays bitwise-correct."""
        net = _net()
        states = _states(4, 6, seed=2)
        reference = InferenceClient(net, broker=None).evaluate_batch(states)
        events = EventLog()
        with InferenceBroker(coalesce_us=0, respawn_limit=1) as broker:
            client = InferenceClient(net, broker, events=events)
            with inject(
                FaultPlan(Fault("inference.worker_kill", at=1, count=None))
            ):
                first = client.evaluate_batch(states)
                second = client.evaluate_batch(states)
            assert not broker.available
            assert client.n_local >= 1
        _assert_bitwise(first, reference)
        _assert_bitwise(second, reference)
        degradations = events.of("degradation")
        assert [e.data["solver"] for e in degradations].count(
            "inference_client"
        ) == 1


# -- client timeout ------------------------------------------------------------
class TestClientTimeout:
    def test_hung_broker_times_out_to_fallback(self):
        """A broker that is alive but unresponsive (SIGSTOP) trips the
        request timeout; the client falls back bitwise and logs one
        degradation event."""
        net = _net()
        states = _states(4, 5, seed=3)
        reference = InferenceClient(net, broker=None).evaluate_batch(states)
        events = EventLog()
        broker = InferenceBroker(coalesce_us=0, respawn_limit=0).start()
        try:
            client = InferenceClient(net, broker, events=events)
            warm = client.evaluate_batch(states)  # registers + proves liveness
            _assert_bitwise(warm, reference)
            broker.request_timeout = 0.5  # past spawn startup; now tighten
            pid = broker._proc.pid
            os.kill(pid, signal.SIGSTOP)
            try:
                started = time.monotonic()
                result = client.evaluate_batch(states)
                elapsed = time.monotonic() - started
            finally:
                os.kill(pid, signal.SIGCONT)
            _assert_bitwise(result, reference)
            assert elapsed >= 0.5
            assert not broker.available  # respawn_limit=0: permanent
            assert client.n_local == 1
            assert [
                e.data["solver"] for e in events.of("degradation")
            ].count("inference_client") == 1
        finally:
            broker.close()


# -- cross-job coalescing ------------------------------------------------------
class TestCoalescing:
    def test_two_clients_coalesce_and_stay_bitwise(self):
        """Two concurrent clients with identical weights share a replica;
        their requests coalesce into cross-job batches and each client's
        rows are bitwise what its private network would produce."""
        net_a, net_b = _net(seed=5), _net(seed=5)
        states = [_states(4, 8, seed=10 + i) for i in range(2)]
        reference = [
            InferenceClient(net, broker=None).evaluate_batch(s)
            for net, s in zip((net_a, net_b), states)
        ]
        with InferenceBroker(max_batch=64, coalesce_us=200_000) as broker:
            clients = [
                InferenceClient(net, broker) for net in (net_a, net_b)
            ]
            # Same weights -> same content-hash namespace -> one replica.
            assert clients[0].namespace == clients[1].namespace
            barrier = threading.Barrier(2)
            results: list = [None, None]

            def job(i):
                for _round in range(4):
                    barrier.wait()
                    results[i] = clients[i].evaluate_batch(states[i])

            threads = [
                threading.Thread(target=job, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = broker.stats()
            for client in clients:
                client.close()
        for got, want in zip(results, reference):
            _assert_bitwise(got, want)
        assert stats is not None
        assert stats["coalesced_batches"] >= 1
        assert stats["batch_size_max"] == 16  # two 8-state requests fused
        assert stats["active_clients"] == 2

    def test_stats_shape(self):
        with InferenceBroker() as broker:
            client = InferenceClient(_net(), broker)
            client.evaluate_batch(_states(4, 3))
            stats = broker.stats()
            client.close()
        for key in (
            "requests", "states", "batches", "queue_depth",
            "batch_size_mean", "wait_us_mean", "respawns", "tile",
        ):
            assert key in stats
        assert stats["tile"] == INFERENCE_TILE
        assert stats["states"] == 3


# -- weight-epoch rollover during RL training ----------------------------------
class TestEpochRollover:
    def _trainer(self, coarse, net, inference, seed=3):
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        return ActorCriticTrainer(
            env, net, REWARD, lr=1e-3, update_every=2, rng=seed,
            inference=inference,
        )

    def test_training_through_broker_bitwise(self, coarse_small):
        """Training with a publishable broker client — epochs bumped on
        every guarded update — reproduces the broker-off tiled run
        bitwise: rewards, losses, and final parameters."""
        net_ref = _net(seed=7)
        ref = self._trainer(
            copy.deepcopy(coarse_small), net_ref,
            InferenceClient(net_ref, broker=None),
        )
        hist_ref = ref.train(4)

        net_brk = _net(seed=7)
        with InferenceBroker(coalesce_us=0) as broker:
            client = InferenceClient(net_brk, broker, publishable=True)
            trainer = self._trainer(
                copy.deepcopy(coarse_small), net_brk, client
            )
            hist = trainer.train(4)
            # Two guarded updates happened -> two publishes.
            assert client.epoch == 2
            # The replica serves the latest epoch without re-ship errors.
            stats = broker.stats()
            client.close()
        assert hist.rewards == hist_ref.rewards
        assert hist.losses == hist_ref.losses
        assert hist.wirelengths == hist_ref.wirelengths
        for pa, pb in zip(net_brk.parameters(), net_ref.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
        assert stats["unknown_weights"] == 0

    def test_publish_requires_publishable(self):
        client = InferenceClient(_net(), broker=None)
        with pytest.raises(RuntimeError):
            client.publish()


# -- config plumbing -----------------------------------------------------------
class TestConfigPlumbing:
    def test_fingerprint_excludes_broker_knobs(self):
        from dataclasses import replace

        from repro.core.config import PlacerConfig
        from repro.runtime.checkpoint import config_fingerprint

        base = PlacerConfig()
        assert base.inference_broker is False
        for variant in (
            replace(base, inference_broker=True),
            replace(base, inference_max_batch=8),
            replace(base, inference_coalesce_us=0),
        ):
            assert config_fingerprint(variant) == config_fingerprint(base)

    def test_default_off_uses_network_directly(self, coarse_small):
        """Without an inference adapter the search and trainer evaluate
        on the raw network — the historical untiled path."""
        env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
        net = _net()
        placer = MCTSPlacer(env, net, REWARD, MCTSConfig(seed=0))
        assert placer._infer is net
        trainer = ActorCriticTrainer(
            env, net, REWARD, lr=1e-3, update_every=2, rng=0
        )
        assert trainer._infer is net

    def test_untiled_evaluate_batch_unchanged(self):
        """tile=None must be the historical code path byte-for-byte —
        the broker-off default cannot shift numerics."""
        net = _net()
        states = _states(4, 6, seed=6)
        a = net.evaluate_batch(states)
        b = net.evaluate_batch(states, tile=None)
        _assert_bitwise(a, b)
