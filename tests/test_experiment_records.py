"""Experiment-record persistence tests."""

import pytest

from repro.experiments import ExperimentRecord, RecordStore


@pytest.fixture
def store(tmp_path) -> RecordStore:
    return RecordStore(str(tmp_path / "results"))


class TestRecord:
    def test_json_roundtrip(self):
        rec = ExperimentRecord(
            experiment="table3", data={"normalized": {"ours": 1.0}},
            budget="default", seed=7,
        )
        back = ExperimentRecord.from_json(rec.to_json())
        assert back == rec

    def test_version_stamped(self):
        from repro import __version__

        rec = ExperimentRecord(experiment="x", data={})
        assert rec.version == __version__


class TestStore:
    def test_save_assigns_sequences(self, store):
        for i in range(3):
            rec = ExperimentRecord(experiment="fig4", data={"run": i})
            store.save(rec)
            assert rec.sequence == i

    def test_load_latest(self, store):
        store.save(ExperimentRecord(experiment="fig4", data={"run": 0}))
        store.save(ExperimentRecord(experiment="fig4", data={"run": 1}))
        latest = store.load_latest("fig4")
        assert latest is not None
        assert latest.data == {"run": 1}

    def test_load_latest_missing(self, store):
        assert store.load_latest("nothing") is None

    def test_load_all_ordered(self, store):
        for i in range(4):
            store.save(ExperimentRecord(experiment="t2", data={"run": i}))
        assert [r.data["run"] for r in store.load_all("t2")] == [0, 1, 2, 3]

    def test_experiments_listing(self, store):
        store.save(ExperimentRecord(experiment="a", data={}))
        store.save(ExperimentRecord(experiment="b", data={}))
        assert store.experiments() == ["a", "b"]

    def test_experiments_isolated(self, store):
        store.save(ExperimentRecord(experiment="a", data={"v": 1}))
        store.save(ExperimentRecord(experiment="b", data={"v": 2}))
        assert store.load_latest("a").data == {"v": 1}

    def test_compare_latest(self, store):
        store.save(ExperimentRecord(experiment="t3", data={"nor": 1.05}))
        store.save(ExperimentRecord(experiment="t3", data={"nor": 1.01}))
        assert store.compare_latest("t3", "nor") == (1.05, 1.01)

    def test_compare_needs_two_runs(self, store):
        store.save(ExperimentRecord(experiment="t3", data={"nor": 1.0}))
        assert store.compare_latest("t3", "nor") is None

    def test_slug_sanitizes_names(self, store):
        path = store.save(
            ExperimentRecord(experiment="Table III / weird name!", data={})
        )
        assert "/" not in path.split("results")[-1].lstrip("/\\")
        assert store.load_latest("Table III / weird name!") is not None

    def test_store_creates_directory(self, tmp_path):
        sub = tmp_path / "deep" / "dir"
        RecordStore(str(sub))
        assert sub.exists()
