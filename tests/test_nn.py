"""Neural-network substrate tests: functional ops, layers (with numerical
gradient checks), blocks, optimizers, serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.blocks import ResBlock, ResTower
from repro.nn.dtype import default_dtype
from repro.nn.functional import col2im, im2col, masked_softmax, softmax
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    Linear,
    ReLU,
    Sequential,
)
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.serialization import copy_params, load_params, save_params

RNG = np.random.default_rng(42)


@pytest.fixture(autouse=True, scope="module")
def _float64_substrate():
    """Numeric grad checks (eps=1e-6) and the 1e-9-tight optimizer
    assertions need float64 parameters; the library default is float32."""
    with default_dtype("float64"):
        yield


def numeric_grad_check(net, x, n_param_probes=4, eps=1e-6, tol=1e-4):
    """Compare analytic grads against central differences on random entries.

    Returns the max relative error over probed parameter entries and input
    entries.  Parameters whose analytic gradient is ~0 are skipped (e.g. a
    conv bias feeding a BatchNorm — mathematically zero-effect).
    """
    dy = RNG.normal(size=net(x).shape)

    def loss():
        return float((net(x) * dy).sum())

    net.zero_grad()
    net(x)
    dx = net.backward(dy)
    max_err = 0.0
    for p in net.parameters():
        flat, gflat = p.data.ravel(), p.grad.ravel()
        for k in RNG.choice(len(flat), size=min(n_param_probes, len(flat)), replace=False):
            if abs(gflat[k]) < 1e-8:
                continue
            orig = flat[k]
            flat[k] = orig + eps
            lp = loss()
            flat[k] = orig - eps
            lm = loss()
            flat[k] = orig
            num = (lp - lm) / (2 * eps)
            max_err = max(
                max_err, abs(num - gflat[k]) / (abs(num) + abs(gflat[k]) + 1e-8)
            )
    xf, dxf = x.ravel(), dx.ravel()
    for k in RNG.choice(len(xf), size=min(4, len(xf)), replace=False):
        if abs(dxf[k]) < 1e-8:
            continue
        orig = xf[k]
        xf[k] = orig + eps
        lp = loss()
        xf[k] = orig - eps
        lm = loss()
        xf[k] = orig
        num = (lp - lm) / (2 * eps)
        max_err = max(max_err, abs(num - dxf[k]) / (abs(num) + abs(dxf[k]) + 1e-8))
    assert max_err < tol, f"gradient mismatch: {max_err:.2e}"


class TestFunctional:
    def test_im2col_shape(self):
        x = RNG.normal(size=(2, 3, 5, 5))
        cols = im2col(x, kernel=3, pad=1)
        assert cols.shape == (2, 27, 25)

    def test_im2col_center_tap_identity(self):
        x = RNG.normal(size=(1, 1, 4, 4))
        cols = im2col(x, kernel=3, pad=1)
        center = cols[:, 4, :].reshape(1, 1, 4, 4)  # middle of 3x3 window
        np.testing.assert_allclose(center, x)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        x = RNG.normal(size=(2, 3, 6, 6))
        y = RNG.normal(size=(2, 27, 36))
        lhs = float((im2col(x, 3, 1) * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_softmax_normalizes(self):
        p = softmax(RNG.normal(size=(4, 10)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)
        assert (p > 0).all()

    def test_softmax_stability_large_logits(self):
        p = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(p).all()

    def test_masked_softmax_zeroes_masked(self):
        logits = np.array([1.0, 2.0, 3.0])
        mask = np.array([1.0, 0.0, 1.0])
        p = masked_softmax(logits, mask)
        assert p[1] == 0.0
        assert p.sum() == pytest.approx(1.0)

    def test_masked_softmax_all_masked_uniform(self):
        p = masked_softmax(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(p, [0.5, 0.5])

    def test_masked_softmax_proportional_to_mask(self):
        logits = np.zeros(3)
        mask = np.array([1.0, 2.0, 1.0])
        p = masked_softmax(logits, mask)
        assert p[1] == pytest.approx(0.5)


class TestLayerGradients:
    def test_conv2d(self):
        numeric_grad_check(
            Sequential(Conv2D(2, 3, kernel=3, rng=1)), RNG.normal(size=(2, 2, 5, 5))
        )

    def test_conv2d_1x1(self):
        numeric_grad_check(
            Sequential(Conv2D(4, 2, kernel=1, rng=2)), RNG.normal(size=(2, 4, 4, 4))
        )

    def test_batchnorm(self):
        numeric_grad_check(
            Sequential(Conv2D(2, 3, rng=3), BatchNorm2D(3)),
            RNG.normal(size=(3, 2, 4, 4)),
        )

    def test_linear(self):
        numeric_grad_check(
            Sequential(Flatten(), Linear(18, 4, rng=4)), RNG.normal(size=(3, 2, 3, 3))
        )

    def test_relu_chain(self):
        numeric_grad_check(
            Sequential(Conv2D(2, 2, rng=5), ReLU(), Conv2D(2, 1, rng=6)),
            RNG.normal(size=(2, 2, 4, 4)),
        )

    def test_resblock(self):
        numeric_grad_check(
            Sequential(ResBlock(3, rng=7)), RNG.normal(size=(2, 3, 5, 5))
        )

    def test_restower(self):
        numeric_grad_check(
            Sequential(ResTower(2, n_blocks=2, rng=8)), RNG.normal(size=(2, 2, 4, 4))
        )


class TestLayerBehaviour:
    def test_conv_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel=2)

    def test_conv_rejects_wrong_channels(self):
        conv = Conv2D(3, 4)
        with pytest.raises(ValueError):
            conv(RNG.normal(size=(1, 2, 4, 4)))

    def test_conv_preserves_spatial_dims(self):
        y = Conv2D(2, 5, kernel=3, rng=0)(RNG.normal(size=(1, 2, 7, 9)))
        assert y.shape == (1, 5, 7, 9)

    def test_batchnorm_normalizes_in_training(self):
        bn = BatchNorm2D(3)
        y = bn(RNG.normal(loc=5.0, scale=2.0, size=(8, 3, 6, 6)))
        assert abs(y.mean()) < 1e-6
        assert y.std() == pytest.approx(1.0, abs=0.05)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm2D(2)
        for _ in range(200):
            bn(RNG.normal(loc=3.0, size=(4, 2, 4, 4)))
        bn.eval()
        y = bn(np.full((1, 2, 2, 2), 3.0))
        assert abs(y).max() < 0.5  # ~(3-3)/std

    def test_relu_zeroes_negatives(self):
        y = ReLU()(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(y, [[0.0, 2.0]])

    def test_flatten_roundtrip(self):
        f = Flatten()
        x = RNG.normal(size=(2, 3, 4, 5))
        y = f(x)
        assert y.shape == (2, 60)
        assert f.backward(y).shape == x.shape

    def test_train_eval_propagates(self):
        net = Sequential(Conv2D(1, 2), BatchNorm2D(2), ResBlock(2))
        net.eval()
        assert not net.layers[1].training
        assert not net.layers[2].bn1.training
        net.train()
        assert net.layers[1].training

    def test_zero_grad(self):
        lin = Linear(3, 2, rng=0)
        lin(RNG.normal(size=(2, 3)))
        lin.backward(RNG.normal(size=(2, 2)))
        assert np.abs(lin.weight.grad).sum() > 0
        lin.zero_grad()
        assert np.abs(lin.weight.grad).sum() == 0


class TestOptimizers:
    def _quadratic_problem(self):
        """min ||Wx - b||² for a fixed x, b — optimizers should descend."""
        lin = Linear(4, 3, rng=9)
        x = RNG.normal(size=(8, 4))
        b = RNG.normal(size=(8, 3))

        def loss_and_grads():
            y = lin(x)
            r = y - b
            lin.zero_grad()
            lin.backward(2 * r / len(x))
            return float((r**2).mean())

        return lin, loss_and_grads

    def test_sgd_descends(self):
        lin, step = self._quadratic_problem()
        opt = SGD(lin.parameters(), lr=0.05)
        first = step()
        for _ in range(50):
            opt.step()
            last = step()
        assert last < first * 0.5

    def test_sgd_momentum_descends(self):
        lin, step = self._quadratic_problem()
        opt = SGD(lin.parameters(), lr=0.02, momentum=0.9)
        first = step()
        for _ in range(50):
            opt.step()
            last = step()
        assert last < first * 0.5

    def test_adam_descends(self):
        lin, step = self._quadratic_problem()
        opt = Adam(lin.parameters(), lr=0.05)
        first = step()
        for _ in range(300):
            opt.step()
            last = step()
        assert last < first * 0.2

    def test_adam_weight_decay_shrinks_weights(self):
        lin = Linear(4, 4, rng=10)
        opt = Adam(lin.parameters(), lr=0.01, weight_decay=10.0)
        norm0 = float(np.abs(lin.weight.data).sum())
        for _ in range(50):
            lin.zero_grad()
            opt.step()
        assert float(np.abs(lin.weight.data).sum()) < norm0

    def test_clip_gradients(self):
        lin = Linear(2, 2, rng=11)
        lin.weight.grad[...] = 100.0
        lin.bias.grad[...] = 100.0
        norm = clip_gradients(lin.parameters(), max_norm=1.0)
        assert norm > 1.0
        total = sum(float((p.grad**2).sum()) for p in lin.parameters())
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-9)

    def test_clip_noop_below_threshold(self):
        lin = Linear(2, 2, rng=12)
        lin.weight.grad[...] = 0.01
        before = lin.weight.grad.copy()
        clip_gradients(lin.parameters(), max_norm=1e9)
        np.testing.assert_allclose(lin.weight.grad, before)


class TestSerialization:
    def _net(self, seed=0):
        return Sequential(Conv2D(1, 2, rng=seed), BatchNorm2D(2), Flatten(),
                          Linear(2 * 16, 3, rng=seed + 1))

    def test_save_load_roundtrip(self, tmp_path):
        net = self._net(0)
        x = RNG.normal(size=(2, 1, 4, 4))
        net(x)  # populate BN running stats
        net.eval()
        y_before = net(x)
        path = str(tmp_path / "w.npz")
        save_params(net, path)
        net2 = self._net(99)
        load_params(net2, path)
        net2.eval()
        np.testing.assert_allclose(net2(x), y_before)

    def test_load_shape_mismatch_rejected(self, tmp_path):
        net = self._net(0)
        path = str(tmp_path / "w.npz")
        save_params(net, path)
        other = Sequential(Conv2D(1, 3, rng=0))
        with pytest.raises((ValueError, KeyError)):
            load_params(other, path)

    def test_copy_params(self):
        a, b = self._net(0), self._net(5)
        x = RNG.normal(size=(1, 1, 4, 4))
        a(x)
        copy_params(a, b)
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x), b(x))

    def test_copy_params_topology_mismatch(self):
        with pytest.raises(ValueError):
            copy_params(self._net(0), Sequential(Linear(2, 2)))


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 3), st.integers(3, 6))
    def test_conv_linearity(self, n, c, hw):
        """Convolution is linear: f(ax) = a f(x) (bias removed)."""
        conv = Conv2D(c, 2, kernel=3, bias=False, rng=0)
        x = np.random.default_rng(0).normal(size=(n, c, hw, hw))
        np.testing.assert_allclose(conv(3.0 * x), 3.0 * conv(x), rtol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100))
    def test_softmax_invariant_to_shift(self, seed):
        logits = np.random.default_rng(seed).normal(size=7)
        np.testing.assert_allclose(
            softmax(logits), softmax(logits + 123.0), rtol=1e-9
        )
