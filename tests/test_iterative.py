"""Tests for the AlphaZero-style iterative extension."""

import numpy as np
import pytest

from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.mcts.iterative import IterativeMCTSTrainer
from repro.mcts.search import MCTSConfig


@pytest.fixture
def trainer(coarse_small):
    env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
    net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
    reward_fn = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)
    return IterativeMCTSTrainer(
        env, net, reward_fn, MCTSConfig(explorations=4), train_epochs=1
    )


class TestIterativeLoop:
    def test_history_lengths(self, trainer):
        history = trainer.train(2)
        assert len(history.wirelengths) == 2
        assert len(history.losses) == 2
        assert len(history.terminal_evaluations) == 2

    def test_rewards_match_reward_fn(self, trainer):
        history = trainer.train(1)
        assert history.rewards[0] == pytest.approx(
            trainer.reward_fn(history.wirelengths[0])
        )

    def test_parameters_change(self, trainer):
        before = [p.data.copy() for p in trainer.network.parameters()]
        trainer.train(1)
        assert any(
            not np.allclose(b, p.data)
            for b, p in zip(before, trainer.network.parameters())
        )

    def test_each_round_does_terminal_work(self, trainer):
        """The cost asymmetry the paper argues: every iterative round needs
        at least one real legalize-and-place evaluation."""
        history = trainer.train(2)
        assert all(n >= 1 for n in history.terminal_evaluations)

    def test_samples_have_visit_distributions(self, trainer):
        samples, wirelength, _ = trainer._collect_round(seed=0)
        assert len(samples) == trainer.env.n_steps
        for s in samples:
            assert s.pi.sum() == pytest.approx(1.0)
            assert (s.pi >= 0).all()
            assert s.z == pytest.approx(
                trainer.reward_fn(wirelength)
            )

    def test_best_wirelength(self, trainer):
        history = trainer.train(2)
        assert history.best_wirelength() == min(history.wirelengths)
