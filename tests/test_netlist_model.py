"""Unit tests for the netlist data model."""

import pytest

from repro.netlist.model import (
    Cell,
    Design,
    IOPad,
    Macro,
    Net,
    Netlist,
    NodeKind,
    Pin,
    PlacementRegion,
)


class TestNodeGeometry:
    def test_area(self):
        assert Macro("m", 4.0, 5.0).area == 20.0

    def test_center_coordinates(self):
        m = Macro("m", 10.0, 4.0, x=2.0, y=3.0)
        assert m.cx == 7.0
        assert m.cy == 5.0

    def test_move_center_to(self):
        m = Macro("m", 10.0, 4.0)
        m.move_center_to(20.0, 10.0)
        assert (m.x, m.y) == (15.0, 8.0)
        assert (m.cx, m.cy) == (20.0, 10.0)

    def test_overlaps_true(self):
        a = Macro("a", 10.0, 10.0, x=0.0, y=0.0)
        b = Macro("b", 10.0, 10.0, x=5.0, y=5.0)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_overlaps_false_when_touching(self):
        a = Macro("a", 10.0, 10.0, x=0.0, y=0.0)
        b = Macro("b", 10.0, 10.0, x=10.0, y=0.0)
        assert not a.overlaps(b)

    def test_overlap_area_value(self):
        a = Macro("a", 10.0, 10.0, x=0.0, y=0.0)
        b = Macro("b", 10.0, 10.0, x=6.0, y=8.0)
        assert a.overlap_area(b) == pytest.approx(4.0 * 2.0)

    def test_overlap_area_disjoint_is_zero(self):
        a = Macro("a", 2.0, 2.0, x=0.0, y=0.0)
        b = Macro("b", 2.0, 2.0, x=10.0, y=10.0)
        assert a.overlap_area(b) == 0.0

    def test_kinds(self):
        assert Macro("m", 1, 1).kind is NodeKind.MACRO
        assert Cell("c", 1, 1).kind is NodeKind.CELL
        assert IOPad("p", 1, 1).kind is NodeKind.PAD

    def test_pad_is_always_fixed(self):
        assert IOPad("p", 1, 1, fixed=False).fixed is True


class TestNetlist:
    def test_duplicate_node_rejected(self):
        nl = Netlist()
        nl.add_node(Cell("c", 1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            nl.add_node(Cell("c", 2, 2))

    def test_net_with_unknown_node_rejected(self):
        nl = Netlist()
        with pytest.raises(KeyError):
            nl.add_net(Net("n", pins=[Pin("ghost")]))

    def test_index_of_is_insertion_order(self):
        nl = Netlist()
        for name in ["b", "a", "c"]:
            nl.add_node(Cell(name, 1, 1))
        assert [nl.index_of(n) for n in ["b", "a", "c"]] == [0, 1, 2]

    def test_index_of_missing_raises(self):
        with pytest.raises(KeyError):
            Netlist().index_of("nope")

    def test_iteration_order(self, tiny_design):
        names = [n.name for n in tiny_design.netlist]
        assert names == ["m0", "m1", "c0", "c1", "c2", "p0"]

    def test_kind_views(self, tiny_design):
        nl = tiny_design.netlist
        assert [m.name for m in nl.macros] == ["m0", "m1"]
        assert [c.name for c in nl.cells] == ["c0", "c1", "c2"]
        assert [p.name for p in nl.pads] == ["p0"]

    def test_movable_vs_preplaced_macros(self):
        nl = Netlist()
        nl.add_node(Macro("mv", 1, 1))
        nl.add_node(Macro("pp", 1, 1, fixed=True))
        assert [m.name for m in nl.movable_macros] == ["mv"]
        assert [m.name for m in nl.preplaced_macros] == ["pp"]

    def test_stats(self, tiny_design):
        stats = tiny_design.netlist.stats()
        assert stats == {
            "movable_macros": 2,
            "preplaced_macros": 0,
            "pads": 1,
            "cells": 3,
            "nets": 3,
        }

    def test_contains(self, tiny_design):
        assert "m0" in tiny_design.netlist
        assert "zzz" not in tiny_design.netlist

    def test_net_degree(self):
        net = Net("n", pins=[Pin("a"), Pin("b"), Pin("c")])
        assert net.degree == 3


class TestPlacementRegion:
    def test_contains_inside(self):
        r = PlacementRegion(0, 0, 100, 100)
        assert r.contains(Macro("m", 10, 10, x=5, y=5))

    def test_contains_rejects_overflow(self):
        r = PlacementRegion(0, 0, 100, 100)
        assert not r.contains(Macro("m", 10, 10, x=95, y=5))

    def test_clamp_pulls_node_inside(self):
        r = PlacementRegion(0, 0, 100, 100)
        m = Macro("m", 10, 10, x=120.0, y=-5.0)
        r.clamp(m)
        assert r.contains(m)
        assert (m.x, m.y) == (90.0, 0.0)

    def test_area_and_bounds(self):
        r = PlacementRegion(10, 20, 30, 40)
        assert r.area == 1200
        assert r.x_max == 40
        assert r.y_max == 60


class TestDesignSnapshots:
    def test_clone_restore_roundtrip(self, tiny_design: Design):
        snap = tiny_design.clone_placement()
        m = tiny_design.netlist["m0"]
        m.x, m.y = 99.0, 99.0
        tiny_design.restore_placement(snap)
        assert (m.x, m.y) == (0.0, 0.0)

    def test_snapshot_is_detached(self, tiny_design: Design):
        snap = tiny_design.clone_placement()
        tiny_design.netlist["m0"].x = 50.0
        assert snap["m0"] == (0.0, 0.0)
