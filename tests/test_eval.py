"""Metric and reporting tests."""

import numpy as np
import pytest

from repro.eval.metrics import (
    density_map,
    macro_overlap_area,
    out_of_region_area,
    placement_summary,
)
from repro.eval.report import ComparisonTable
from repro.netlist.model import Design, Macro, Netlist, PlacementRegion


def design_with(macros) -> Design:
    nl = Netlist()
    for m in macros:
        nl.add_node(m)
    return Design(netlist=nl, region=PlacementRegion(0, 0, 100, 100))


class TestMetrics:
    def test_overlap_zero_for_disjoint(self):
        d = design_with([Macro("a", 10, 10, x=0, y=0), Macro("b", 10, 10, x=50, y=50)])
        assert macro_overlap_area(d) == 0.0

    def test_overlap_counts_pairs(self):
        d = design_with([
            Macro("a", 10, 10, x=0, y=0),
            Macro("b", 10, 10, x=5, y=0),
            Macro("c", 10, 10, x=0, y=5),
        ])
        # a∩b = 50, a∩c = 50, b∩c = 5*5 = 25
        assert macro_overlap_area(d) == pytest.approx(125.0)

    def test_overlap_with_preplaced_toggle(self):
        d = design_with([
            Macro("a", 10, 10, x=0, y=0),
            Macro("pp", 10, 10, x=5, y=0, fixed=True),
        ])
        assert macro_overlap_area(d, include_preplaced=True) > 0
        assert macro_overlap_area(d, include_preplaced=False) == 0.0

    def test_out_of_region(self):
        d = design_with([Macro("a", 10, 10, x=95, y=0)])
        assert out_of_region_area(d) == pytest.approx(50.0)

    def test_out_of_region_zero_inside(self):
        d = design_with([Macro("a", 10, 10, x=45, y=45)])
        assert out_of_region_area(d) == 0.0

    def test_density_map_shape_and_range(self, placed_design):
        dm = density_map(placed_design, bins=8)
        assert dm.shape == (8, 8)
        assert (dm >= 0).all()

    def test_placement_summary_legal_flag(self):
        d = design_with([Macro("a", 10, 10, x=0, y=0), Macro("b", 10, 10, x=50, y=50)])
        summary = placement_summary(d)
        assert summary.legal
        d2 = design_with([Macro("a", 10, 10, x=0, y=0), Macro("b", 10, 10, x=5, y=5)])
        assert not placement_summary(d2).legal


class TestComparisonTable:
    def _table(self) -> ComparisonTable:
        t = ComparisonTable(methods=["se", "dp", "ours"], reference="ours")
        t.add("Cir1", "se", 1.12)
        t.add("Cir1", "dp", 1.24)
        t.add("Cir1", "ours", 1.14)
        t.add("Cir2", "se", 6.55)
        t.add("Cir2", "dp", 7.14)
        t.add("Cir2", "ours", 6.33)
        return t

    def test_unknown_method_rejected(self):
        t = ComparisonTable(methods=["a"], reference="a")
        with pytest.raises(KeyError):
            t.add("c", "b", 1.0)

    def test_reference_normalizes_to_one(self):
        nor = self._table().normalized()
        assert nor["ours"] == pytest.approx(1.0)

    def test_normalized_is_mean_ratio(self):
        nor = self._table().normalized()
        expected = np.mean([1.12 / 1.14, 6.55 / 6.33])
        assert nor["se"] == pytest.approx(expected)

    def test_missing_cells_skipped(self):
        t = ComparisonTable(methods=["a", "ours"], reference="ours")
        t.add("c1", "ours", 2.0)
        t.add("c1", "a", 4.0)
        t.add("c2", "ours", 1.0)  # method 'a' missing here
        nor = t.normalized()
        assert nor["a"] == pytest.approx(2.0)

    def test_empty_table_nan(self):
        t = ComparisonTable(methods=["a"], reference="a")
        assert np.isnan(t.normalized()["a"])

    def test_render_contains_all_parts(self):
        text = self._table().render()
        assert "Cir1" in text and "Cir2" in text
        assert "Nor." in text
        assert "1.00" in text  # the reference's normalized value

    def test_render_handles_missing(self):
        t = ComparisonTable(methods=["a", "ours"], reference="ours", title="T")
        t.add("c1", "ours", 1.0)
        text = t.render()
        assert "-" in text
        assert text.startswith("T")
