"""Design-validation tests, plus a generator/Bookshelf fuzz round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.model import (
    Cell,
    Design,
    Macro,
    Net,
    Netlist,
    Pin,
    PlacementRegion,
)
from repro.netlist.validate import (
    Severity,
    ValidationError,
    validate_design,
)


def design_of(nodes=(), nets=(), region=None) -> Design:
    nl = Netlist()
    for n in nodes:
        nl.add_node(n)
    for net in nets:
        nl.add_net(net)
    return Design(netlist=nl, region=region or PlacementRegion(0, 0, 100, 100))


def codes(issues):
    return {i.code for i in issues}


class TestValidation:
    def test_clean_design_no_issues(self, placed_design):
        assert validate_design(placed_design) == []

    def test_degenerate_region(self):
        d = design_of(region=PlacementRegion(0, 0, 0, 10))
        assert "region-degenerate" in codes(validate_design(d))

    def test_oversized_macro(self):
        d = design_of([Macro("m", 200, 10)])
        assert "macro-oversized" in codes(validate_design(d))

    def test_preplaced_outside(self):
        d = design_of([Macro("m", 10, 10, x=500, y=500, fixed=True)])
        assert "preplaced-outside" in codes(validate_design(d))

    def test_over_capacity(self):
        d = design_of(
            [Cell(f"c{i}", 40, 40) for i in range(8)],
            region=PlacementRegion(0, 0, 100, 100),
        )
        assert "over-capacity" in codes(validate_design(d))

    def test_high_utilization_warning(self):
        d = design_of(
            [Cell(f"c{i}", 31, 31) for i in range(10)],  # 9610 / 10000
            region=PlacementRegion(0, 0, 100, 100),
        )
        issues = validate_design(d)
        assert "high-utilization" in codes(issues)
        assert all(i.severity is Severity.WARNING for i in issues)

    def test_duplicate_pin_warning(self):
        d = design_of(
            [Cell("c", 1, 1)],
            [Net("n", pins=[Pin("c"), Pin("c")])],
        )
        assert "duplicate-pin" in codes(validate_design(d))

    def test_negative_net_weight(self):
        d = design_of(
            [Cell("a", 1, 1), Cell("b", 1, 1)],
            [Net("n", pins=[Pin("a"), Pin("b")], weight=-1.0)],
        )
        assert "negative-weight" in codes(validate_design(d))

    def test_raise_on_error(self):
        d = design_of([Macro("m", 200, 10)])
        with pytest.raises(ValidationError, match="macro-oversized"):
            validate_design(d, raise_on_error=True)

    def test_warnings_do_not_raise(self):
        d = design_of(
            [Cell("c", 1, 1)],
            [Net("n", pins=[Pin("c"), Pin("c")])],
        )
        validate_design(d, raise_on_error=True)  # warnings only: no raise

    def test_issue_str(self):
        d = design_of([Macro("m", 200, 10)])
        issue = validate_design(d)[0]
        assert "macro-oversized" in str(issue)


class TestGeneratorFuzzRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(1, 6),
        st.integers(0, 3),
        st.integers(10, 40),
        st.integers(15, 50),
        st.integers(0, 10_000),
    )
    def test_generated_designs_validate_and_roundtrip(
        self, n_macros, n_pre, n_cells, n_nets, seed
    ):
        """Any generated design is structurally valid and survives the
        Bookshelf writer/parser with its statistics intact."""
        import tempfile

        from repro.netlist.bookshelf import read_aux, write_design

        spec = GeneratorSpec(
            name=f"fuzz{seed}",
            n_movable_macros=n_macros,
            n_preplaced_macros=n_pre,
            n_pads=4,
            n_cells=n_cells,
            n_nets=n_nets,
            seed=seed,
        )
        design = generate_design(spec)
        errors = [
            i for i in validate_design(design) if i.severity is Severity.ERROR
        ]
        assert errors == []

        with tempfile.TemporaryDirectory() as tmp:
            aux = write_design(design, tmp)
            loaded = read_aux(aux)
        assert loaded.netlist.stats() == design.netlist.stats()
