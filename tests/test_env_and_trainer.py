"""Environment and Actor-Critic trainer tests."""

import numpy as np
import pytest

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.eval.metrics import macro_overlap_area


@pytest.fixture
def env(coarse_small) -> MacroGroupPlacementEnv:
    return MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)


@pytest.fixture
def net() -> PolicyValueNet:
    return PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))


@pytest.fixture
def reward_fn() -> NormalizedReward:
    return NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0, alpha=0.75)


class TestEnvironment:
    def test_episode_length_equals_groups(self, env):
        state = env.reset()
        steps = 0
        done = False
        while not done:
            state, done = env.step(0)
            steps += 1
        assert steps == env.n_steps

    def test_invalid_action_rejected(self, env):
        env.reset()
        with pytest.raises(ValueError):
            env.step(env.n_actions)

    def test_finalize_before_done_rejected(self, env):
        env.reset()
        with pytest.raises(RuntimeError):
            env.finalize()

    def test_finalize_returns_positive_hpwl(self, env):
        env.reset()
        done = False
        while not done:
            _, done = env.step(3)
        assert env.finalize() > 0

    def test_finalize_leaves_legal_macros(self, env):
        env.reset()
        done = False
        while not done:
            _, done = env.step(5)
        env.finalize()
        assert macro_overlap_area(env.coarse.design) < 1e-9

    def test_random_episode_reproducible(self, env):
        r1 = env.play_random_episode(rng=123)
        r2 = env.play_random_episode(rng=123)
        assert r1.actions == r2.actions
        assert r1.wirelength == pytest.approx(r2.wirelength)

    def test_random_episode_respects_mask(self, env):
        record = env.play_random_episode(rng=7)
        assert len(record.actions) == env.n_steps
        for state, action in zip(record.states, record.actions):
            assert state.action_mask[action] > 0

    def test_assignment_recorded(self, env):
        record = env.play_random_episode(rng=1)
        assert env.assignment == record.actions

    def test_different_assignments_different_hpwl(self, env):
        w_a = env.evaluate_assignment([0] * env.n_steps)
        far = env.n_actions - 1
        w_b = env.evaluate_assignment(
            [0, far] * (env.n_steps // 2) + [0] * (env.n_steps % 2)
        )
        assert w_a != pytest.approx(w_b, rel=1e-3)

    def test_greedy_episode_uses_argmax(self, env):
        target = 6

        def policy(state):
            p = np.zeros(env.n_actions)
            p[target] = 1.0
            return p

        record = env.play_greedy_episode(policy)
        for state, action in zip(record.states, record.actions):
            if state.action_mask[target] > 0:
                assert action == target


class TestActorCriticTrainer:
    def test_zeta_mismatch_rejected(self, env, reward_fn):
        bad = PolicyValueNet(NetworkConfig(zeta=8, channels=4, res_blocks=1))
        with pytest.raises(ValueError, match="grid"):
            ActorCriticTrainer(env, bad, reward_fn)

    def test_history_lengths(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=3, rng=0)
        hist = trainer.train(6)
        assert len(hist.rewards) == 6
        assert len(hist.wirelengths) == 6
        assert len(hist.losses) == 2  # one update per 3 episodes

    def test_rewards_match_reward_fn(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=2, rng=0)
        hist = trainer.train(2)
        for r, w in zip(hist.rewards, hist.wirelengths):
            assert r == pytest.approx(reward_fn(w))

    def test_update_changes_parameters(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=2, rng=0)
        before = [p.data.copy() for p in net.parameters()]
        trainer.train(2)
        changed = any(
            not np.allclose(b, p.data)
            for b, p in zip(before, net.parameters())
        )
        assert changed

    def test_no_update_before_interval(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=10, rng=0)
        before = [p.data.copy() for p in net.parameters()]
        trainer.train(3)
        for b, p in zip(before, net.parameters()):
            np.testing.assert_allclose(b, p.data)

    def test_snapshots_recorded(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=2, rng=0)
        hist = trainer.train(6, checkpoint_every=2)
        assert [s.episode for s in hist.snapshots] == [2, 4, 6]

    def test_snapshot_restore_roundtrip(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=2, rng=0)
        snap = trainer.snapshot(0)
        trainer.train(4)
        restored = trainer.network_at(snap)
        for p_saved, p_restored in zip(snap.params, restored.parameters()):
            np.testing.assert_allclose(p_saved, p_restored.data)

    def test_snapshot_is_deep_copy(self, env, net, reward_fn):
        trainer = ActorCriticTrainer(env, net, reward_fn, rng=0)
        snap = trainer.snapshot(0)
        net.parameters()[0].data += 1.0
        assert not np.allclose(snap.params[0], net.parameters()[0].data)

    def test_deterministic_given_seed(self, coarse_small, reward_fn):
        import copy

        results = []
        for _ in range(2):
            env = MacroGroupPlacementEnv(
                copy.deepcopy(coarse_small), cell_place_iters=1
            )
            net = PolicyValueNet(
                NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=5)
            )
            trainer = ActorCriticTrainer(env, net, reward_fn, rng=9)
            hist = trainer.train(3)
            results.append(hist.wirelengths)
        assert results[0] == pytest.approx(results[1])

    def test_training_improves_reward_on_average(self, coarse_small):
        """Statistical sanity: late-phase mean reward ≥ early-phase mean
        (generous margin — 40 episodes on a tiny instance)."""
        env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
        reward_fn, _ = _quick_calibration(env)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=8, res_blocks=1, seed=0))
        trainer = ActorCriticTrainer(env, net, reward_fn, update_every=5, rng=0)
        hist = trainer.train(40)
        early = float(np.mean(hist.rewards[:10]))
        late = float(np.mean(hist.rewards[-10:]))
        assert late > early - 0.15


def _quick_calibration(env):
    from repro.agent.reward import calibrate_reward

    return calibrate_reward(
        lambda g: env.play_random_episode(g).wirelength, n_episodes=5, rng=2
    )


class TestEvaluationPathIndependence:
    def test_evaluate_assignment_is_history_free(self, env):
        """The MCTS terminal cache assumes evaluate_assignment(a) depends
        only on *a*, not on whatever placement earlier evaluations left
        behind."""
        a1 = [0] * env.n_steps
        a2 = [env.n_actions - 1] * env.n_steps
        first = env.evaluate_assignment(a1)
        env.evaluate_assignment(a2)
        again = env.evaluate_assignment(a1)
        assert again == pytest.approx(first, rel=1e-9)
