"""Netlist transform/analysis utility tests."""

import numpy as np
import pytest

from repro.netlist.model import Cell, Design, Macro, Net, Netlist, Pin, PlacementRegion
from repro.netlist.transforms import (
    connectivity_matrix,
    macro_interface_netlist,
    profile,
    weight_nets_by_degree,
)


@pytest.fixture
def mixed_netlist() -> Netlist:
    nl = Netlist("t")
    nl.add_node(Macro("m0", 4, 4, hierarchy="a"))
    nl.add_node(Macro("m1", 2, 2, hierarchy="b"))
    nl.add_node(Cell("c0", 1, 1))
    nl.add_node(Cell("c1", 1, 1))
    nl.add_net(Net("n0", pins=[Pin("m0"), Pin("c0")]))
    nl.add_net(Net("n1", pins=[Pin("m0"), Pin("m1"), Pin("c1")]))
    nl.add_net(Net("n2", pins=[Pin("c0"), Pin("c1")]))
    return nl


class TestProfile:
    def test_counts(self, mixed_netlist):
        p = profile(mixed_netlist)
        assert p.n_nodes == 4
        assert p.n_nets == 3
        assert p.n_pins == 7
        assert p.max_degree == 3

    def test_mean_degree(self, mixed_netlist):
        assert profile(mixed_netlist).mean_degree == pytest.approx(7 / 3)

    def test_macro_area_fraction(self, mixed_netlist):
        p = profile(mixed_netlist)
        assert p.macro_area_fraction == pytest.approx(20 / 22)

    def test_degree_histogram(self, mixed_netlist):
        assert profile(mixed_netlist).degree_histogram == {2: 2, 3: 1}

    def test_empty_netlist(self):
        p = profile(Netlist())
        assert p.n_nets == 0
        assert p.mean_degree == 0.0

    def test_str_renders(self, mixed_netlist):
        assert "nodes" in str(profile(mixed_netlist))


class TestNetWeighting:
    def test_degree_exponent(self, mixed_netlist):
        weight_nets_by_degree(mixed_netlist, exponent=-1.0, base=6.0)
        weights = {n.name: n.weight for n in mixed_netlist.nets}
        assert weights["n0"] == pytest.approx(3.0)  # degree 2
        assert weights["n1"] == pytest.approx(2.0)  # degree 3

    def test_zero_exponent_uniform(self, mixed_netlist):
        weight_nets_by_degree(mixed_netlist, exponent=0.0, base=2.5)
        assert all(n.weight == pytest.approx(2.5) for n in mixed_netlist.nets)


class TestMacroInterface:
    def test_cells_removed(self, mixed_netlist):
        design = Design(netlist=mixed_netlist, region=PlacementRegion(0, 0, 10, 10))
        mi = macro_interface_netlist(design)
        assert len(mi.cells) == 0
        assert len(mi.macros) == 2

    def test_macro_to_macro_net_survives(self, mixed_netlist):
        design = Design(netlist=mixed_netlist, region=PlacementRegion(0, 0, 10, 10))
        mi = macro_interface_netlist(design)
        assert len(mi.nets) == 1
        assert sorted(p.node for p in mi.nets[0].pins) == ["m0", "m1"]

    def test_duplicate_projections_merge_weight(self):
        nl = Netlist()
        nl.add_node(Macro("m0", 1, 1))
        nl.add_node(Macro("m1", 1, 1))
        nl.add_node(Cell("c", 1, 1))
        nl.add_net(Net("a", pins=[Pin("m0"), Pin("m1"), Pin("c")], weight=2.0))
        nl.add_net(Net("b", pins=[Pin("m0"), Pin("m1")], weight=3.0))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 10, 10))
        mi = macro_interface_netlist(design)
        assert len(mi.nets) == 1
        assert mi.nets[0].weight == pytest.approx(5.0)

    def test_positions_preserved(self, mixed_netlist):
        mixed_netlist["m0"].x = 7.5
        design = Design(netlist=mixed_netlist, region=PlacementRegion(0, 0, 10, 10))
        mi = macro_interface_netlist(design)
        assert mi["m0"].x == 7.5


class TestConnectivityMatrix:
    def test_symmetric_and_correct(self, mixed_netlist):
        groups = [["m0", "c0"], ["m1", "c1"]]
        w = connectivity_matrix(mixed_netlist, groups)
        # n1 touches both groups (weight 1); n2 touches both (weight 1).
        assert w[0, 1] == pytest.approx(2.0)
        np.testing.assert_allclose(w, w.T)

    def test_intra_group_nets_ignored(self, mixed_netlist):
        groups = [["m0", "m1", "c0", "c1"]]
        w = connectivity_matrix(mixed_netlist, groups)
        assert w[0, 0] == 0.0

    def test_degree_cap(self, mixed_netlist):
        groups = [["m0"], ["m1"], ["c0"], ["c1"]]
        w_capped = connectivity_matrix(mixed_netlist, groups, degree_cap=2)
        # n1 (degree 3) excluded: only n0 (m0-c0) and n2 (c0-c1) count.
        assert w_capped[0, 1] == 0.0
        assert w_capped[0, 2] == pytest.approx(1.0)
