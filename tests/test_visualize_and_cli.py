"""Tests for the SVG/ASCII visualizer and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.eval.visualize import placement_ascii, placement_svg, save_placement_svg
from repro.grid.plan import GridPlan


class TestSvg:
    def test_valid_svg_document(self, placed_design):
        svg = placement_svg(placed_design)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_macros_rendered(self, placed_design):
        svg = placement_svg(placed_design)
        n_rects = svg.count("<rect")
        # die + macros (+pads); at least one rect per macro.
        assert n_rects >= len(placed_design.netlist.macros) + 1

    def test_cells_toggle(self, placed_design):
        with_cells = placement_svg(placed_design, show_cells=True)
        without = placement_svg(placed_design, show_cells=False)
        assert with_cells.count("<circle") > without.count("<circle")

    def test_grid_overlay(self, placed_design):
        plan = GridPlan(placed_design.region, zeta=4)
        with_grid = placement_svg(placed_design, plan=plan)
        without = placement_svg(placed_design)
        assert with_grid.count("<line") > without.count("<line")

    def test_save_roundtrip(self, placed_design, tmp_path):
        path = str(tmp_path / "out.svg")
        assert save_placement_svg(placed_design, path) == path
        content = open(path).read()
        assert "<svg" in content

    def test_preplaced_macros_distinct_color(self, placed_design):
        if not placed_design.netlist.preplaced_macros:
            pytest.skip("no preplaced macros in fixture")
        svg = placement_svg(placed_design)
        assert "#636363" in svg  # preplaced
        assert "#fd8d3c" in svg  # movable


class TestAscii:
    def test_dimensions(self, placed_design):
        art = placement_ascii(placed_design, cols=40)
        lines = art.splitlines()
        assert all(len(line) == 42 for line in lines)  # 40 + 2 borders
        assert lines[0].startswith("+")

    def test_macros_marked(self, placed_design):
        art = placement_ascii(placed_design)
        assert "#" in art

    def test_preplaced_marked(self, placed_design):
        if not placed_design.netlist.preplaced_macros:
            pytest.skip("no preplaced macros in fixture")
        assert "+" in placement_ascii(placed_design).replace("+-", "").replace(
            "-+", ""
        )


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["place", "--circuit", "ibm01"])
        assert args.command == "place"

    def test_unknown_circuit_fails(self, capsys):
        assert main(["place", "--circuit", "zzz99"]) == 64
        assert "unknown circuit" in capsys.readouterr().err

    def test_suites_lists_all(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        assert "ibm01" in out and "Cir6" in out

    def test_bookshelf_export(self, tmp_path, capsys):
        rc = main([
            "bookshelf", "--circuit", "ibm01", "--scale", "0.003",
            "--macro-scale", "0.03", "--out", str(tmp_path),
        ])
        assert rc == 0
        assert (tmp_path / "ibm01.aux").exists()

    def test_place_fast_runs(self, tmp_path, capsys):
        svg = str(tmp_path / "p.svg")
        rc = main([
            "place", "--circuit", "ibm01", "--scale", "0.003",
            "--macro-scale", "0.03", "--preset", "fast", "--svg", svg,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HPWL" in out
        assert (tmp_path / "p.svg").exists()

    def test_place_from_aux(self, tmp_path, capsys, placed_design):
        from repro.netlist.bookshelf import write_design

        aux = write_design(placed_design, str(tmp_path))
        rc = main(["place", "--aux", aux, "--preset", "fast"])
        assert rc == 0
        assert "HPWL" in capsys.readouterr().out

    def test_compare_runs_all_methods(self, capsys):
        rc = main([
            "compare", "--circuit", "ibm01", "--scale", "0.002",
            "--macro-scale", "0.02", "--preset", "fast",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for method in ("random", "sa", "btree", "se", "maskplace",
                       "replace", "ours"):
            assert method in out
        assert "Nor." in out

    def test_place_legal_cells_flag(self, capsys):
        rc = main([
            "place", "--circuit", "ibm01", "--scale", "0.003",
            "--macro-scale", "0.03", "--preset", "fast", "--legal-cells",
        ])
        assert rc == 0
        assert "legalized cells" in capsys.readouterr().out
