"""Batched inference engine: evaluate_batch equivalence, vectorized
rollouts (N=1 bitwise reproduction), virtual-loss MCTS leaf batching
(K=1 path reproduction, wave integrity), the transposition eval cache
under fault injection, and the configurable-dtype substrate."""

import numpy as np
import pytest

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PlaneView, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.agent.state import StateBuilder
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.mcts.node import Node
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.nn.dtype import default_dtype, get_default_dtype
from repro.runtime.errors import FaultInjected
from repro.runtime.faults import Fault, FaultPlan, inject

REWARD = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)


def _random_states(zeta, n, seed=0):
    rng = np.random.default_rng(seed)
    states = []
    for i in range(n):
        s_a = rng.random((zeta, zeta))
        s_a[s_a < 0.3] = 0.0  # some masked anchors
        states.append(PlaneView(rng.random((zeta, zeta)), s_a, i, n))
    return states


def _net(zeta=4, seed=0, dtype=None):
    net = PolicyValueNet(
        NetworkConfig(zeta=zeta, channels=4, res_blocks=1, seed=seed, dtype=dtype)
    )
    # Populate BN running stats so eval mode is meaningful.
    net.train(True)
    net.forward(np.random.default_rng(9).random((8, 3, zeta, zeta)).astype(net.dtype))
    return net


class TestEvaluateBatch:
    @pytest.mark.parametrize("was_training", [True, False])
    def test_batch_matches_sequential(self, was_training):
        """One batched forward == B single-state evaluates, from either
        train or eval mode (both run eval-mode BN and restore the mode)."""
        net = _net()
        net.train(was_training)
        states = _random_states(4, 6)
        probs_b, values_b = net.evaluate_batch(states)
        assert net.training == was_training
        for i, s in enumerate(states):
            p, v = net.evaluate(s.s_p, s.s_a, s.t, s.total_steps)
            # float32 forward: batched einsum reduction order differs from
            # B=1, so agreement is to single precision, not bitwise.
            np.testing.assert_allclose(probs_b[i], p, rtol=1e-4, atol=1e-7)
            assert values_b[i] == pytest.approx(v, rel=1e-3, abs=1e-6)

    def test_rows_sum_to_one_under_mask(self):
        net = _net()
        states = _random_states(4, 5, seed=3)
        probs, _ = net.evaluate_batch(states)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
        for i, s in enumerate(states):
            masked = (s.s_a <= 0).ravel()
            assert probs[i][masked].sum() == 0.0

    def test_empty_batch(self):
        net = _net()
        probs, values = net.evaluate_batch([])
        assert probs.shape == (0, 16)
        assert values.shape == (0,)

    def test_single_element_batch_is_evaluate(self):
        """B=1 goes through the identical code path as evaluate()."""
        net = _net()
        (s,) = _random_states(4, 1, seed=5)
        p1, v1 = net.evaluate(s.s_p, s.s_a, s.t, s.total_steps)
        pb, vb = net.evaluate_batch([s])
        np.testing.assert_array_equal(p1, pb[0])
        assert float(vb[0]) == v1


class TestVectorizedRollouts:
    def _trainer(self, coarse, seed=0, n_envs=1):
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=1))
        return ActorCriticTrainer(
            env, net, REWARD, lr=1e-3, update_every=2, rng=seed, n_envs=n_envs
        )

    def test_wave_of_one_is_bitwise_sequential(self, coarse_small):
        """play_episodes(1) must consume the same RNG and produce the same
        transitions as the sequential play_episode."""
        import copy

        a = self._trainer(copy.deepcopy(coarse_small), seed=11)
        b = self._trainer(copy.deepcopy(coarse_small), seed=11)
        ta, wa = a.play_episode()
        [(tb, wb)] = b.play_episodes(1)
        assert wa == wb
        assert [t.action for t in ta] == [t.action for t in tb]
        for x, y in zip(ta, tb):
            np.testing.assert_array_equal(x.planes, y.planes)
            np.testing.assert_array_equal(x.mask, y.mask)
        # RNG streams stayed in lock-step → next draws agree too.
        assert a.rng.integers(0, 2**31) == b.rng.integers(0, 2**31)

    def test_train_n1_bitwise_matches_across_instances(self, coarse_small):
        """Full train() with n_envs=1 is deterministic and equal to another
        n_envs=1 trainer — the pre-batching sequential semantics."""
        import copy

        a = self._trainer(copy.deepcopy(coarse_small), seed=3, n_envs=1)
        b = self._trainer(copy.deepcopy(coarse_small), seed=3, n_envs=1)
        ha = a.train(4)
        hb = b.train(4)
        assert ha.rewards == hb.rewards
        assert ha.wirelengths == hb.wirelengths
        assert ha.losses == hb.losses
        for pa, pb in zip(a.network.parameters(), b.network.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_batched_wave_episodes_are_complete(self, coarse_small):
        tr = self._trainer(coarse_small, seed=5, n_envs=3)
        episodes = tr.play_episodes(3)
        assert len(episodes) == 3
        n_steps = tr.env.n_steps
        for transitions, wirelength in episodes:
            assert len(transitions) == n_steps
            assert np.isfinite(wirelength) and wirelength > 0

    def test_train_with_waves_hits_same_cadences(self, coarse_small):
        """n_envs>1 still updates every update_every episodes and fills the
        history to exactly n_episodes."""
        tr = self._trainer(coarse_small, seed=7, n_envs=2)
        hist = tr.train(5)
        assert len(hist.rewards) == 5
        assert len(hist.losses) == 2  # updates at episodes 2 and 4
        assert tr.events.count("rollout_wave") >= 2


def _mcts_env_net(coarse):
    env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
    net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
    return env, net


def _reference_sequential_search(env, network, reward_fn, config):
    """The pre-batching MCTS loop (no eval cache, no waves), kept here as
    the ground truth the K=1 engine must reproduce."""
    placer = MCTSPlacer(env, network, reward_fn, config)
    root = Node(depth=0)
    builder = StateBuilder(env.coarse)
    placer._expand(root, builder, [])
    placer._eval_cache.clear()  # reference path never caches
    committed, committed_path = [], []
    current = root
    for _step in range(env.n_steps):
        if not current.expanded:
            b = StateBuilder(env.coarse)
            for a in committed:
                b.apply(a)
            placer._expand(current, b, list(committed))
            placer._eval_cache.clear()
        for _ in range(config.explorations):
            placer._explore(root, committed, committed_path, current)
            placer._eval_cache.clear()
        idx = current.most_visited_index()
        committed_path.append((current, idx))
        committed.append(int(current.actions[idx]))
        current = current.child_for(idx)
    return committed


class TestMCTSLeafBatching:
    def test_k1_reproduces_reference_path(self, coarse_small):
        import copy

        cfg = MCTSConfig(explorations=8, leaf_batch=1, seed=0)
        env1, net = _mcts_env_net(copy.deepcopy(coarse_small))
        reference = _reference_sequential_search(env1, net, REWARD, cfg)
        env2, _ = _mcts_env_net(copy.deepcopy(coarse_small))
        result = MCTSPlacer(env2, net, REWARD, cfg).run()
        assert result.assignment == reference

    def test_wave_visits_are_integral_after_revert(self, coarse_small):
        """Virtual losses must be fully reverted: every visit count is an
        integer and each step's exploration budget is exactly consumed."""
        cfg = MCTSConfig(explorations=9, leaf_batch=4, virtual_loss=1.0, seed=0)
        env, net = _mcts_env_net(coarse_small)
        placer = MCTSPlacer(env, net, REWARD, cfg)
        result = placer.run()
        assert result.n_waves > 0
        root = placer.last_root
        stack = [root]
        while stack:
            node = stack.pop()
            if node.expanded:
                np.testing.assert_array_equal(node.visit, np.round(node.visit))
                stack.extend(node.children.values())
        # Every exploration of every step backpropagates through the root
        # (Fig. 3), so the root's edge visits count all of them — exactly,
        # because the waves revert their virtual losses.
        assert root.visit.sum() == cfg.explorations * env.n_steps

    def test_leaf_batching_reduces_network_calls(self, coarse_small):
        """Waves + the eval cache must not evaluate more states than the
        sequential engine."""
        import copy

        env1, net = _mcts_env_net(copy.deepcopy(coarse_small))
        seq = MCTSPlacer(env1, net, REWARD, MCTSConfig(explorations=8, seed=0)).run()
        env2, _ = _mcts_env_net(copy.deepcopy(coarse_small))
        wav = MCTSPlacer(
            env2, net, REWARD, MCTSConfig(explorations=8, leaf_batch=4, seed=0)
        ).run()
        assert wav.n_network_evaluations <= seq.n_network_evaluations

    def test_eval_cache_dedupes_colliding_descents(self, coarse_small):
        """With virtual loss disabled all K descents of a wave select the
        same leaf — the dedup + cache must collapse them to one network
        evaluation and count the rest as hits."""
        env, net = _mcts_env_net(coarse_small)
        cfg = MCTSConfig(explorations=8, leaf_batch=4, virtual_loss=0.0, seed=0)
        result = MCTSPlacer(env, net, REWARD, cfg).run()
        assert result.n_eval_cache_hits > 0
        assert result.n_wave_leaves < cfg.explorations * env.n_steps

    def test_search_stats_event_emitted(self, coarse_small):
        env, net = _mcts_env_net(coarse_small)
        placer = MCTSPlacer(
            env, net, REWARD, MCTSConfig(explorations=6, leaf_batch=3, seed=0)
        )
        result = placer.run()
        [stats] = placer.events.of("search_stats")
        assert stats.data["network_evaluations"] == result.n_network_evaluations
        assert stats.data["eval_cache_hits"] == result.n_eval_cache_hits
        assert stats.data["seconds_evaluation"] >= 0.0

    def test_eval_cache_survives_kill_and_resume(self, coarse_small):
        """mcts.kill mid-search with leaf batching on: resuming from the
        last commit snapshot must finish with the same assignment as an
        uninterrupted run (eval cache included in the snapshot)."""
        import copy

        cfg = MCTSConfig(explorations=6, leaf_batch=3, seed=0)
        env1, net = _mcts_env_net(copy.deepcopy(coarse_small))
        baseline = MCTSPlacer(env1, net, REWARD, cfg).run()

        snapshots = []
        env2, _ = _mcts_env_net(copy.deepcopy(coarse_small))
        placer = MCTSPlacer(
            env2, net, REWARD, cfg, on_commit=lambda s: snapshots.append(s)
        )
        with inject(FaultPlan(Fault("mcts.kill", at=3))):
            with pytest.raises(FaultInjected):
                placer.run()
        assert snapshots  # died after at least one commit

        env3, _ = _mcts_env_net(copy.deepcopy(coarse_small))
        resumed = MCTSPlacer(env3, net, REWARD, cfg).run(
            resume_state=snapshots[-1]
        )
        assert resumed.assignment == baseline.assignment
        assert resumed.wirelength == baseline.wirelength

    def test_old_snapshot_without_cache_keys_loads(self, coarse_small):
        """Snapshots from before the batching engine lack the eval-cache and
        counter keys; _restore_state must default them."""
        import copy

        cfg = MCTSConfig(explorations=4, seed=0)
        env1, net = _mcts_env_net(copy.deepcopy(coarse_small))
        snapshots = []
        MCTSPlacer(
            env1, net, REWARD, cfg, on_commit=lambda s: snapshots.append(s)
        ).run()
        legacy = dict(snapshots[0])
        for key in (
            "eval_cache", "n_eval_cache_hits", "n_waves", "n_wave_leaves",
            "seconds_selection", "seconds_evaluation", "seconds_terminal",
        ):
            legacy.pop(key, None)
        env2, _ = _mcts_env_net(copy.deepcopy(coarse_small))
        result = MCTSPlacer(env2, net, REWARD, cfg).run(resume_state=legacy)
        assert len(result.assignment) == env2.n_steps


class TestStateBuilderCaching:
    def test_observe_cached_until_mutation(self, coarse_small):
        builder = StateBuilder(coarse_small)
        s1 = builder.observe()
        assert builder.observe() is s1  # cache hit
        builder.apply(int(np.flatnonzero(s1.action_mask)[0]))
        s2 = builder.observe()
        assert s2 is not s1 and s2.t == 1

    def test_clone_matches_replay(self, coarse_small):
        builder = StateBuilder(coarse_small)
        actions = []
        for _ in range(min(2, builder.n_steps)):
            s = builder.observe()
            a = int(np.flatnonzero(s.action_mask)[0])
            actions.append(a)
            builder.apply(a)
        twin = builder.clone()
        replay = StateBuilder(coarse_small)
        for a in actions:
            replay.apply(a)
        np.testing.assert_array_equal(twin.occupancy, replay.occupancy)
        assert twin.t == replay.t
        if not twin.done():
            sa_twin = twin.observe()
            sa_replay = replay.observe()
            np.testing.assert_array_equal(sa_twin.s_a, sa_replay.s_a)
        # mutating the clone leaves the original untouched
        if not twin.done():
            twin.apply(int(np.flatnonzero(twin.observe().action_mask)[0]))
            assert builder.t == len(actions)

    def test_vectorized_availability_matches_reference_loop(self, coarse_small):
        """The sliding-window availability equals the per-anchor loop it
        replaced, bitwise (same reduction order)."""
        builder = StateBuilder(coarse_small)
        rng = np.random.default_rng(0)
        builder.occupancy = rng.random(builder.occupancy.shape) * 1.5
        builder._version += 1
        zeta = builder.plan.zeta
        for index in range(builder.n_steps):
            s_p = builder.s_p()
            s_m = builder._footprints[index]
            rows, cols = s_m.shape
            n = rows * cols
            expected = np.zeros((zeta, zeta))
            for r in range(zeta - rows + 1):
                for c in range(zeta - cols + 1):
                    window = s_p[r : r + rows, c : c + cols]
                    terms = (1.0 - s_m) * (1.0 - window)
                    prod = float(np.prod(np.clip(terms, 0.0, None)))
                    expected[r, c] = prod ** (1.0 / n) if prod > 0 else 0.0
            got = builder.availability(index)
            np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-15)


class TestDtypeSubstrate:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1))
        assert all(p.data.dtype == np.float32 for p in net.parameters())

    def test_context_manager_scopes_float64(self):
        with default_dtype("float64"):
            net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1))
            assert all(p.data.dtype == np.float64 for p in net.parameters())
        assert get_default_dtype() == np.float32

    def test_network_config_dtype_override(self):
        net = PolicyValueNet(
            NetworkConfig(zeta=4, channels=4, res_blocks=1, dtype="float64")
        )
        assert net.dtype == np.float64
        assert all(p.data.dtype == np.float64 for p in net.parameters())

    def test_checkpoint_loads_across_dtypes(self, tmp_path):
        """float64-trained weights load into a float32 network (and back),
        with outputs agreeing to float32 precision."""
        from repro.nn.serialization import load_params, save_params

        cfg64 = NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=2, dtype="float64")
        cfg32 = NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=5, dtype="float32")
        net64 = PolicyValueNet(cfg64)
        x = np.random.default_rng(0).random((2, 3, 4, 4))
        net64.forward(x)  # populate BN stats
        path = str(tmp_path / "w.npz")
        save_params(net64, path)

        net32 = PolicyValueNet(cfg32)
        load_params(net32, path)
        assert all(p.data.dtype == np.float32 for p in net32.parameters())
        net64.eval(), net32.eval()
        l64, v64 = net64.forward(x)
        l32, v32 = net32.forward(x.astype(np.float32))
        np.testing.assert_allclose(l32, l64, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(v32, v64, rtol=1e-3, atol=1e-4)

    def test_float32_conv_scratch_reused_in_eval(self):
        from repro.nn.layers import Conv2D

        conv = Conv2D(2, 3, kernel=3, rng=0)
        conv.eval()
        x = np.random.default_rng(1).random((2, 2, 4, 4)).astype(np.float32)
        conv(x)
        [first] = conv._scratch.values()
        conv(x)
        [second] = conv._scratch.values()
        assert np.shares_memory(first, second)  # same buffer, no realloc
