"""Placement service: job store, scheduler, warm reuse, metrics, daemon.

The integration tests drive :class:`~repro.service.service.PlacementService`
through the same file protocol the CLI verbs use and assert the ISSUE
acceptance properties:

- a duplicate-fingerprint job skips pre-training via the warm artifact
  cache and lands on the *bit-for-bit* same HPWL as an uninterrupted
  single-shot run of the same spec;
- a daemon restarted after dying mid-job resumes the RUNNING job from
  its per-job checkpoints (no re-queue of completed jobs);
- a budget-exceeding job fails with a structured error without taking
  down the scheduler or its sibling jobs;
- ``metrics.json`` carries queue depth, per-state counts, per-stage
  latency histograms, and warm/terminal cache hit counters.
"""

from __future__ import annotations

import copy
import json
import os
import threading

import pytest

from repro.core import MCTSGuidedPlacer
from repro.netlist.bookshelf import read_aux, write_design
from repro.netlist.generator import generate_design
from repro.runtime.errors import FaultInjected, UsageError
from repro.runtime.faults import Fault, FaultPlan
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobSpec,
    JobStore,
    PlacementService,
    Scheduler,
    ServiceMetrics,
    ServicePaths,
    WarmArtifactCache,
)
from repro.service.service import (
    read_result,
    request_cancel,
    request_stop,
    submit_job,
)
from repro.utils.events import read_jsonl
from tests.conftest import _SMALL_SPEC


@pytest.fixture(scope="module")
def aux_path(tmp_path_factory) -> str:
    """The small generated design exported as a Bookshelf bundle, so job
    specs and the single-shot reference build the identical netlist."""
    design = generate_design(copy.deepcopy(_SMALL_SPEC))
    return write_design(design, str(tmp_path_factory.mktemp("aux")))


def _spec(aux: str, **overrides) -> JobSpec:
    base = dict(aux=aux, preset="fast", seed=5)
    base.update(overrides)
    return JobSpec(**base)


# ---------------------------------------------------------------------------
# unit level: specs, store, metrics, scheduler, warm keys
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_validate_needs_a_source(self):
        with pytest.raises(UsageError):
            JobSpec().validate()

    def test_validate_rejects_unknown_preset(self):
        with pytest.raises(UsageError):
            JobSpec(circuit="ibm01", preset="huge").validate()

    def test_json_roundtrip_ignores_unknown_keys(self):
        spec = JobSpec(circuit="ibm01", seed=9, budget_seconds=3.5)
        payload = dict(spec.to_json(), future_field="ignored")
        assert JobSpec.from_json(payload) == spec

    def test_build_config_applies_seed_and_knobs(self, tmp_path):
        spec = JobSpec(circuit="ibm01", seed=11, terminal_workers=2)
        cfg = spec.build_config(terminal_cache_path=str(tmp_path / "tc"))
        assert cfg.seed == 11
        assert cfg.terminal_workers == 2
        assert cfg.terminal_cache_path == str(tmp_path / "tc")


class TestJobStore:
    def test_replay_reproduces_state(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        a = store.add(JobSpec(circuit="ibm01"), priority=2)
        b = store.add(JobSpec(circuit="ibm02"))
        store.transition(a.id, RUNNING, attempt=1)
        store.transition(a.id, DONE, hpwl=42.5, warm_hit=True, seconds=1.25)
        store.transition(b.id, CANCELLED)

        replayed = JobStore(path).load()
        ra, rb = replayed.get(a.id), replayed.get(b.id)
        assert ra.state == DONE and ra.hpwl == 42.5 and ra.warm_hit
        assert ra.seconds == 1.25 and ra.attempts == 1
        assert ra.finished_ts and rb.finished_ts
        assert rb.state == CANCELLED
        assert replayed.counts() == {
            QUEUED: 0, RUNNING: 0, DONE: 1, FAILED: 0, CANCELLED: 1,
            QUARANTINED: 0,
        }

    def test_torn_tail_forgets_only_last_transition(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        job = store.add(JobSpec(circuit="ibm01"))
        store.transition(job.id, RUNNING, attempt=1)
        with open(path, "a") as f:
            f.write('{"record": "state", "id": "%s", "sta' % job.id)

        replayed = JobStore(path).load()
        assert replayed.get(job.id).state == RUNNING
        assert replayed.queue_depth() == 0

    def test_restart_after_compact_replays_identically(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        done = store.add(JobSpec(circuit="ibm01"), priority=1)
        store.transition(done.id, RUNNING, attempt=1)
        store.transition(done.id, DONE, hpwl=42.5, warm_hit=True, seconds=1.25)
        poison = store.add(JobSpec(circuit="ibm02"))
        store.transition(poison.id, RUNNING, attempt=1)
        store.transition(poison.id, QUEUED)
        store.transition(poison.id, RUNNING, attempt=2)
        store.transition(
            poison.id, QUARANTINED, error={"kind": "PoisonError"}
        )
        live = store.add(JobSpec(circuit="ibm03"), priority=3)

        def ledger(s):
            return [
                (j.id, j.state, j.attempts, j.hpwl, j.warm_hit, j.priority,
                 (j.error or {}).get("kind"))
                for j in sorted(s.jobs(), key=lambda j: j.seq)
            ]

        before = ledger(store)
        summary = store.compact()
        assert summary["jobs_folded"] == 2 and summary["jobs_live"] == 1
        assert summary["after_bytes"] < summary["before_bytes"]

        restarted = JobStore(path).load()
        assert ledger(restarted) == before
        assert restarted.counts() == store.counts()
        assert [j.id for j in restarted.in_state(QUEUED)] == [live.id]

        # the compacted journal is a normal journal: the live job keeps
        # transitioning and a restart replays the continuation too
        restarted.transition(live.id, RUNNING, attempt=1)
        restarted.transition(live.id, DONE, hpwl=7.0)
        final = JobStore(path).load()
        assert final.get(live.id).state == DONE
        assert final.get(done.id).hpwl == 42.5
        assert final.get(poison.id).state == QUARANTINED

        # torn tail after compaction is still forgotten, nothing else
        with open(path, "a") as f:
            f.write('{"record": "state", "id": "%s", "sta' % live.id)
        torn = JobStore(path).load()
        assert ledger(torn) == ledger(final)

    def test_priority_then_fifo_order(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs.jsonl"))
        low = store.add(JobSpec(circuit="ibm01"), priority=0)
        high = store.add(JobSpec(circuit="ibm01"), priority=5)
        low2 = store.add(JobSpec(circuit="ibm01"), priority=0)
        assert [j.id for j in store.in_state(QUEUED)] == [
            high.id, low.id, low2.id,
        ]

    def test_duplicate_id_rejected(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs.jsonl"))
        job = store.add(JobSpec(circuit="ibm01"))
        with pytest.raises(UsageError):
            store.add(JobSpec(circuit="ibm01"), job_id=job.id)


class TestServiceMetrics:
    def test_counters_gauges_histograms(self):
        m = ServiceMetrics()
        m.inc("hits")
        m.inc("hits", 2)
        m.set_gauge("depth", 7)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            m.observe("latency", v)
        snap = m.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 7
        hist = snap["histograms"]["latency"]
        assert hist["count"] == 5 and hist["sum"] == 15.0
        assert hist["min"] == 1.0 and hist["max"] == 5.0
        assert hist["mean"] == 3.0
        assert hist["p50"] == 3.0 and hist["p90"] == 5.0

    def test_write_merges_top_level(self, tmp_path):
        m = ServiceMetrics()
        m.inc("n")
        path = str(tmp_path / "metrics.json")
        m.write(path, queue_depth=3)
        payload = json.load(open(path))
        assert payload["queue_depth"] == 3
        assert payload["counters"]["n"] == 1
        assert "ts" in payload


class _FakeJob:
    def __init__(self, job_id, priority, seq):
        self.id, self.priority, self.seq = job_id, priority, seq


class TestScheduler:
    def test_priority_then_fifo_dispatch(self):
        ran: list[str] = []
        done = threading.Event()

        def execute(job_id):
            ran.append(job_id)
            if len(ran) == 3:
                done.set()

        sched = Scheduler(execute, lambda _id: True, workers=1)
        sched.enqueue(_FakeJob("low", 0, 1))
        sched.enqueue(_FakeJob("high", 9, 2))
        sched.enqueue(_FakeJob("low2", 0, 3))
        sched.start()
        assert done.wait(5.0)
        sched.stop()
        assert ran == ["high", "low", "low2"]

    def test_cancelled_jobs_skipped_and_enqueue_idempotent(self):
        ran: list[str] = []
        sched = Scheduler(ran.append, lambda job_id: job_id != "dead",
                          workers=1)
        assert sched.enqueue(_FakeJob("dead", 0, 1))
        assert not sched.enqueue(_FakeJob("dead", 0, 1))
        sched.enqueue(_FakeJob("alive", 0, 2))
        sched.start()
        deadline = 5.0
        while not sched.idle() and deadline > 0:
            import time

            time.sleep(0.01)
            deadline -= 0.01
        sched.stop()
        assert ran == ["alive"]


class TestWarmKeys:
    def test_key_separates_config_and_design(self, aux_path, tmp_path):
        cache = WarmArtifactCache(str(tmp_path / "warm"))
        design = read_aux(aux_path)
        cfg_a = _spec(aux_path, seed=1).build_config()
        cfg_b = _spec(aux_path, seed=2).build_config()
        assert cache.key(cfg_a, design) == cache.key(cfg_a, design)
        assert cache.key(cfg_a, design) != cache.key(cfg_b, design)
        assert not cache.has(cache.key(cfg_a, design))

    def test_execution_knobs_do_not_split_the_key(self, aux_path, tmp_path):
        """terminal_workers / terminal_cache_path are execution knobs:
        two jobs differing only there must share warm artifacts."""
        cache = WarmArtifactCache(str(tmp_path / "warm"))
        design = read_aux(aux_path)
        cfg_a = _spec(aux_path).build_config()
        cfg_b = _spec(aux_path, terminal_workers=4).build_config(
            terminal_cache_path=str(tmp_path / "tc.jsonl")
        )
        assert cache.key(cfg_a, design) == cache.key(cfg_b, design)


# ---------------------------------------------------------------------------
# integration: admission, cancellation, warm reuse, budgets, restart
# ---------------------------------------------------------------------------


class TestAdmissionAndCancel:
    def test_backpressure_rejects_beyond_max_queue(self, aux_path, tmp_path):
        sdir = str(tmp_path / "svc")
        ids = [submit_job(sdir, _spec(aux_path, seed=i)) for i in range(3)]
        service = PlacementService(sdir, workers=1, max_queue=1)
        service.poll()  # admit without any workers running

        states = {i: service.store.get(i).state for i in ids}
        assert states[ids[0]] == QUEUED
        assert states[ids[1]] == states[ids[2]] == FAILED
        for rejected in ids[1:]:
            result = read_result(sdir, rejected)
            assert result["state"] == FAILED
            assert result["error"]["kind"] == "Backpressure"
        assert service.metrics.counter("jobs_rejected") == 2
        snapshot = json.load(open(service.paths.metrics))
        assert snapshot["queue_depth"] == 1
        assert snapshot["jobs"][FAILED] == 2

    def test_cancel_queued_via_control_file(self, aux_path, tmp_path):
        sdir = str(tmp_path / "svc")
        job_id = submit_job(sdir, _spec(aux_path))
        service = PlacementService(sdir, workers=1)
        service.poll()
        assert service.store.get(job_id).state == QUEUED

        request_cancel(sdir, job_id)
        request_cancel(sdir, "job-does-not-exist")
        service.poll()
        assert service.store.get(job_id).state == CANCELLED
        assert read_result(sdir, job_id)["state"] == CANCELLED
        assert service.metrics.counter("jobs_cancelled") == 1
        assert service.metrics.counter("cancel_unknown") == 1

        # Terminal jobs refuse further cancels; drain skips the corpse.
        assert not service.cancel(job_id)
        assert service.metrics.counter("cancel_refused") == 1
        service.run(drain=True)
        assert service.store.get(job_id).state == CANCELLED

    def test_stop_file_ends_the_daemon(self, aux_path, tmp_path):
        sdir = str(tmp_path / "svc")
        request_stop(sdir)
        service = PlacementService(sdir, workers=1, poll_interval=0.01)
        service.run()  # would serve forever without the stop file
        assert not os.path.exists(service.paths.stop_file)


class TestWarmReuseAndBudgets:
    SEED = 5

    @pytest.fixture(scope="class")
    def served(self, aux_path, tmp_path_factory):
        """One drained daemon serving a cold job, its warm duplicate, and
        a budget-doomed sibling — plus the single-shot reference run."""
        sdir = str(tmp_path_factory.mktemp("svc"))
        spec = _spec(aux_path, seed=self.SEED)
        reference = MCTSGuidedPlacer(spec.build_config()).place(
            read_aux(aux_path)
        )

        cold = submit_job(sdir, spec)
        service = PlacementService(sdir, workers=1)
        service.run(drain=True)
        warm = submit_job(sdir, spec)
        doomed = submit_job(sdir, _spec(aux_path, seed=self.SEED,
                                        budget_seconds=0.002))
        service.run(drain=True)
        return sdir, service, reference, {
            "cold": cold, "warm": warm, "doomed": doomed,
        }

    def test_warm_duplicate_is_bitwise_identical(self, served):
        sdir, service, reference, ids = served
        cold = read_result(sdir, ids["cold"])
        warm = read_result(sdir, ids["warm"])
        assert cold["state"] == warm["state"] == DONE
        assert not cold["warm_hit"] and warm["warm_hit"]
        assert cold["hpwl"] == reference.hpwl
        assert warm["hpwl"] == reference.hpwl
        assert warm["best_hpwl"] == cold["best_hpwl"]

    def test_warm_job_skipped_pretraining(self, served):
        sdir, service, _, ids = served
        events = read_jsonl(os.path.join(
            service.paths.run_dir(ids["warm"]), "events.jsonl"
        ))
        names = [e.get("event") for e in events]
        assert "warm_artifacts_injected" in names
        skipped = {e.get("stage") for e in events
                   if e.get("event") == "stage_skipped"}
        assert {"calibration", "rl_training"} <= skipped

    def test_budget_failure_is_structured_and_isolated(self, served):
        sdir, service, _, ids = served
        doomed = read_result(sdir, ids["doomed"])
        assert doomed["state"] == FAILED
        assert doomed["error"]["kind"] == "StageTimeoutError"
        assert doomed["error"]["exit_code"] == 14
        # The sibling submitted alongside it still completed.
        assert read_result(sdir, ids["warm"])["state"] == DONE

    def test_metrics_surface_is_complete(self, served):
        _, service, _, ids = served
        snapshot = json.load(open(service.paths.metrics))
        assert snapshot["queue_depth"] == 0
        assert snapshot["jobs"][DONE] == 2
        assert snapshot["jobs"][FAILED] == 1
        counters = snapshot["counters"]
        # The warm duplicate AND the budget-doomed sibling share the cold
        # job's fingerprint (the budget is a job knob, not config), so
        # both hit; only the cold job misses.
        assert counters["warm_hits"] == 2
        assert counters["warm_misses"] == 1
        assert counters["terminal_cache_hits"] > 0
        assert counters["terminal_cache_misses"] > 0
        hists = snapshot["histograms"]
        assert "job_seconds" in hists
        for stage in ("prototype", "calibration", "rl_training", "mcts",
                      "final"):
            assert hists[f"stage_seconds.{stage}"]["count"] >= 1
        assert snapshot["gauges"]["warm_cache_entries"] == 1


class TestRestartRecovery:
    def test_restart_resumes_running_job_bitwise(self, aux_path, tmp_path):
        sdir = str(tmp_path / "svc")
        spec = _spec(aux_path, seed=8)
        done_id = submit_job(sdir, spec)
        PlacementService(sdir, workers=1).run(drain=True)

        # Simulate a daemon dying mid-job: journal a RUNNING job whose
        # run dir holds a partial checkpoint (killed at episode 13).
        paths = ServicePaths(sdir)
        crashed = JobSpec(aux=spec.aux, preset="fast", seed=21)
        config = crashed.build_config(
            terminal_cache_path=paths.terminal_cache
        )
        crash_id = "job-crashed00001"
        with pytest.raises(FaultInjected):
            MCTSGuidedPlacer(config).place(
                read_aux(spec.aux),
                run_dir=paths.run_dir(crash_id),
                faults=FaultPlan(Fault("trainer.kill", at=13)),
            )
        store = JobStore(paths.journal).load()
        store.add(crashed, job_id=crash_id)
        store.transition(crash_id, RUNNING, attempt=1)
        reference = MCTSGuidedPlacer(crashed.build_config()).place(
            read_aux(spec.aux)
        )

        restarted = PlacementService(sdir, workers=1)
        assert restarted.store.get(crash_id).state == QUEUED
        assert restarted.store.get(done_id).state == DONE
        assert restarted.metrics.counter("jobs_recovered") == 1
        restarted.run(drain=True)

        result = read_result(sdir, crash_id)
        assert result["state"] == DONE
        assert result["attempts"] == 2
        assert result["hpwl"] == reference.hpwl
        # The completed job was not re-queued or re-run on restart.
        assert restarted.store.get(done_id).attempts == 1
        running = [r for r in read_jsonl(paths.journal)
                   if r.get("record") == "state"
                   and r.get("state") == RUNNING]
        assert [r["id"] for r in running].count(done_id) == 1
        # The recovered attempt went down the resume path.
        assert running[-1]["id"] == crash_id and running[-1]["resume"]


class TestCLIService:
    def test_cli_roundtrip(self, aux_path, tmp_path, capsys):
        from repro.cli import main

        sdir = str(tmp_path / "svc")
        assert main(["submit", "--service-dir", sdir, "--aux", aux_path,
                     "--preset", "fast", "--seed", "6"]) == 0
        job_id = capsys.readouterr().out.strip()
        assert main(["serve", "--service-dir", sdir, "--workers", "1",
                     "--drain"]) == 0
        assert main(["status", "--service-dir", sdir]) == 0
        out = capsys.readouterr().out
        assert job_id in out and "DONE=1" in out
        assert main(["result", "--service-dir", sdir, "--job", job_id]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["state"] == DONE and result["hpwl"] > 0
