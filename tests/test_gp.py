"""Analytical global-placement substrate tests (net models, QP, spreading,
mixed-size placer)."""

import numpy as np
import pytest

from repro.gp.mixed_size import (
    MixedSizePlacer,
    legalize_macros_greedy,
    place_cells_with_fixed_macros,
)
from repro.gp.netmodel import build_quadratic_system
from repro.gp.quadratic import solve_quadratic_placement
from repro.gp.spreading import blocked_area_grid, spread_step
from repro.eval.metrics import macro_overlap_area
from repro.netlist.hpwl import FlatNetlist, hpwl
from repro.netlist.model import (
    Cell,
    Design,
    Macro,
    Net,
    Netlist,
    Pin,
    PlacementRegion,
)


def two_fixed_one_free() -> Netlist:
    """free cell connected to fixed anchors at x=0 and x=10."""
    nl = Netlist()
    nl.add_node(Cell("a", 0, 0, x=0.0, y=0.0, fixed=True))
    nl.add_node(Cell("b", 0, 0, x=10.0, y=4.0, fixed=True))
    nl.add_node(Cell("free", 0, 0, x=99.0, y=99.0))
    nl.add_net(Net("n0", pins=[Pin("a"), Pin("free")]))
    nl.add_net(Net("n1", pins=[Pin("b"), Pin("free")]))
    return nl


class TestQuadraticSystem:
    def test_free_node_lands_at_weighted_mean(self):
        nl = two_fixed_one_free()
        flat = FlatNetlist(nl)
        movable = ~flat.fixed
        solve_quadratic_placement(flat, movable, (5.0, 5.0))
        assert flat.cx[2] == pytest.approx(5.0, abs=1e-4)
        assert flat.cy[2] == pytest.approx(2.0, abs=1e-4)

    def test_weights_shift_solution(self):
        nl = two_fixed_one_free()
        nl.nets[0].weight = 3.0  # pull 3x harder toward a at x=0
        flat = FlatNetlist(nl)
        solve_quadratic_placement(flat, ~flat.fixed, (5.0, 5.0))
        assert flat.cx[2] == pytest.approx(10.0 / 4.0, abs=1e-6)

    def test_disconnected_node_anchored_to_center(self):
        nl = Netlist()
        nl.add_node(Cell("island", 0, 0, x=77.0, y=77.0))
        flat = FlatNetlist(nl)
        solve_quadratic_placement(flat, ~flat.fixed, (5.0, 6.0))
        assert flat.cx[0] == pytest.approx(5.0, abs=1e-3)
        assert flat.cy[0] == pytest.approx(6.0, abs=1e-3)

    def test_mask_shape_validated(self):
        nl = two_fixed_one_free()
        flat = FlatNetlist(nl)
        with pytest.raises(ValueError):
            build_quadratic_system(flat, np.ones(99, dtype=bool))

    def test_star_and_clique_models_agree_for_symmetric_net(self):
        """A star-decomposed high-degree net keeps the centroid solution."""

        def make(threshold):
            nl = Netlist()
            for i, x in enumerate([0.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0]):
                nl.add_node(Cell(f"f{i}", 0, 0, x=x, y=float(i), fixed=True))
            nl.add_node(Cell("m", 0, 0))
            nl.add_net(
                Net("n", pins=[Pin(f"f{i}") for i in range(7)] + [Pin("m")])
            )
            flat = FlatNetlist(nl)
            solve_quadratic_placement(
                flat, ~flat.fixed, (12.0, 3.0), clique_threshold=threshold
            )
            return float(flat.cx[-1])

        clique_x = make(threshold=20)
        star_x = make(threshold=2)
        assert clique_x == pytest.approx(star_x, abs=1e-4)

    def test_anchor_pseudo_nets_pull(self):
        nl = two_fixed_one_free()
        flat = FlatNetlist(nl)
        solve_quadratic_placement(
            flat,
            ~flat.fixed,
            (5.0, 5.0),
            anchor_weight=np.array([1e6]),
            anchor_x=np.array([8.0]),
            anchor_y=np.array([1.0]),
        )
        assert flat.cx[2] == pytest.approx(8.0, abs=1e-3)
        assert flat.cy[2] == pytest.approx(1.0, abs=1e-3)

    def test_solve_reduces_hpwl(self, small_design):
        flat = FlatNetlist(small_design.netlist)
        before = flat.total_hpwl()
        solve_quadratic_placement(
            flat,
            ~flat.fixed,
            (small_design.region.width / 2, small_design.region.height / 2),
        )
        assert flat.total_hpwl() < before


class TestSpreading:
    def test_blocked_area_grid_accounts_blocker(self):
        region = PlacementRegion(0, 0, 100, 100)
        blocked = blocked_area_grid(region, [Macro("m", 50, 50, x=0, y=0)], 4, 4)
        assert blocked[0, 0] == pytest.approx(625.0)
        assert blocked.sum() == pytest.approx(2500.0)

    def test_spread_pushes_cells_apart(self):
        region = PlacementRegion(0, 0, 100, 100)
        n = 50
        cx = np.full(n, 50.0) + np.linspace(-0.5, 0.5, n)
        cy = np.full(n, 50.0) + np.linspace(-0.5, 0.5, n)
        areas = np.full(n, 4.0)
        blocked = np.zeros((4, 4))
        sx, sy = spread_step(cx, cy, areas, region, blocked, eta=1.0)
        assert sx.std() > cx.std()

    def test_spread_avoids_blocked_bins(self):
        region = PlacementRegion(0, 0, 100, 100)
        n = 40
        rng = np.random.default_rng(0)
        cx = rng.uniform(0, 100, n)
        cy = np.full(n, 50.0)
        areas = np.full(n, 2.0)
        blocked = np.zeros((4, 4))
        blocked[:, 0] = 625.0  # left quarter fully blocked
        sx, _sy = spread_step(cx, cy, areas, region, blocked, eta=1.0)
        assert (sx > 20.0).mean() > 0.9

    def test_damping_limits_motion(self):
        region = PlacementRegion(0, 0, 100, 100)
        cx = np.array([50.0, 50.1])
        cy = np.array([50.0, 50.0])
        areas = np.array([1.0, 1.0])
        blocked = np.zeros((2, 2))
        sx0, _ = spread_step(cx, cy, areas, region, blocked, eta=0.0)
        np.testing.assert_allclose(sx0, cx)


class TestMixedSizePlacer:
    def test_reduces_hpwl(self, small_design):
        before = hpwl(small_design.netlist)
        result = MixedSizePlacer(n_iterations=2).place(small_design)
        assert result.hpwl < before

    def test_macros_legal_after_place(self, small_design):
        result = MixedSizePlacer(n_iterations=2).place(small_design)
        assert result.macro_overlap == 0.0
        assert macro_overlap_area(small_design) < 1e-9

    def test_everything_inside_region(self, small_design):
        MixedSizePlacer(n_iterations=2).place(small_design)
        for node in small_design.netlist:
            if not node.fixed:
                assert small_design.region.contains(node, tol=1e-6)

    def test_cells_only_mode_keeps_macros(self, placed_design):
        macro_pos = {
            m.name: (m.x, m.y) for m in placed_design.netlist.macros
        }
        MixedSizePlacer(n_iterations=2).place(placed_design, move_macros=False)
        for name, (x, y) in macro_pos.items():
            node = placed_design.netlist[name]
            assert (node.x, node.y) == (x, y)

    def test_place_cells_with_fixed_macros_returns_hpwl(self, placed_design):
        wl = place_cells_with_fixed_macros(placed_design, n_iterations=2)
        assert wl == pytest.approx(hpwl(placed_design.netlist), rel=1e-9)
        assert wl > 0

    def test_deterministic(self, small_design):
        import copy

        d2 = copy.deepcopy(small_design)
        r1 = MixedSizePlacer(n_iterations=2).place(small_design)
        r2 = MixedSizePlacer(n_iterations=2).place(d2)
        assert r1.hpwl == pytest.approx(r2.hpwl)


class TestGreedyLegalizer:
    def test_clears_overlap(self):
        nl = Netlist()
        for i in range(4):
            nl.add_node(Macro(f"m{i}", 10, 10, x=5.0, y=5.0))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 100, 100))
        residual = legalize_macros_greedy(design)
        assert residual == 0.0
        assert macro_overlap_area(design) < 1e-9

    def test_respects_preplaced(self):
        nl = Netlist()
        nl.add_node(Macro("pp", 20, 20, x=40.0, y=40.0, fixed=True))
        nl.add_node(Macro("mv", 10, 10, x=45.0, y=45.0))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 100, 100))
        legalize_macros_greedy(design)
        assert not nl["pp"].overlaps(nl["mv"])
        assert (nl["pp"].x, nl["pp"].y) == (40.0, 40.0)

    def test_no_macros_is_noop(self):
        nl = Netlist()
        nl.add_node(Cell("c", 1, 1))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 10, 10))
        assert legalize_macros_greedy(design) == 0.0

    def test_stays_in_region(self):
        nl = Netlist()
        for i in range(6):
            nl.add_node(Macro(f"m{i}", 30, 30, x=90.0, y=90.0))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 100, 100))
        legalize_macros_greedy(design)
        for m in nl.macros:
            assert design.region.contains(m, tol=1e-6)
