"""Parallel pure terminal evaluation (PR 3).

Covers the purity contract (``evaluate_assignment`` is a history-free
function of the assignment), the worker pool's bitwise equivalence and
degradation paths, the cross-run terminal cache, the transposition-keyed
network-evaluation cache, and the vectorized pairwise-overlap check.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.agent.state import StateBuilder
from repro.coarsen import coarsen_design
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.legalize.pipeline import any_pairwise_overlap
from repro.mcts.node import Node as TreeNode
from repro.mcts.search import MCTSConfig, MCTSPlacer, _state_key
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.model import Node
from repro.parallel import (
    TerminalCache,
    TerminalEvaluationPool,
    environment_fingerprint,
)
from repro.runtime.faults import Fault, FaultPlan, inject
from repro.utils.events import EventLog

REWARD = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0, alpha=0.75)


@pytest.fixture(scope="session")
def _coarse_other_base():
    """A second, structurally different problem for the purity property."""
    spec = GeneratorSpec(
        name="parallel-other",
        n_movable_macros=6,
        n_pads=6,
        n_cells=40,
        n_nets=55,
        hierarchy_depth=2,
        hierarchy_branching=2,
        seed=11,
    )
    design = generate_design(spec)
    MixedSizePlacer(n_iterations=2).place(design)
    return coarsen_design(design, GridPlan(design.region, zeta=4))


@pytest.fixture
def coarse_other(_coarse_other_base):
    return copy.deepcopy(_coarse_other_base)


def make_env(coarse) -> MacroGroupPlacementEnv:
    return MacroGroupPlacementEnv(
        copy.deepcopy(coarse), cell_place_iters=1
    )


def random_assignments(env, n: int, seed: int = 0) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    return [
        [int(a) for a in rng.integers(0, env.n_actions, env.n_steps)]
        for _ in range(n)
    ]


# -- tentpole: purity of terminal evaluation ----------------------------------
class TestPurity:
    @pytest.mark.parametrize("which", ["small", "other"])
    def test_history_independent(self, which, coarse_small, coarse_other):
        """evaluate_assignment(a) is bitwise-identical regardless of what
        the environment evaluated before — the property every other piece
        of this PR (pool, cross-run cache) is built on."""
        coarse = {"small": coarse_small, "other": coarse_other}[which]
        env = make_env(coarse)
        assignments = random_assignments(env, 3, seed=1)

        fresh = [make_env(coarse).evaluate_assignment(a) for a in assignments]

        reused = make_env(coarse)
        reused.play_random_episode(5)  # dirty the coarse netlist
        dirty = [reused.evaluate_assignment(a) for a in reversed(assignments)]
        assert dirty[::-1] == fresh

        # and again, interleaved, on the same reused env
        again = [reused.evaluate_assignment(a) for a in assignments]
        assert again == fresh

    def test_pool_matches_in_process_bitwise(self, coarse_small):
        env = make_env(coarse_small)
        assignments = random_assignments(env, 3, seed=2)
        expected = [
            make_env(coarse_small).evaluate_assignment(a) for a in assignments
        ]
        with TerminalEvaluationPool(env, workers=2, clamp=False) as pool:
            assert pool.parallel
            assert pool.evaluate_many(assignments) == expected
            assert pool.n_pooled == len(assignments)


# -- the worker pool ----------------------------------------------------------
class TestTerminalEvaluationPool:
    def test_workers1_stays_in_process(self, coarse_small):
        env = make_env(coarse_small)
        pool = TerminalEvaluationPool(env, workers=1)
        assert not pool.parallel
        a = [0] * env.n_steps
        expected = make_env(coarse_small).evaluate_assignment(a)
        assert pool.evaluate(a) == expected
        assert pool.n_local == 1 and pool.n_pooled == 0

    def test_spawn_failure_degrades_with_event(self, coarse_small):
        env = make_env(coarse_small)
        events = EventLog()
        with inject(FaultPlan(Fault("pool.spawn", at=1))):
            pool = TerminalEvaluationPool(env, workers=2, clamp=False, events=events)
        assert not pool.parallel
        degradations = events.of("degradation")
        assert len(degradations) == 1
        assert degradations[0].data["solver"] == "terminal_pool"
        assert degradations[0].data["phase"] == "spawn"
        # evaluation still works, in-process
        a = [0] * env.n_steps
        assert pool.evaluate(a) == make_env(coarse_small).evaluate_assignment(a)
        assert pool.n_local == 1

    def test_submit_failure_marks_broken_and_falls_back(self, coarse_small):
        # respawn_limit=0 pins the pre-respawn semantics: the first failed
        # submit permanently degrades the pool (the bounded-respawn path
        # is covered in tests/test_supervision.py)
        env = make_env(coarse_small)
        events = EventLog()
        assignments = random_assignments(env, 3, seed=3)
        expected = [
            make_env(coarse_small).evaluate_assignment(a) for a in assignments
        ]
        with inject(FaultPlan(Fault("pool.submit", at=1))):
            with TerminalEvaluationPool(
                env, workers=2, clamp=False, events=events, respawn_limit=0
            ) as pool:
                assert pool.parallel
                results = [pool.evaluate(a) for a in assignments]
                assert not pool.parallel  # broken after the injected submit
        assert results == expected
        degradations = events.of("degradation")
        assert len(degradations) == 1
        assert degradations[0].data["phase"] == "submit"
        assert pool.n_local == len(assignments)

    def test_close_is_idempotent_and_degrades(self, coarse_small):
        env = make_env(coarse_small)
        pool = TerminalEvaluationPool(env, workers=2, clamp=False)
        pool.close()
        pool.close()
        a = [1] * env.n_steps
        assert pool.evaluate(a) == make_env(coarse_small).evaluate_assignment(a)


# -- adaptive pool sizing (PR 6) ----------------------------------------------
class TestAdaptivePoolSizing:
    def test_oversubscription_clamped_to_cpu_count(self, coarse_small):
        import os

        cores = os.cpu_count() or 1
        env = make_env(coarse_small)
        events = EventLog()
        pool = TerminalEvaluationPool(env, workers=cores + 3, events=events)
        try:
            assert pool.requested_workers == cores + 3
            assert pool.workers == cores
            degradations = events.of("degradation")
            assert len(degradations) == 1
            data = degradations[0].data
            assert data["solver"] == "terminal_pool"
            assert data["phase"] == "sizing"
            assert data["requested"] == cores + 3
            assert data["cpu_count"] == cores
            assert data["workers"] == cores
            expected_fallback = "in_process" if cores <= 1 else "clamp"
            assert data["fallback"] == expected_fallback
            # when the clamp leaves one worker, no pool is spawned at all
            if cores <= 1:
                assert not pool.parallel
            # results are unchanged either way (purity)
            a = [0] * env.n_steps
            assert pool.evaluate(a) == (
                make_env(coarse_small).evaluate_assignment(a)
            )
        finally:
            pool.close()

    def test_clamp_optout_keeps_the_literal_request(self, coarse_small):
        env = make_env(coarse_small)
        events = EventLog()
        pool = TerminalEvaluationPool(
            env, workers=2, clamp=False, events=events
        )
        try:
            assert pool.workers == 2
            assert pool.parallel
            assert events.of("degradation") == []
        finally:
            pool.close()

    def test_request_within_budget_emits_nothing(self, coarse_small):
        env = make_env(coarse_small)
        events = EventLog()
        pool = TerminalEvaluationPool(env, workers=1, events=events)
        assert pool.workers == 1
        assert not pool.parallel
        assert events.of("degradation") == []


# -- the cross-run terminal cache ---------------------------------------------
class TestTerminalCache:
    def test_counters_and_lookup(self):
        cache = TerminalCache("fp")
        assert cache.get([1, 2]) is None
        cache.put([1, 2], 42.5)
        assert cache.get((1, 2)) == 42.5
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_put_keeps_first_value(self):
        cache = TerminalCache("fp")
        cache.put([1], 1.0)
        cache.put([1], 2.0)
        assert cache.get([1]) == 1.0

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "terminal_cache.jsonl")
        cache = TerminalCache("fp", path=path)
        cache.put([3, 1, 4], 159.0)
        cache.put([2, 7, 1], 828.0)
        reloaded = TerminalCache("fp", path=path)
        assert reloaded.get([3, 1, 4]) == 159.0
        assert reloaded.get([2, 7, 1]) == 828.0
        assert len(reloaded) == 2

    def test_fingerprint_mismatch_ignored(self, tmp_path):
        path = str(tmp_path / "terminal_cache.jsonl")
        TerminalCache("fp-a", path=path).put([1, 2], 10.0)
        other = TerminalCache("fp-b", path=path)
        assert len(other) == 0
        assert other.get([1, 2]) is None

    def test_torn_tail_and_junk_tolerated(self, tmp_path):
        path = str(tmp_path / "terminal_cache.jsonl")
        TerminalCache("fp", path=path).put([5], 50.0)
        with open(path, "a") as f:
            f.write("not json\n")
            f.write(json.dumps({"fingerprint": "fp"}) + "\n")  # no payload
            f.write('{"fingerprint": "fp", "assignment": [9], "wi')  # torn
        reloaded = TerminalCache("fp", path=path)
        assert reloaded.get([5]) == 50.0
        assert len(reloaded) == 1

    def test_sha_mismatch_drops_only_the_damaged_record(self, tmp_path):
        path = str(tmp_path / "terminal_cache.jsonl")
        cache = TerminalCache("fp", path=path)
        cache.put([1, 2], 100.0)
        cache.put([3, 4], 200.0)
        lines = open(path).read().splitlines()
        # flip the recorded wirelength of the first entry without
        # updating its sha — simulated bit rot
        damaged = json.loads(lines[0])
        damaged["wirelength"] = 999.0
        with open(path, "w") as f:
            f.write(json.dumps(damaged) + "\n")
            f.write(lines[1] + "\n")
        reloaded = TerminalCache("fp", path=path)
        assert reloaded.corrupt_entries == 1
        assert reloaded.get([1, 2]) is None  # poisoned value never served
        assert reloaded.get([3, 4]) == 200.0

    def test_legacy_records_without_sha_still_load(self, tmp_path):
        path = str(tmp_path / "terminal_cache.jsonl")
        with open(path, "w") as f:
            f.write(json.dumps({
                "fingerprint": "fp", "assignment": [7], "wirelength": 70.0,
            }) + "\n")
        cache = TerminalCache("fp", path=path)
        assert cache.get([7]) == 70.0
        assert cache.corrupt_entries == 0

    def test_duplicate_keys_last_writer_wins(self, tmp_path):
        # two shards appending the same (pure) evaluation: either record
        # may land last; the replayed value is the shared one
        path = str(tmp_path / "terminal_cache.jsonl")
        TerminalCache("fp", path=path).put([1], 10.0)
        TerminalCache("fp", path=path).put([1], 10.0)
        reloaded = TerminalCache("fp", path=path)
        assert len(reloaded) == 1
        assert reloaded.get([1]) == 10.0

    def test_compact_drops_damage_and_resets_corrupt_count(self, tmp_path):
        path = str(tmp_path / "terminal_cache.jsonl")
        cache = TerminalCache("fp", path=path)
        cache.put([1, 2], 100.0)
        cache.put([3, 4], 200.0)
        # a foreign fingerprint that must survive even though this
        # instance ignores it
        TerminalCache("fp-other", path=path).put([9], 90.0)
        lines = open(path).read().splitlines()
        damaged = json.loads(lines[0])
        damaged["wirelength"] = 999.0  # sha no longer matches
        with open(path, "w") as f:
            f.write(json.dumps(damaged) + "\n")
            for line in lines[1:]:
                f.write(line + "\n")
            f.write(lines[1] + "\n")  # peer re-append: superseded dup
            f.write('{"fingerprint": "fp", "assignment": [8], "wi')  # torn

        reloaded = TerminalCache("fp", path=path)
        assert reloaded.corrupt_entries == 1
        summary = reloaded.compact()
        assert summary["kept"] == 2  # [3,4] and foreign [9]; [1,2] gone
        assert summary["dropped_corrupt"] == 1  # bit rot (torn never parses)
        assert summary["dropped_superseded"] == 1
        assert summary["after_bytes"] < summary["before_bytes"]
        assert reloaded.corrupt_entries == 0

        clean = TerminalCache("fp", path=path)
        assert clean.corrupt_entries == 0
        assert clean.get([1, 2]) is None  # poisoned value stays gone
        assert clean.get([3, 4]) == 200.0
        assert TerminalCache("fp-other", path=path).get([9]) == 90.0

    def test_fingerprint_tracks_environment(self, coarse_small):
        env_a = make_env(coarse_small)
        env_b = make_env(coarse_small)
        assert environment_fingerprint(env_a) == environment_fingerprint(env_b)
        env_c = MacroGroupPlacementEnv(
            copy.deepcopy(coarse_small), cell_place_iters=2
        )
        assert environment_fingerprint(env_a) != environment_fingerprint(env_c)


# -- MCTS integration ---------------------------------------------------------
class TestMCTSIntegration:
    def _search(self, coarse, pool=None, cache=None, leaf_batch=4):
        env = pool.env if pool is not None else make_env(coarse)
        net = PolicyValueNet(
            NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0)
        )
        placer = MCTSPlacer(
            env, net, REWARD,
            MCTSConfig(explorations=8, leaf_batch=leaf_batch, seed=0),
            terminal_pool=pool, terminal_cache=cache,
        )
        return placer.run(), placer

    def test_pooled_search_equivalent(self, coarse_small):
        base, _ = self._search(coarse_small)
        with TerminalEvaluationPool(make_env(coarse_small), workers=2, clamp=False) as pool:
            pooled, _ = self._search(coarse_small, pool=pool)
        assert pooled.assignment == base.assignment
        assert pooled.wirelength == base.wirelength
        assert pooled.best_terminal_wirelength == base.best_terminal_wirelength
        assert pooled.best_terminal_assignment == base.best_terminal_assignment

    def test_broken_pool_mid_search_still_equivalent(self, coarse_small):
        base, _ = self._search(coarse_small)
        with inject(FaultPlan(Fault("pool.submit", at=2))):
            with TerminalEvaluationPool(
                make_env(coarse_small), workers=2, clamp=False
            ) as pool:
                degraded, _ = self._search(coarse_small, pool=pool)
        assert degraded.assignment == base.assignment
        assert degraded.wirelength == base.wirelength

    def test_persisted_cache_skips_all_terminal_evaluations(
        self, coarse_small, tmp_path
    ):
        path = str(tmp_path / "terminal_cache.jsonl")
        env = make_env(coarse_small)
        fp = environment_fingerprint(env)
        first, _ = self._search(
            coarse_small, cache=TerminalCache(fp, path=path)
        )
        assert first.n_terminal_evaluations > 0
        second, _ = self._search(
            coarse_small, cache=TerminalCache(fp, path=path)
        )
        # the deterministic re-run revisits exactly the same assignments —
        # every terminal evaluation is served from the persisted file
        assert second.n_terminal_evaluations == 0
        assert second.n_terminal_cache_hits > 0
        assert second.assignment == first.assignment
        assert second.wirelength == first.wirelength


# -- satellite: the transposition-keyed evaluation cache ----------------------
class TestEvalCacheTranspositions:
    def test_same_state_different_prefix_shares_entry(self, coarse_small):
        """The PR 2 cache keyed on the action prefix, so two tree positions
        holding the same state never shared an entry (BENCH_pr2 recorded 0
        hits).  Keyed on the canonical state content, the second expansion
        is a hit."""
        env = make_env(coarse_small)
        net = PolicyValueNet(
            NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0)
        )
        placer = MCTSPlacer(env, net, REWARD, MCTSConfig(explorations=2))
        builder = StateBuilder(env.coarse)
        value_a = placer._expand(TreeNode(depth=0), builder, [])
        assert placer.n_eval_cache_hits == 0
        value_b = placer._expand(TreeNode(depth=0), builder, [7])
        assert placer.n_eval_cache_hits == 1
        assert value_a == value_b

    def test_state_key_is_content_not_identity(self, coarse_small):
        env = make_env(coarse_small)
        builder = StateBuilder(env.coarse)
        a, b = builder.observe(), builder.clone().observe()
        assert a is not b
        assert _state_key(a) == _state_key(b)

    def test_colliding_wave_descents_hit(self, coarse_small):
        """virtual_loss=0 makes every descent of a wave identical — the
        transposition configuration on which hits must be nonzero."""
        env = make_env(coarse_small)
        net = PolicyValueNet(
            NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0)
        )
        result = MCTSPlacer(
            env, net, REWARD,
            MCTSConfig(explorations=8, leaf_batch=4, virtual_loss=0.0, seed=0),
        ).run()
        assert result.n_eval_cache_hits > 0


# -- satellite: trainer integration -------------------------------------------
class TestTrainerIntegration:
    def _trainer(self, coarse, pool=None, n_envs=4):
        env = pool.env if pool is not None else make_env(coarse)
        net = PolicyValueNet(
            NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0)
        )
        return ActorCriticTrainer(
            env, net, REWARD, rng=5, n_envs=n_envs, terminal_pool=pool
        )

    def test_pooled_finalization_bitwise(self, coarse_small):
        base = self._trainer(coarse_small).play_episodes(4)
        with TerminalEvaluationPool(make_env(coarse_small), workers=2, clamp=False) as pool:
            pooled = self._trainer(coarse_small, pool=pool).play_episodes(4)
        assert [w for _, w in pooled] == [w for _, w in base]
        assert [
            [t.action for t in ts] for ts, _ in pooled
        ] == [[t.action for t in ts] for ts, _ in base]

    def test_single_env_skips_pool(self, coarse_small):
        with TerminalEvaluationPool(make_env(coarse_small), workers=2, clamp=False) as pool:
            trainer = self._trainer(coarse_small, pool=pool, n_envs=1)
            trainer.play_episodes(1)
            assert pool.n_pooled == 0  # n==1 finalizes in-process


# -- satellite: vectorized pairwise overlap -----------------------------------
class TestAnyPairwiseOverlap:
    @staticmethod
    def _loop_reference(nodes) -> bool:
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if a.overlaps(b):
                    return True
        return False

    @staticmethod
    def _random_nodes(rng, n, span) -> list[Node]:
        return [
            Node(
                name=f"r{i}",
                width=float(rng.uniform(1, 6)),
                height=float(rng.uniform(1, 6)),
                x=float(rng.uniform(0, span)),
                y=float(rng.uniform(0, span)),
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("span", [15.0, 200.0])
    def test_matches_loop_reference(self, span):
        rng = np.random.default_rng(9)
        for _ in range(25):
            nodes = self._random_nodes(rng, 10, span)
            assert any_pairwise_overlap(nodes) == self._loop_reference(nodes)

    def test_edge_touching_is_not_overlap(self):
        a = Node(name="a", width=2.0, height=2.0, x=0.0, y=0.0)
        b = Node(name="b", width=2.0, height=2.0, x=2.0, y=0.0)  # abuts in x
        c = Node(name="c", width=2.0, height=2.0, x=0.0, y=2.0)  # abuts in y
        assert not a.overlaps(b) and not a.overlaps(c)
        assert not any_pairwise_overlap([a, b, c])

    def test_true_overlap_detected(self):
        a = Node(name="a", width=3.0, height=3.0, x=0.0, y=0.0)
        b = Node(name="b", width=3.0, height=3.0, x=2.0, y=2.0)
        assert any_pairwise_overlap([a, b])

    def test_degenerate_inputs(self):
        assert not any_pairwise_overlap([])
        assert not any_pairwise_overlap(
            [Node(name="a", width=1.0, height=1.0)]
        )
