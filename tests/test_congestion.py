"""RUDY congestion-estimation tests."""

import numpy as np
import pytest

from repro.eval.congestion import congestion_report, rudy_map
from repro.netlist.model import Cell, Design, Net, Netlist, Pin, PlacementRegion


def two_pin_design(p0, p1, region_side=100.0) -> Design:
    nl = Netlist()
    a = Cell("a", 0.0, 0.0)
    a.move_center_to(*p0)
    b = Cell("b", 0.0, 0.0)
    b.move_center_to(*p1)
    nl.add_node(a)
    nl.add_node(b)
    nl.add_net(Net("n", pins=[Pin("a"), Pin("b")]))
    return Design(netlist=nl, region=PlacementRegion(0, 0, region_side, region_side))


class TestRudyMap:
    def test_empty_design_zero(self):
        design = Design(netlist=Netlist(), region=PlacementRegion(0, 0, 10, 10))
        assert rudy_map(design, bins=4).sum() == 0.0

    def test_demand_confined_to_bbox(self):
        design = two_pin_design((10, 10), (30, 30))
        m = rudy_map(design, bins=10)
        # Bins fully outside the [10,30]² box carry no demand.
        assert m[8, 8] == 0.0
        assert m[0, 8] == 0.0
        assert m[1:3, 1:3].sum() > 0

    def test_total_wire_volume_conserved(self):
        """Σ bins · bin_area = HPWL (the net's wire volume) for an interior
        net."""
        design = two_pin_design((10, 20), (50, 60))
        bins = 20
        m = rudy_map(design, bins=bins)
        bin_area = (100.0 / bins) ** 2
        hpwl = (50 - 10) + (60 - 20)
        assert m.sum() * bin_area == pytest.approx(hpwl, rel=1e-6)

    def test_net_weight_scales_demand(self):
        d1 = two_pin_design((10, 10), (40, 40))
        d2 = two_pin_design((10, 10), (40, 40))
        d2.netlist.nets[0].weight = 3.0
        m1, m2 = rudy_map(d1, 8), rudy_map(d2, 8)
        assert m2.sum() == pytest.approx(3.0 * m1.sum())

    def test_degenerate_net_handled(self):
        design = two_pin_design((25, 25), (25, 25))  # zero-extent bbox
        m = rudy_map(design, bins=8)
        assert np.isfinite(m).all()

    def test_crossing_nets_accumulate(self):
        nl = Netlist()
        for i, (x, y) in enumerate([(10, 50), (90, 50), (50, 10), (50, 90)]):
            c = Cell(f"c{i}", 0, 0)
            c.move_center_to(x, y)
            nl.add_node(c)
        nl.add_net(Net("h", pins=[Pin("c0"), Pin("c1")]))
        nl.add_net(Net("v", pins=[Pin("c2"), Pin("c3")]))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 100, 100))
        m = rudy_map(design, bins=10)
        center = m[5, 5]
        edge_h = m[5, 1]
        # The crossing region sees both nets.
        assert center > edge_h


class TestCongestionReport:
    def test_report_fields(self, placed_design):
        report = congestion_report(placed_design, bins=16)
        assert report.peak >= report.p95 >= 0
        assert 0.0 <= report.overflow_fraction <= 1.0
        assert "RUDY" in str(report)

    def test_spread_placement_less_congested_than_stacked(self, small_design):
        import copy

        from repro.gp.mixed_size import MixedSizePlacer

        stacked = copy.deepcopy(small_design)
        for node in stacked.netlist:
            if not node.fixed:
                node.move_center_to(
                    stacked.region.width / 2, stacked.region.height / 2
                )
        placed = copy.deepcopy(small_design)
        MixedSizePlacer(n_iterations=3).place(placed)
        assert (
            congestion_report(placed, 16).peak
            < congestion_report(stacked, 16).peak
        )
