"""Row-based cell legalizer tests."""

import numpy as np
import pytest

from repro.gp.mixed_size import MixedSizePlacer
from repro.legalize.cells import CellLegalizationResult, legalize_cells
from repro.netlist.model import (
    Cell,
    Design,
    Macro,
    Netlist,
    PlacementRegion,
)


def cells_design(cells, macros=(), region=None) -> Design:
    nl = Netlist()
    for m in macros:
        nl.add_node(m)
    for c in cells:
        nl.add_node(c)
    return Design(
        netlist=nl, region=region or PlacementRegion(0, 0, 20, 10)
    )


def assert_no_cell_overlap(design: Design) -> None:
    cells = design.netlist.cells
    for i in range(len(cells)):
        for j in range(i + 1, len(cells)):
            assert not cells[i].overlaps(cells[j]), (
                f"{cells[i].name} overlaps {cells[j].name}"
            )


class TestBasicLegalization:
    def test_stacked_cells_separate(self):
        design = cells_design(
            [Cell(f"c{i}", 2.0, 1.0, x=5.0, y=5.0) for i in range(4)]
        )
        result = legalize_cells(design)
        assert result.success
        assert_no_cell_overlap(design)

    def test_cells_snap_to_rows(self):
        design = cells_design(
            [Cell("c0", 2.0, 1.0, x=3.3, y=4.7), Cell("c1", 2.0, 1.0, x=8.1, y=2.2)]
        )
        legalize_cells(design, row_height=1.0)
        for c in design.netlist.cells:
            assert c.y == pytest.approx(round(c.y))

    def test_cells_avoid_macros(self):
        macro = Macro("m", 8.0, 4.0, x=6.0, y=3.0)
        design = cells_design(
            [Cell(f"c{i}", 2.0, 1.0, x=9.0, y=4.0 + 0.1 * i) for i in range(3)],
            macros=[macro],
        )
        result = legalize_cells(design, row_height=1.0)
        assert result.success
        for c in design.netlist.cells:
            assert not c.overlaps(macro)

    def test_displacement_reported(self):
        design = cells_design([Cell("c0", 2.0, 1.0, x=3.0, y=5.0)])
        result = legalize_cells(design, row_height=1.0)
        assert result.total_displacement == pytest.approx(0.0)

    def test_empty_design(self):
        design = cells_design([])
        result = legalize_cells(design)
        assert result == CellLegalizationResult(0, 0, 0.0)

    def test_overfull_region_reports_failures(self):
        # 30 width-2 cells in a 4x2 region: only ~4 fit.
        design = cells_design(
            [Cell(f"c{i}", 2.0, 1.0, x=1.0, y=0.5) for i in range(30)],
            region=PlacementRegion(0, 0, 4, 2),
        )
        result = legalize_cells(design, row_height=1.0)
        assert result.failed > 0
        assert result.placed + result.failed == 30

    def test_cells_inside_region(self):
        rng = np.random.default_rng(0)
        design = cells_design(
            [
                Cell(f"c{i}", 1.0 + (i % 3), 1.0,
                     x=float(rng.uniform(0, 18)), y=float(rng.uniform(0, 9)))
                for i in range(25)
            ]
        )
        result = legalize_cells(design, row_height=1.0)
        assert result.success
        for c in design.netlist.cells:
            assert design.region.contains(c, tol=1e-9)


class TestOnRealDesign:
    def test_after_analytical_placement(self, small_design):
        MixedSizePlacer(n_iterations=2).place(small_design)
        result = legalize_cells(small_design, row_height=1.0)
        assert result.success
        assert_no_cell_overlap(small_design)
        # No cell overlaps any macro.
        for c in small_design.netlist.cells:
            for m in small_design.netlist.macros:
                assert not c.overlaps(m)

    def test_displacement_is_moderate(self, small_design):
        """Legalization should not teleport cells across the die."""
        MixedSizePlacer(n_iterations=2).place(small_design)
        result = legalize_cells(small_design, row_height=1.0)
        diag = small_design.region.width + small_design.region.height
        mean_disp = result.total_displacement / max(result.placed, 1)
        assert mean_disp < diag * 0.25
