"""Symmetry-augmentation tests: the mirrored transition must describe the
same physical placement decision."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent.state import StateBuilder
from repro.agent.symmetry import (
    OPS,
    augment_transition,
    transform_action,
    transform_anchor_array,
    transform_planes,
)


class TestPlaneTransforms:
    def test_identity(self):
        x = np.random.default_rng(0).random((3, 4, 4))
        np.testing.assert_array_equal(transform_planes(x, "identity"), x)

    def test_flips_are_involutions(self):
        x = np.random.default_rng(0).random((3, 4, 4))
        for op in ("flip_h", "flip_v", "rot180"):
            np.testing.assert_array_equal(
                transform_planes(transform_planes(x, op), op), x
            )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            transform_planes(np.zeros((1, 2, 2)), "rot90")


class TestAnchorTransforms:
    def test_identity(self):
        v = np.arange(16.0)
        np.testing.assert_array_equal(
            transform_anchor_array(v, (1, 1), "identity"), v
        )

    def test_unit_span_matches_image_flip(self):
        """For 1×1 spans the anchor map degenerates to the image flip."""
        v = np.arange(16.0)
        got = transform_anchor_array(v, (1, 1), "flip_h")
        expected = v.reshape(4, 4)[:, ::-1].ravel()
        np.testing.assert_array_equal(got, expected)

    def test_involution_for_any_span(self):
        rng = np.random.default_rng(1)
        for span in [(1, 1), (1, 2), (2, 1), (2, 3)]:
            rows, cols = span
            v = np.zeros(16)
            # Valid anchors only (others must be 0 for the involution).
            for r in range(4 - rows + 1):
                for c in range(4 - cols + 1):
                    v[r * 4 + c] = rng.random()
            for op in ("flip_h", "flip_v", "rot180"):
                twice = transform_anchor_array(
                    transform_anchor_array(v, span, op), span, op
                )
                np.testing.assert_allclose(twice, v)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            transform_anchor_array(np.zeros(15), (1, 1), "flip_h")


class TestActionTransforms:
    def test_flip_h_with_span(self):
        # zeta=4, span cols=2: anchor c=0 -> c=2.
        assert transform_action(0, (1, 2), "flip_h", 4) == 2

    def test_flip_v_with_span(self):
        # anchor r=0 -> r = 4 - rows - 0 = 2 for rows=2
        assert transform_action(0, (2, 1), "flip_v", 4) == 2 * 4

    def test_center_fixed_point(self):
        # zeta=5, 1x1 span, center anchor (2,2) = 12 stays put under rot180.
        assert transform_action(12, (1, 1), "rot180", 5) == 12

    @settings(max_examples=50)
    @given(st.integers(0, 15), st.sampled_from(["flip_h", "flip_v", "rot180"]),
           st.tuples(st.integers(1, 2), st.integers(1, 2)))
    def test_involution(self, action, op, span):
        rows, cols = span
        r, c = divmod(action, 4)
        # Only valid anchors participate.
        if r > 4 - rows or c > 4 - cols:
            return
        once = transform_action(action, span, op, 4)
        twice = transform_action(once, span, op, 4)
        assert twice == action


class TestPhysicalConsistency:
    def test_mirrored_transition_mirrors_occupancy(self, coarse_small):
        """Applying action a, then flipping the resulting s_p, equals
        flipping the state and applying the flipped action."""
        builder = StateBuilder(coarse_small)
        if coarse_small.design.netlist.preplaced_macros:
            pytest.skip("preplaced macros break exact die symmetry")
        state = builder.observe()
        span = builder.footprint(0).shape
        action = int(np.flatnonzero(state.action_mask)[0])
        builder.apply(action)
        s_p_after = builder.s_p()

        mirrored_action = transform_action(
            action, span, "flip_h", coarse_small.plan.zeta
        )
        builder2 = StateBuilder(coarse_small)
        builder2.apply(mirrored_action)
        s_p_mirrored = builder2.s_p()
        np.testing.assert_allclose(s_p_mirrored[:, ::-1], s_p_after, atol=1e-12)

    def test_augment_transition_shapes(self):
        planes = np.random.default_rng(0).random((3, 4, 4))
        mask = np.ones(16)
        p2, m2, a2 = augment_transition(planes, mask, 5, (1, 1), "rot180")
        assert p2.shape == planes.shape
        assert m2.shape == mask.shape
        assert 0 <= a2 < 16

    def test_trainer_with_augmentation_runs(self, coarse_small):
        from repro.agent.actorcritic import ActorCriticTrainer
        from repro.agent.network import NetworkConfig, PolicyValueNet
        from repro.agent.reward import NormalizedReward
        from repro.env.placement_env import MacroGroupPlacementEnv

        env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
        reward_fn = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)
        trainer = ActorCriticTrainer(
            env, net, reward_fn, update_every=2, augment_symmetry=True, rng=0
        )
        history = trainer.train(4)
        assert len(history.rewards) == 4
        assert len(history.losses) == 2
