"""Self-healing supervision: heartbeats, watchdog, retry/quarantine,
artifact integrity, and independent result verification.

Unit layers (fake clocks, hand-built designs) pin the deterministic
pieces — backoff schedules, stall detection, checksum round-trips, the
verifier's geometry checks — and one integration test runs the full
chaos drill: every injected failure (worker kill, checkpoint bit-rot,
stage stall, warm-cache corruption, poison job) must end DONE-after-retry
or QUARANTINED, with DONE HPWLs bit-identical to the unfaulted baseline.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core import MCTSGuidedPlacer, PlacerConfig
from repro.netlist.hpwl import hpwl
from repro.runtime.errors import StageStallError
from repro.runtime.faults import Fault, FaultPlan, inject
from repro.runtime.integrity import corrupt_file, sha256_file, verify_file
from repro.service import (
    DONE,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Heartbeat,
    JobSpec,
    JobStore,
    PlacementService,
    Scheduler,
    ServiceMetrics,
    SupervisedBudget,
)
from repro.service.supervisor import JobSupervisor, classify_transient
from repro.service.warm import WarmArtifactCache
from repro.utils.events import read_jsonl
from repro.verify import verify_placement
from repro.verify.doctor import doctor_run_dir
from tests.conftest import build_tiny_design
from tests.test_parallel import make_env, random_assignments

from repro.parallel import TerminalEvaluationPool
from repro.runtime.budget import StageBudget
from repro.utils.events import EventLog


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- heartbeat + supervised budget -------------------------------------------
class TestHeartbeat:
    def test_beat_advances_and_tracks_stage(self):
        clock = FakeClock()
        hb = Heartbeat("job-a", 1, clock=clock)
        clock.advance(5.0)
        assert hb.age() == 5.0
        hb.beat("mcts")
        assert hb.age() == 0.0
        assert hb.stage == "mcts"
        assert hb.beats == 1

    def test_freeze_fault_stops_beats(self):
        clock = FakeClock()
        hb = Heartbeat("job-a", 1, clock=clock)
        with inject(FaultPlan(Fault("stall.freeze", at=1))):
            clock.advance(1.0)
            hb.beat()  # freezes instead of beating
            assert hb.frozen
            clock.advance(9.0)
            hb.beat()
        assert hb.age() == 10.0  # last_beat pinned at construction time

    def test_cancelled_poll_raises_structured_stall(self):
        hb = Heartbeat("job-a", 2, clock=FakeClock())
        hb.beat("rl_training")
        hb.cancel("no progress for 3.00s (stall_seconds=1.0)")
        with pytest.raises(StageStallError) as err:
            hb.poll()
        assert err.value.stage == "rl_training"
        assert err.value.details["job"] == "job-a"
        assert err.value.details["attempt"] == 2
        assert StageStallError.exit_code == 16

    def test_supervised_budget_beats_and_raises(self):
        clock = FakeClock()
        hb = Heartbeat("job-a", 1, clock=clock)
        budget = SupervisedBudget(StageBudget("mcts", None), hb)
        clock.advance(2.0)
        assert not budget.exhausted()
        assert hb.age() == 0.0  # the poll beat
        assert hb.stage == "mcts"
        hb.cancel("stalled")
        with pytest.raises(StageStallError):
            budget.check()


# -- retry / backoff / quarantine --------------------------------------------
def make_supervisor(tmp_path, **kw):
    store = JobStore(str(tmp_path / "jobs.jsonl"))
    metrics = ServiceMetrics()
    supervisor = JobSupervisor(
        store, metrics, str(tmp_path / "quarantine.jsonl"), **kw
    )
    return store, metrics, supervisor


class TestBackoff:
    def test_deterministic_and_exponential(self, tmp_path):
        _, _, sup = make_supervisor(tmp_path, backoff_base=0.5)
        d1 = sup.backoff_delay("job-x", 1)
        assert d1 == sup.backoff_delay("job-x", 1)  # replay-stable
        assert d1 != sup.backoff_delay("job-y", 1)  # decorrelated
        # jitter keeps each delay in [base, 1.5*base); doubling dominates
        # it, so the retry schedule is strictly increasing per attempt
        for attempt in range(1, 5):
            delay = sup.backoff_delay("job-x", attempt)
            base = 0.5 * 2 ** (attempt - 1)
            assert base <= delay < 1.5 * base
            assert delay > sup.backoff_delay("job-x", attempt - 1)

    def test_transient_classification(self):
        assert classify_transient("FaultInjected")
        assert classify_transient("StageStallError")
        assert classify_transient("ArtifactCorruptError")
        assert classify_transient("MemoryError")  # unknown: worth a retry
        assert not classify_transient("UsageError")
        assert not classify_transient("VerificationError")
        assert not classify_transient("StageTimeoutError")


class TestResolveFailure:
    def test_transient_retries_then_quarantines(self, tmp_path):
        clock = FakeClock()
        store, metrics, sup = make_supervisor(
            tmp_path, max_retries=2, backoff_base=0.5, clock=clock
        )
        job = store.add(JobSpec(circuit="ibm01"))
        error = {"kind": "FaultInjected", "message": "boom"}
        delays = []
        for attempt in (1, 2):
            store.transition(job.id, RUNNING, attempt=attempt)
            assert sup.resolve_failure(store.get(job.id), error) == "retry"
            assert store.get(job.id).state == QUEUED
            # not due until the backoff elapses
            assert sup.due_retries() == []
            delay = sup.backoff_delay(job.id, attempt)
            delays.append(delay)
            clock.advance(delay + 1e-6)
            assert sup.due_retries() == [job.id]
        assert delays[1] > delays[0]
        store.transition(job.id, RUNNING, attempt=3)
        assert sup.resolve_failure(store.get(job.id), error) == "quarantine"
        quarantined = store.get(job.id)
        assert quarantined.state == QUARANTINED
        assert quarantined.terminal
        records = sup.quarantined()
        assert len(records) == 1
        assert records[0]["id"] == job.id
        assert records[0]["error"]["kind"] == "FaultInjected"
        assert metrics.counter("jobs_retried") == 2
        assert metrics.counter("jobs_quarantined") == 1

    def test_permanent_error_fails_immediately(self, tmp_path):
        store, metrics, sup = make_supervisor(tmp_path, max_retries=5)
        job = store.add(JobSpec(circuit="ibm01"))
        store.transition(job.id, RUNNING, attempt=1)
        error = {"kind": "CalibrationError", "message": "deterministic"}
        assert sup.resolve_failure(store.get(job.id), error) == "fail"
        assert store.get(job.id).state == "FAILED"
        assert metrics.counter("jobs_retried") == 0

    def test_retry_journal_replays(self, tmp_path):
        store, _, sup = make_supervisor(tmp_path, max_retries=2)
        job = store.add(JobSpec(circuit="ibm01"))
        store.transition(job.id, RUNNING, attempt=1)
        sup.resolve_failure(
            store.get(job.id), {"kind": "FaultInjected", "message": "x"}
        )
        replayed = JobStore(store.path).load()
        assert replayed.get(job.id).state == QUEUED
        assert replayed.get(job.id).attempts == 1
        retry = [
            r for r in read_jsonl(store.path)
            if r.get("reason") == "retry"
        ]
        assert len(retry) == 1 and retry[0]["retry_delay"] > 0


class TestWatchdog:
    def _stub_scheduler(self):
        calls = []

        class Stub:
            def abandon(self, job_id):
                calls.append(job_id)
                return True

        return Stub(), calls

    def test_stall_cancels_then_force_abandons(self, tmp_path):
        clock = FakeClock()
        store, metrics, sup = make_supervisor(
            tmp_path, stall_seconds=1.0, stall_grace=1.0,
            max_retries=2, clock=clock,
        )
        scheduler, abandoned = self._stub_scheduler()
        sup.scheduler = scheduler
        job = store.add(JobSpec(circuit="ibm01"))
        store.transition(job.id, RUNNING, attempt=1)
        hb = sup.begin(job.id, 1)
        clock.advance(0.5)
        sup.check_stalls()
        assert not hb.cancelled  # within stall_seconds
        clock.advance(0.6)
        sup.check_stalls()
        assert hb.cancelled  # phase 1: cooperative cancel
        assert metrics.counter("stalls_detected") == 1
        assert abandoned == []
        clock.advance(1.0)
        sup.check_stalls()  # phase 2: past grace, thread never polled
        assert abandoned == [job.id]
        assert metrics.counter("jobs_abandoned") == 1
        assert store.get(job.id).state == QUEUED  # transient -> retry

    def test_stale_attempt_detected_after_abandon(self, tmp_path):
        clock = FakeClock()
        store, _, sup = make_supervisor(
            tmp_path, stall_seconds=0.1, stall_grace=0.0, clock=clock
        )
        sup.scheduler, _ = self._stub_scheduler()
        job = store.add(JobSpec(circuit="ibm01"))
        store.transition(job.id, RUNNING, attempt=1)
        sup.begin(job.id, 1)
        assert sup.attempt_current(job.id, 1)
        clock.advance(0.2)
        sup.check_stalls()
        clock.advance(0.2)
        sup.check_stalls()
        # the job was re-queued by the watchdog: the stuck attempt's
        # eventual completion must be recognised as stale
        assert not sup.attempt_current(job.id, 1)


# -- scheduler: abandon + retry re-enqueue ------------------------------------
class TestSchedulerAbandon:
    def test_abandon_releases_slot_and_respawns_worker(self):
        release = threading.Event()
        executed = []

        def execute(job_id):
            if job_id == "stuck":
                release.wait(5.0)
            executed.append(job_id)

        sched = Scheduler(execute, lambda _: True, workers=1)

        class J:
            def __init__(self, id, seq):
                self.id, self.priority, self.seq = id, 0, seq

        sched.start()
        try:
            sched.enqueue(J("stuck", 1))
            deadline = time.monotonic() + 5.0
            while "stuck" not in sched._running and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not sched.idle()
            assert sched.abandon("stuck")
            assert sched.idle()  # slot released without killing the thread
            # the replacement worker still serves new jobs
            sched.enqueue(J("next", 2))
            deadline = time.monotonic() + 5.0
            while "next" not in executed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert "next" in executed
        finally:
            release.set()
            sched.stop()
        assert "stuck" in executed  # the stuck thread drained on release

    def test_dedup_released_at_dispatch_for_retries(self):
        started = threading.Event()
        release = threading.Event()

        def execute(job_id):
            started.set()
            release.wait(5.0)

        sched = Scheduler(execute, lambda _: True, workers=1)

        class J:
            id, priority, seq = "job-r", 0, 1

        assert sched.enqueue(J())
        assert not sched.enqueue(J())  # still queued: deduped
        sched.start()
        try:
            assert started.wait(5.0)
            # dispatched: a retry of the same id may enqueue again
            assert sched.enqueue(J())
        finally:
            release.set()
            sched.stop()


# -- artifact integrity --------------------------------------------------------
QUICK = dict(circuit="ibm01", scale=0.004, macro_scale=0.04)


def quick_design():
    from repro.service.jobs import resolve_design

    return resolve_design(**QUICK)[1]


class TestIntegrity:
    def test_checksum_roundtrip_and_corruption(self, tmp_path):
        path = str(tmp_path / "artifact.bin")
        with open(path, "wb") as f:
            f.write(b"deterministic bytes" * 100)
        digest = sha256_file(path)
        assert verify_file(path, digest)
        assert verify_file(path, None)  # legacy: no recorded checksum
        offset = corrupt_file(path)
        assert 0 <= offset < os.path.getsize(path)
        assert not verify_file(path, digest)

    def test_corrupt_checkpoint_triggers_stage_restart(self, tmp_path):
        config = PlacerConfig.fast(seed=3)
        design = quick_design()
        clean = MCTSGuidedPlacer(config).place(
            quick_design(), run_dir=str(tmp_path / "clean")
        )
        run_dir = str(tmp_path / "faulted")
        with inject(FaultPlan(Fault("trainer.kill", at=3))):
            with pytest.raises(Exception):
                MCTSGuidedPlacer(config).place(design, run_dir=run_dir)
        # bit-rot the completed calibration artifact behind the manifest
        corrupt_file(os.path.join(run_dir, "calibration.json"))
        resumed = MCTSGuidedPlacer(config).place(
            quick_design(), run_dir=run_dir, resume=True
        )
        assert resumed.hpwl == clean.hpwl  # restart healed it, bit-exactly
        degradations = [
            e for e in resumed.events.of("degradation")
            if e.data.get("fallback") == "stage_restart"
        ]
        assert len(degradations) == 1
        assert degradations[0].data["artifact"] == "calibration.json"

    def test_doctor_flags_corruption(self, tmp_path):
        run_dir = str(tmp_path / "run")
        MCTSGuidedPlacer(PlacerConfig.fast(seed=3)).place(
            quick_design(), run_dir=run_dir
        )
        report = doctor_run_dir(run_dir, design=quick_design(), zeta=8)
        assert report.ok, report.summary()
        corrupt_file(os.path.join(run_dir, "network.npz"))
        report = doctor_run_dir(run_dir)
        assert not report.ok
        assert "checksums" in report.failed

    def test_warm_cache_discards_corrupt_entry(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        for name in ("calibration.json", "training.json"):
            (src / name).write_text("{}")
        (src / "network.npz").write_bytes(b"\x93NUMPY" + b"x" * 64)
        cache = WarmArtifactCache(str(tmp_path / "warm"))
        assert cache.store("key-a", str(src))
        assert cache.validate("key-a")
        corrupt_file(os.path.join(cache.root, "key-a", "network.npz"))
        assert not cache.validate("key-a")
        cache.discard("key-a")
        assert not cache.has("key-a")


# -- independent verification --------------------------------------------------
class TestVerifier:
    def test_clean_tiny_design_passes(self):
        design = build_tiny_design()
        report = verify_placement(design, reported_hpwl=hpwl(design.netlist))
        assert report.ok, report.summary()

    def test_overlap_detected(self):
        design = build_tiny_design()
        m0, m1 = design.netlist.macros[:2]
        m1.x, m1.y = m0.x + 1.0, m0.y + 1.0  # stack m1 onto m0
        report = verify_placement(design)
        assert "macro_overlap" in report.failed

    def test_out_of_bounds_detected(self):
        design = build_tiny_design()
        design.netlist.macros[1].x = design.region.width + 5.0
        report = verify_placement(design)
        assert "in_bounds" in report.failed

    def test_hpwl_mismatch_detected(self):
        design = build_tiny_design()
        report = verify_placement(design, reported_hpwl=hpwl(design.netlist) * 1.01)
        assert "hpwl_recompute" in report.failed


# -- pool worker kill: bounded respawn -----------------------------------------
class TestPoolRespawn:
    def test_worker_kill_respawns_and_matches_bitwise(self, coarse_small):
        env = make_env(coarse_small)
        events = EventLog()
        assignments = random_assignments(env, 4, seed=11)
        expected = [
            make_env(coarse_small).evaluate_assignment(a) for a in assignments
        ]
        with inject(FaultPlan(Fault("pool.worker_kill", at=1))):
            with TerminalEvaluationPool(env, workers=2, clamp=False, events=events) as pool:
                assert pool.parallel
                results = [pool.evaluate(a) for a in assignments]
                assert pool.parallel  # respawned, not broken
        assert results == expected
        assert pool.respawns >= 1
        respawn_events = [
            e for e in events.of("degradation")
            if e.data.get("fallback") == "respawn"
        ]
        assert len(respawn_events) == pool.respawns

    def test_respawn_limit_exhaustion_degrades_in_process(self, coarse_small):
        env = make_env(coarse_small)
        events = EventLog()
        a = [0] * env.n_steps
        expected = make_env(coarse_small).evaluate_assignment(a)
        with inject(FaultPlan(Fault("pool.submit", at=1, count=None))):
            with TerminalEvaluationPool(
                env, workers=2, clamp=False, events=events, respawn_limit=1
            ) as pool:
                assert pool.evaluate(a) == expected
                assert pool.evaluate(a) == expected
                assert not pool.parallel  # limit spent: degraded for good
        fallbacks = [e.data["fallback"] for e in events.of("degradation")]
        assert fallbacks.count("respawn") == 1
        assert "in_process" in fallbacks


# -- service-level supervision -------------------------------------------------
def make_service(tmp_path, **kw):
    kw.setdefault("poll_interval", 0.02)
    kw.setdefault("backoff_base", 0.05)
    return PlacementService(str(tmp_path / "svc"), **kw)


class TestInboxQuarantine:
    def test_stale_malformed_submission_rejected(self, tmp_path):
        service = make_service(tmp_path, reject_malformed_after=0.5)
        bad = os.path.join(service.paths.inbox, "000-bad.json")
        with open(bad, "w") as f:
            f.write('{"id": "job-bad", "spec": {truncated')
        # fresh: still inside the half-written grace window
        service.poll()
        assert os.path.exists(bad)
        # stale: same file past the grace window is quarantined
        os.utime(bad, (time.time() - 10.0, time.time() - 10.0))
        service.poll()
        assert not os.path.exists(bad)
        rejected = os.path.join(service.paths.rejected, "000-bad.json")
        assert os.path.exists(rejected)
        with open(rejected + ".reason.json") as f:
            reason = json.load(f)
        assert reason["kind"] == "JSONDecodeError"
        assert service.metrics.counter("submissions_rejected_malformed") == 1
        # the quarantined file no longer blocks draining
        assert service._drained()

    def test_rejected_dir_not_treated_as_submission(self, tmp_path):
        service = make_service(tmp_path, reject_malformed_after=0.0)
        os.makedirs(service.paths.rejected, exist_ok=True)
        service.poll()  # must not crash on the .rejected subdirectory
        assert service.store.jobs() == []


class TestVerificationColdRetry:
    def test_verification_failure_on_warm_run_retries_cold(self, tmp_path):
        service = make_service(tmp_path)
        job = service.store.add(JobSpec(**QUICK))
        service.store.transition(job.id, RUNNING, attempt=1)
        error = {"kind": "VerificationError", "message": "overlap"}
        service._resolve_attempt_failure(job, 1, time.perf_counter(), error,
                                         warm_hit=True)
        assert service.store.get(job.id).state == QUEUED
        assert service.supervisor.is_cold(job.id)
        assert service.metrics.counter("verify_cold_retries") == 1
        retry = [r for r in read_jsonl(service.store.path)
                 if r.get("reason") == "verify_cold_retry"]
        assert len(retry) == 1
        # a second verification failure on the cold attempt is final
        service.store.transition(job.id, RUNNING, attempt=2)
        service._resolve_attempt_failure(
            job, 2, time.perf_counter(), error, warm_hit=False
        )
        assert service.store.get(job.id).state == "FAILED"

    def test_verification_failure_without_reuse_fails_directly(self, tmp_path):
        service = make_service(tmp_path)
        job = service.store.add(JobSpec(**QUICK))
        service.store.transition(job.id, RUNNING, attempt=1)
        error = {"kind": "VerificationError", "message": "overlap"}
        service._resolve_attempt_failure(
            job, 1, time.perf_counter(), error, warm_hit=False
        )
        assert service.store.get(job.id).state == "FAILED"
        assert service.metrics.counter("verify_cold_retries") == 0


class TestChaosDrill:
    def test_every_fault_heals_or_quarantines(self, tmp_path):
        from repro.service.chaos import run_chaos_drill

        report = run_chaos_drill(str(tmp_path / "chaos"))
        failures = [
            f"{s['name']}: " + "; ".join(
                c["name"] for c in s["checks"] if not c["ok"]
            )
            for s in report["scenarios"] if not s["ok"]
        ]
        assert report["ok"], failures
        by_name = {s["name"]: s for s in report["scenarios"]}
        # retried scenarios healed on attempt 2, bit-identically
        for name in ("checkpoint_corrupt", "stage_stall"):
            job = by_name[name]["jobs"][0]
            assert job["state"] == DONE and job["attempts"] == 2
            assert job["hpwl"] == report["reference_hpwl"]
        # the poison job exhausted its retries into quarantine
        poison = by_name["poison"]["jobs"][0]
        assert poison["state"] == QUARANTINED and poison["attempts"] == 3
