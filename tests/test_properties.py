"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent.reward import NormalizedReward
from repro.agent.state import group_utilization
from repro.grid.plan import GridPlan
from repro.legalize.lp_spread import pack_longest_path
from repro.legalize.sequence_pair import extract_sequence_pair
from repro.mcts.node import Node
from repro.netlist.model import PlacementRegion
from repro.nn.functional import masked_softmax, softmax


class TestRewardProperties:
    @given(
        st.floats(1.0, 1e6),
        st.floats(0.0, 1e6),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=60)
    def test_monotone_decreasing_in_wirelength(self, w_min, spread, frac, alpha):
        """Shorter wirelength never yields a smaller reward."""
        w_max = w_min + spread + 1e-6
        w_avg = w_min + frac * (w_max - w_min)
        r = NormalizedReward(w_max=w_max, w_min=w_min, w_avg=w_avg, alpha=alpha)
        assert r(w_min) >= r(w_max)
        mid = (w_min + w_max) / 2
        assert r(w_min) >= r(mid) >= r(w_max)

    @given(st.floats(0.5, 1.0))
    @settings(max_examples=30)
    def test_alpha_band_keeps_sampled_range_nonnegative(self, alpha):
        """Paper claim: with α ∈ [0.5, 1], rewards for wirelengths inside the
        calibration band stay above zero-ish (≥ α − 1 ≥ −0.5, and the
        average maps exactly to α > 0)."""
        r = NormalizedReward(w_max=300.0, w_min=100.0, w_avg=200.0, alpha=alpha)
        assert r(200.0) == pytest.approx(alpha)
        assert r(300.0) >= alpha - 1.0


class TestStateProperties:
    @given(st.floats(0.5, 120.0), st.floats(0.5, 120.0))
    @settings(max_examples=50, deadline=None)
    def test_footprint_conserves_area(self, w, h):
        """Σ s_m · grid_area equals the rectangle's area (capped at 1/grid)."""
        plan = GridPlan(PlacementRegion(0, 0, 160, 160), zeta=16)
        u = group_utilization(plan, w, h)
        w_c = min(w, plan.zeta * plan.cell_width)
        h_c = min(h, plan.zeta * plan.cell_height)
        assert u.sum() * plan.cell_area == pytest.approx(w_c * h_c, rel=1e-9)
        assert (u <= 1.0 + 1e-12).all()
        assert (u >= 0.0).all()


class TestSequencePairProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 10_000))
    def test_packing_respects_all_edges(self, n, seed):
        """Longest-path packing satisfies every constraint edge."""
        rng = np.random.default_rng(seed)
        xs, ys = rng.uniform(0, 100, n), rng.uniform(0, 100, n)
        ws, hs = rng.uniform(1, 10, n), rng.uniform(1, 10, n)
        sp = extract_sequence_pair(xs, ys, ws, hs)
        h_edges, v_edges = sp.relations()
        px = pack_longest_path(ws, h_edges, lo=0.0)
        for a, b in h_edges:
            assert px[a] + ws[a] <= px[b] + 1e-9
        py = pack_longest_path(hs, v_edges, lo=0.0)
        for a, b in v_edges:
            assert py[a] + hs[a] <= py[b] + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 10_000))
    def test_packed_layout_is_overlap_free(self, n, seed):
        """Packing x and y from one sequence pair removes all overlap —
        the guarantee Sec. II-B's step 3 relies on."""
        rng = np.random.default_rng(seed)
        xs, ys = rng.uniform(0, 20, n), rng.uniform(0, 20, n)  # overlapping
        ws, hs = rng.uniform(1, 10, n), rng.uniform(1, 10, n)
        sp = extract_sequence_pair(xs, ys, ws, hs)
        h_edges, v_edges = sp.relations()
        px = pack_longest_path(ws, h_edges, lo=0.0)
        py = pack_longest_path(hs, v_edges, lo=0.0)
        for i in range(n):
            for j in range(i + 1, n):
                sep_x = px[i] + ws[i] <= px[j] + 1e-9 or px[j] + ws[j] <= px[i] + 1e-9
                sep_y = py[i] + hs[i] <= py[j] + 1e-9 or py[j] + hs[j] <= py[i] + 1e-9
                assert sep_x or sep_y, f"rectangles {i},{j} overlap"


class TestSoftmaxProperties:
    @given(
        st.lists(st.floats(-20, 20), min_size=2, max_size=12),
        st.integers(0, 2**16),
    )
    @settings(max_examples=60)
    def test_masked_softmax_is_distribution(self, logits, mask_bits):
        logits = np.asarray(logits)
        mask = np.array(
            [(mask_bits >> i) & 1 for i in range(len(logits))], dtype=float
        )
        p = masked_softmax(logits, mask)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()
        if mask.any():
            assert (p[mask == 0] == 0).all()

    @given(st.lists(st.floats(-20, 20), min_size=2, max_size=12))
    @settings(max_examples=40)
    def test_full_mask_equals_plain_softmax(self, logits):
        logits = np.asarray(logits)
        np.testing.assert_allclose(
            masked_softmax(logits, np.ones_like(logits)),
            softmax(logits),
            rtol=1e-9,
        )


class TestPUCTProperties:
    def _node(self, rng, n):
        node = Node(depth=0)
        node.actions = np.arange(n, dtype=np.int64)
        prior = rng.random(n) + 1e-6
        node.prior = prior / prior.sum()
        node.visit = rng.integers(0, 20, n).astype(float)
        node.total_value = rng.normal(size=n) * node.visit
        node.expanded = True
        return node

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 10_000))
    def test_q_between_min_max_observed(self, n, seed):
        rng = np.random.default_rng(seed)
        node = self._node(rng, n)
        q = node.q_values()
        visited = node.visit > 0
        if visited.any():
            mean_values = node.total_value[visited] / node.visit[visited]
            np.testing.assert_allclose(q[visited], mean_values)
        assert (q[~visited] == 0).all()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 10_000))
    def test_recording_increases_visit_mass(self, n, seed):
        rng = np.random.default_rng(seed)
        node = self._node(rng, n)
        before = node.visit.sum()
        node.record(int(rng.integers(0, n)), 0.5)
        assert node.visit.sum() == before + 1
