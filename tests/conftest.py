"""Shared fixtures.

Expensive artifacts (generated designs, prototype placements, coarse
netlists) are built once per session and handed to tests as deep copies so
mutation never leaks between tests.
"""

from __future__ import annotations

import copy

import pytest

from repro.coarsen import coarsen_design
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.model import (
    Cell,
    Design,
    IOPad,
    Macro,
    Net,
    Netlist,
    Pin,
    PlacementRegion,
)


def build_tiny_design() -> Design:
    """A fully hand-built 2-macro / 3-cell / 1-pad design for exact asserts."""
    nl = Netlist(name="tiny")
    nl.add_node(Macro("m0", 10.0, 10.0, x=0.0, y=0.0, hierarchy="top/a"))
    nl.add_node(Macro("m1", 8.0, 6.0, x=20.0, y=20.0, hierarchy="top/b"))
    nl.add_node(Cell("c0", 2.0, 1.0, x=5.0, y=5.0, hierarchy="top/a"))
    nl.add_node(Cell("c1", 2.0, 1.0, x=15.0, y=15.0, hierarchy="top/b"))
    nl.add_node(Cell("c2", 3.0, 1.0, x=30.0, y=30.0, hierarchy="top/b"))
    nl.add_node(IOPad("p0", 1.0, 1.0, x=-1.0, y=20.0))
    nl.add_net(Net("n0", pins=[Pin("m0"), Pin("c0")]))
    nl.add_net(Net("n1", pins=[Pin("m0"), Pin("m1"), Pin("c1")]))
    nl.add_net(Net("n2", pins=[Pin("c2"), Pin("p0")]))
    return Design(netlist=nl, region=PlacementRegion(0.0, 0.0, 40.0, 40.0))


@pytest.fixture
def tiny_design() -> Design:
    return build_tiny_design()


_SMALL_SPEC = GeneratorSpec(
    name="small",
    n_movable_macros=8,
    n_preplaced_macros=2,
    n_pads=8,
    n_cells=60,
    n_nets=80,
    hierarchy_depth=2,
    hierarchy_branching=2,
    seed=7,
)


@pytest.fixture(scope="session")
def _small_design_base() -> Design:
    return generate_design(_SMALL_SPEC)


@pytest.fixture
def small_design(_small_design_base: Design) -> Design:
    return copy.deepcopy(_small_design_base)


@pytest.fixture(scope="session")
def _placed_design_base(_small_design_base: Design) -> Design:
    design = copy.deepcopy(_small_design_base)
    MixedSizePlacer(n_iterations=2).place(design)
    return design


@pytest.fixture
def placed_design(_placed_design_base: Design) -> Design:
    return copy.deepcopy(_placed_design_base)


@pytest.fixture(scope="session")
def _coarse_base(_placed_design_base: Design):
    design = copy.deepcopy(_placed_design_base)
    plan = GridPlan(design.region, zeta=4)
    return coarsen_design(design, plan)


@pytest.fixture
def coarse_small(_coarse_base):
    return copy.deepcopy(_coarse_base)
