"""B*-tree floorplanning tests: packing legality, perturbations, SA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import macro_overlap_area, out_of_region_area
from repro.floorplan import BStarTree, BTreeFloorplanPlacer, FloorplanSA


def assert_packing_legal(tree: BStarTree) -> None:
    packed = tree.pack()
    w, h = tree.rect_dims()
    n = tree.n
    for i in range(n):
        assert packed.x[i] >= -1e-9
        assert packed.y[i] >= -1e-9
        assert packed.x[i] + w[i] <= packed.width + 1e-9
        assert packed.y[i] + h[i] <= packed.height + 1e-9
        for j in range(i + 1, n):
            sep_x = (
                packed.x[i] + w[i] <= packed.x[j] + 1e-9
                or packed.x[j] + w[j] <= packed.x[i] + 1e-9
            )
            sep_y = (
                packed.y[i] + h[i] <= packed.y[j] + 1e-9
                or packed.y[j] + h[j] <= packed.y[i] + 1e-9
            )
            assert sep_x or sep_y, f"rects {i}, {j} overlap"


class TestPacking:
    def test_single_rectangle(self):
        tree = BStarTree(np.array([4.0]), np.array([3.0]), rng=0)
        packed = tree.pack()
        assert packed.area == pytest.approx(12.0)
        assert (packed.x[0], packed.y[0]) == (0.0, 0.0)

    def test_two_rectangles_no_overlap(self):
        tree = BStarTree(np.array([4.0, 2.0]), np.array([3.0, 5.0]), rng=1)
        assert_packing_legal(tree)

    def test_area_lower_bound(self):
        widths = np.array([3.0, 4.0, 2.0, 5.0])
        heights = np.array([2.0, 3.0, 4.0, 1.0])
        tree = BStarTree(widths, heights, rng=2)
        packed = tree.pack()
        assert packed.area >= float((widths * heights).sum()) - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 10_000))
    def test_any_tree_packs_legally(self, n, seed):
        """The representation's defining property: every B*-tree is legal."""
        rng = np.random.default_rng(seed)
        tree = BStarTree(rng.uniform(1, 8, n), rng.uniform(1, 8, n), rng=seed)
        assert_packing_legal(tree)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 10), st.integers(0, 10_000), st.integers(1, 30))
    def test_legal_after_arbitrary_perturbations(self, n, seed, k):
        rng = np.random.default_rng(seed)
        tree = BStarTree(rng.uniform(1, 8, n), rng.uniform(1, 8, n), rng=seed)
        for _ in range(k):
            tree.perturb(rng)
        assert_packing_legal(tree)


class TestPerturbations:
    def test_rotate_changes_dims(self):
        tree = BStarTree(np.array([4.0, 2.0]), np.array([3.0, 5.0]), rng=0)
        w0, h0 = tree.rect_dims()
        tree.rotate(0)
        w1, h1 = tree.rect_dims()
        # Slot 0 holds some rectangle; its dims flipped.
        r = int(tree.rect_of_slot[0])
        assert w1[r] == pytest.approx(h0[r])
        assert h1[r] == pytest.approx(w0[r])

    def test_swap_preserves_rect_identity(self):
        tree = BStarTree(np.array([4.0, 2.0]), np.array([3.0, 5.0]), rng=0)
        tree.swap(0, 1)
        w, h = tree.rect_dims()
        # Rect 0 is still 4x3 wherever it sits.
        assert w[0] == pytest.approx(4.0)
        assert h[0] == pytest.approx(3.0)

    def test_copy_restore_roundtrip(self):
        rng = np.random.default_rng(0)
        tree = BStarTree(rng.uniform(1, 5, 6), rng.uniform(1, 5, 6), rng=0)
        before = tree.pack()
        state = tree.copy_state()
        for _ in range(10):
            tree.perturb(rng)
        tree.restore_state(state)
        after = tree.pack()
        np.testing.assert_allclose(after.x, before.x)
        np.testing.assert_allclose(after.y, before.y)

    def test_detach_root_refused(self):
        tree = BStarTree(np.array([1.0, 1.0]), np.array([1.0, 1.0]), rng=0)
        assert not tree.detach_leaf(tree.root)


class TestFloorplanSA:
    def test_area_improves(self):
        rng = np.random.default_rng(3)
        widths = rng.uniform(2, 10, 10)
        heights = rng.uniform(2, 10, 10)
        sa0 = FloorplanSA(widths, heights, n_moves=0, seed=3)
        initial, _ = sa0.run()
        sa = FloorplanSA(widths, heights, n_moves=800, area_weight=1.0, seed=3)
        packed, _tree = sa.run()
        assert packed.area <= initial.area

    def test_deterministic(self):
        widths = np.array([3.0, 5.0, 2.0, 4.0])
        heights = np.array([2.0, 3.0, 6.0, 1.0])
        a, _ = FloorplanSA(widths, heights, n_moves=200, seed=9).run()
        b, _ = FloorplanSA(widths, heights, n_moves=200, seed=9).run()
        assert a.area == pytest.approx(b.area)

    def test_single_rect_rejected_gracefully(self):
        with pytest.raises(ValueError):
            BStarTree(np.zeros(0), np.zeros(0))


class TestBTreePlacer:
    def test_places_legally(self, small_design):
        result = BTreeFloorplanPlacer(
            n_moves=300, cell_place_iters=1, seed=0
        ).place(small_design)
        assert result.name == "btree"
        assert result.hpwl > 0
        assert macro_overlap_area(small_design) < 1e-9
        assert out_of_region_area(small_design) < 1e-6

    def test_preserves_macro_areas(self, small_design):
        areas_before = sorted(m.area for m in small_design.netlist.movable_macros)
        BTreeFloorplanPlacer(n_moves=300, cell_place_iters=1, seed=0).place(
            small_design
        )
        areas_after = sorted(m.area for m in small_design.netlist.movable_macros)
        np.testing.assert_allclose(areas_after, areas_before)

    def test_beats_random(self, small_design):
        import copy

        from repro.baselines import RandomPlacer

        d_rand = copy.deepcopy(small_design)
        rand = RandomPlacer(cell_place_iters=1, seed=5).place(d_rand).hpwl
        result = BTreeFloorplanPlacer(
            n_moves=600, cell_place_iters=1, seed=0
        ).place(small_design)
        assert result.hpwl < rand
