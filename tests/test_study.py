"""Study engine: spec expansion, warm-aware DAG orchestration, reports.

The orchestration tests drive :meth:`Study.step` cycles against a *fake
daemon* — a plain :class:`JobStore` over the real service directory
whose admission and terminal transitions the test scripts by hand — so
every scheduling decision (leader/follower release, quarantine
promotion, kill-and-resume idempotence) is exercised deterministically
without running a single placement flow.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.core.config import PlacerConfig, apply_overrides
from repro.netlist.bookshelf import write_design
from repro.netlist.generator import generate_design
from repro.runtime import config_fingerprint, pretraining_fingerprint
from repro.runtime.errors import UsageError
from repro.service.jobs import (
    DONE,
    QUARANTINED,
    JobSpec,
    JobStore,
    ServicePaths,
    write_json_atomic,
)
from repro.study import (
    Study,
    StudySpec,
    axis_sensitivity,
    build_report,
    pareto_front,
    render_report,
    save_report,
)
from repro.study.engine import PENDING, SUBMITTED
from repro.utils.events import read_jsonl
from tests.conftest import _SMALL_SPEC


@pytest.fixture(scope="module")
def aux_path(tmp_path_factory) -> str:
    design = generate_design(copy.deepcopy(_SMALL_SPEC))
    return write_design(design, str(tmp_path_factory.mktemp("aux")))


def _spec_payload(aux: str, **extra) -> dict:
    payload = {
        "name": "t",
        "aux": aux,
        "preset": "fast",
        "seeds": [5],
        "axes": [{"knob": "mcts.c_puct", "values": [0.5, 1.05, 2.5]}],
    }
    payload.update(extra)
    return payload


# ---------------------------------------------------------------------------
# spec expansion
# ---------------------------------------------------------------------------


class TestSpecExpansion:
    def test_grid_times_list_times_seeds(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(
            aux_path,
            seeds=[0, 1],
            axes=[
                {"knob": "mcts.c_puct", "values": [0.5, 2.5]},
                {"knob": "zeta",
                 "grid": {"start": 6, "stop": 10, "count": 3, "dtype": "int"}},
            ],
        ))
        points = spec.expand()
        assert len(points) == 2 * 3 * 2
        zetas = {dict(p.values)["zeta"] for p in points}
        assert zetas == {6, 8, 10}

    def test_log_grid_endpoints_exact(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(
            aux_path,
            axes=[{"knob": "learning_rate",
                   "grid": {"start": 1e-4, "stop": 1e-2, "count": 3,
                            "spacing": "log"}}],
        ))
        values = [dict(p.values)["learning_rate"] for p in spec.expand()]
        assert values[0] == 1e-4 and values[-1] == 1e-2
        assert values[1] == pytest.approx(1e-3)

    def test_deterministic_ordering_and_ids(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(aux_path, seeds=[0, 1]))
        a, b = spec.expand(), spec.expand()
        assert [p.point_id for p in a] == [p.point_id for p in b]
        assert [p.index for p in a] == list(range(len(a)))
        # seeds innermost: consecutive points share knob values
        assert a[0].values == a[1].values and a[0].seed != a[1].seed

    def test_constraints_exclude_require_and_ops(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(
            aux_path,
            axes=[
                {"knob": "mcts.c_puct", "values": [0.5, 1.05, 2.5]},
                {"knob": "zeta", "values": [6, 8]},
            ],
            constraints=[
                {"exclude": {"mcts.c_puct": 2.5, "zeta": 6}},
                {"require": {"mcts.c_puct": {"le": 2.5}}},
            ],
        ))
        assignments = [dict(p.values) for p in spec.expand()]
        assert len(assignments) == 5  # 6 raw - 1 excluded combo
        assert {"mcts.c_puct": 2.5, "zeta": 6} not in assignments

    def test_constraint_filtering_everything_errors(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(
            aux_path,
            constraints=[{"require": {"mcts.c_puct": {"gt": 100.0}}}],
        ))
        with pytest.raises(UsageError):
            spec.expand()

    def test_unknown_knob_rejected_at_parse(self, aux_path):
        with pytest.raises(UsageError):
            StudySpec.from_json(_spec_payload(
                aux_path, axes=[{"knob": "mcts.nope", "values": [1]}]
            ))

    def test_seed_axis_rejected(self, aux_path):
        with pytest.raises(UsageError):
            StudySpec.from_json(_spec_payload(
                aux_path, axes=[{"knob": "seed", "values": [1, 2]}]
            ))

    def test_expansion_cap(self, aux_path):
        with pytest.raises(UsageError):
            StudySpec.from_json(_spec_payload(
                aux_path,
                max_points=4,
                axes=[{"knob": "zeta", "values": [4, 6, 8, 10, 12]}],
            ))

    def test_toml_round_trip(self, aux_path, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            f'name = "toml-study"\naux = "{aux_path}"\npreset = "fast"\n'
            'seeds = [5]\n'
            '[[axes]]\nknob = "mcts.c_puct"\nvalues = [0.5, 2.5]\n'
        )
        spec = StudySpec.from_file(str(path))
        json_spec = StudySpec.from_json(spec.to_json())
        assert json_spec.fingerprint() == spec.fingerprint()
        assert len(spec.expand()) == 2

    def test_points_get_distinct_config_but_shared_pretrain_fp(
        self, aux_path
    ):
        spec = StudySpec.from_json(_spec_payload(aux_path))
        configs = [
            p.to_job_spec(spec).build_config() for p in spec.expand()
        ]
        assert len({config_fingerprint(c) for c in configs}) == 3
        assert len({pretraining_fingerprint(c) for c in configs}) == 1

    def test_pretrain_knob_sweep_splits_groups(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(
            aux_path, axes=[{"knob": "zeta", "values": [6, 8]}]
        ))
        configs = [
            p.to_job_spec(spec).build_config() for p in spec.expand()
        ]
        assert len({pretraining_fingerprint(c) for c in configs}) == 2


# ---------------------------------------------------------------------------
# orchestration against a scripted fake daemon
# ---------------------------------------------------------------------------


class FakeDaemon:
    """Admits inbox submissions into the real journal and finishes them
    only when the test says so — the minimal stand-in for the service."""

    def __init__(self, service_dir: str):
        self.paths = ServicePaths(service_dir).ensure()
        self.store = JobStore(self.paths.journal).load()

    def admit(self) -> list[str]:
        admitted = []
        for name in sorted(os.listdir(self.paths.inbox)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.paths.inbox, name)
            with open(path) as f:
                payload = json.load(f)
            job_id = payload["id"]
            if self.store.get(job_id) is None:
                self.store.add(
                    JobSpec.from_json(payload["spec"]), job_id=job_id
                )
                admitted.append(job_id)
            os.remove(path)
        return admitted

    def finish(self, job_id: str, state: str = DONE, hpwl: float = 100.0,
               warm: bool = False, seconds: float = 1.0) -> None:
        self.store.transition(
            job_id, state, hpwl=hpwl, warm_hit=warm, seconds=seconds
        )
        write_json_atomic(self.paths.result_file(job_id), {
            "id": job_id, "state": state, "hpwl": hpwl,
            "warm_hit": warm, "seconds": seconds,
            "error": (None if state == DONE
                      else {"kind": "Fault", "message": "injected"}),
        })
        run_dir = self.paths.run_dir(job_id)
        os.makedirs(run_dir, exist_ok=True)
        write_json_atomic(os.path.join(run_dir, "manifest.json"), {
            "stages": {"rl_training": {"completed": True, "warm": warm}},
        })


def _states(study: Study) -> dict[str, str]:
    return {
        pid: rec["state"] for pid, rec in study.journal_states().items()
    }


class TestOrchestration:
    def _study(self, aux_path, tmp_path, **extra) -> Study:
        spec = StudySpec.from_json(_spec_payload(aux_path, **extra))
        return Study.create(str(tmp_path / "study"), spec)

    def test_leader_submitted_first_then_followers(self, aux_path, tmp_path):
        study = self._study(aux_path, tmp_path)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        study.step(svc)
        leaders = daemon.admit()
        assert len(leaders) == 1  # one fingerprint group -> one cold leader
        study.step(svc)
        assert daemon.admit() == []  # leader in flight: followers held
        daemon.finish(leaders[0], hpwl=90.0)
        study.step(svc)
        followers = daemon.admit()
        assert len(followers) == 2  # warm artifacts ready: all released
        for job_id in followers:
            daemon.finish(job_id, hpwl=95.0, warm=True)
        status = study.run(svc, poll=0.0, max_seconds=0.0)
        assert status["complete"] and status["counts"][DONE] == 3

    def test_kill_and_resume_never_resubmits(self, aux_path, tmp_path):
        study = self._study(aux_path, tmp_path)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        study.step(svc)
        (leader,) = daemon.admit()
        daemon.finish(leader, hpwl=90.0)
        study.step(svc)  # releases + journals the two followers
        # "kill": drop every in-memory object; reload from disk only.
        study2 = Study.load(study.paths.root)
        inbox_before = sorted(os.listdir(daemon.paths.inbox))
        study2.step(svc)
        assert sorted(os.listdir(daemon.paths.inbox)) == inbox_before
        # journal has exactly one SUBMITTED record per point
        submits = [
            r["id"] for r in read_jsonl(study2.paths.journal)
            if r.get("state") == SUBMITTED
        ]
        assert sorted(submits) == sorted(set(submits))
        # the DONE leader stays DONE and was not resubmitted
        done = [
            pid for pid, st in _states(study2).items() if st == DONE
        ]
        assert len(done) == 1

    def test_crash_between_inbox_and_journal_is_repaired(
        self, aux_path, tmp_path
    ):
        study = self._study(aux_path, tmp_path)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        # Simulate the torn submit: inbox file landed (and was admitted)
        # but the study journal never recorded SUBMITTED.
        point = study.points[0]
        from repro.service.service import submit_job

        submit_job(svc, point.to_job_spec(study.spec),
                   job_id=point.job_id)
        daemon.admit()
        assert _states(study)[point.point_id] == PENDING
        study.step(svc)  # reconcile adopts, does not resubmit
        assert _states(study)[point.point_id] == SUBMITTED
        assert [n for n in os.listdir(daemon.paths.inbox)
                if n.endswith(".json")] == []

    def test_quarantined_leader_promotes_next_cold_leader(
        self, aux_path, tmp_path
    ):
        study = self._study(aux_path, tmp_path)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        study.step(svc)
        (leader,) = daemon.admit()
        daemon.finish(leader, state=QUARANTINED, hpwl=None)
        study.step(svc)
        promoted = daemon.admit()
        assert len(promoted) == 1 and promoted[0] != leader
        daemon.finish(promoted[0], hpwl=90.0)
        study.step(svc)
        last = daemon.admit()
        assert len(last) == 1
        daemon.finish(last[0], hpwl=92.0, warm=True)
        status = study.run(svc, poll=0.0, max_seconds=0.0)
        assert status["complete"]
        assert status["counts"][QUARANTINED] == 1
        assert status["counts"][DONE] == 2

    def test_spec_drift_guard(self, aux_path, tmp_path):
        study = self._study(aux_path, tmp_path)
        other = StudySpec.from_json(_spec_payload(aux_path, seeds=[7]))
        with pytest.raises(UsageError):
            Study.create(study.paths.root, other)

    def test_status_overlays_live_service_state(self, aux_path, tmp_path):
        study = self._study(aux_path, tmp_path)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        study.step(svc)
        (leader,) = daemon.admit()
        daemon.finish(leader, hpwl=88.0)
        # no further step(): the journal still says SUBMITTED, but the
        # live overlay sees DONE
        journal_only = study.status()
        live = study.status(service_dir=svc)
        assert journal_only["counts"][DONE] == 0
        assert live["counts"][DONE] == 1


# ---------------------------------------------------------------------------
# report math
# ---------------------------------------------------------------------------


def _row(hpwl, runtime, **values):
    return {
        "hpwl": hpwl,
        "runtime": runtime,
        "values": tuple(values.items()),
        "state": DONE,
    }


class TestReportMath:
    def test_pareto_front_drops_dominated(self):
        rows = [
            _row(100.0, 5.0),   # on front (best hpwl)
            _row(110.0, 2.0),   # on front (faster)
            _row(120.0, 3.0),   # dominated by the 110/2 row
            _row(105.0, 5.0),   # dominated by 100/5
            _row(150.0, 1.0),   # on front (fastest)
        ]
        assert pareto_front(rows) == [0, 1, 4]

    def test_pareto_ignores_missing_metrics(self):
        rows = [_row(None, 1.0), _row(100.0, None), _row(90.0, 2.0)]
        assert pareto_front(rows) == [2]

    def test_sensitivity_marginalizes_and_ranks(self, aux_path):
        spec = StudySpec.from_json(_spec_payload(
            aux_path,
            axes=[
                {"knob": "mcts.c_puct", "values": [0.5, 2.5]},
                {"knob": "zeta", "values": [6, 8]},
            ],
        ))
        rows = [
            _row(100.0, 1.0, **{"mcts.c_puct": 0.5, "zeta": 6}),
            _row(104.0, 1.0, **{"mcts.c_puct": 0.5, "zeta": 8}),
            _row(120.0, 1.0, **{"mcts.c_puct": 2.5, "zeta": 6}),
            _row(124.0, 1.0, **{"mcts.c_puct": 2.5, "zeta": 8}),
        ]
        sens = axis_sensitivity(spec.axes, rows)
        c = sens["mcts.c_puct"]
        assert c["best"] == 0.5
        assert c["spread"] == pytest.approx(20.0)
        by_value = {e["value"]: e for e in c["values"]}
        assert by_value[0.5]["mean"] == pytest.approx(102.0)
        assert by_value[0.5]["n"] == 2
        assert by_value[0.5]["low"] <= 102.0 <= by_value[0.5]["high"]
        assert sens["zeta"]["spread"] == pytest.approx(4.0)

    def test_build_report_and_records_round_trip(self, aux_path, tmp_path):
        spec = StudySpec.from_json(_spec_payload(aux_path))
        study = Study.create(str(tmp_path / "study"), spec)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        study.step(svc)
        (leader,) = daemon.admit()
        daemon.finish(leader, hpwl=90.0, seconds=4.0)
        study.step(svc)
        for i, job_id in enumerate(daemon.admit()):
            daemon.finish(job_id, hpwl=95.0 + i, warm=True, seconds=1.0)
        study.run(svc, poll=0.0, max_seconds=0.0)

        report = build_report(study, svc)
        assert report["complete"]
        assert report["pareto"] and report["pareto_front"]
        assert set(report["sensitivity"]) == {"mcts.c_puct"}
        assert report["sensitivity"]["mcts.c_puct"]["values"]
        assert report["one_cold_per_fingerprint"]
        (group,) = report["warm_groups"]
        assert group["cold_pretrains"] == 1 and group["warm_reuses"] == 2
        assert report["best"]["hpwl"] == 90.0
        assert report["failures"] == []
        assert "pareto front" in render_report(report)

        save_report(study, report)
        assert os.path.exists(study.paths.report)
        from repro.experiments.records import RecordStore

        store = RecordStore(study.paths.records)
        latest = store.load_latest(f"study-{spec.name}")
        assert latest is not None
        assert latest.data["spec_fingerprint"] == spec.fingerprint()
        assert latest.data["one_cold_per_fingerprint"] is True

    def test_report_flags_double_cold_pretrain(self, aux_path, tmp_path):
        spec = StudySpec.from_json(_spec_payload(aux_path))
        study = Study.create(str(tmp_path / "study"), spec)
        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        study.step(svc)
        (leader,) = daemon.admit()
        daemon.finish(leader, hpwl=90.0)
        study.step(svc)
        jobs = daemon.admit()
        daemon.finish(jobs[0], hpwl=95.0, warm=False)  # ran cold: a bug
        daemon.finish(jobs[1], hpwl=95.0, warm=True)
        study.run(svc, poll=0.0, max_seconds=0.0)
        report = build_report(study, svc)
        assert report["one_cold_per_fingerprint"] is False


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestCLI:
    def test_status_json(self, aux_path, tmp_path, capsys):
        from repro.cli import main
        from repro.service.service import submit_job

        svc = str(tmp_path / "svc")
        daemon = FakeDaemon(svc)
        job_id = submit_job(svc, JobSpec(aux=aux_path, preset="fast", seed=5))
        daemon.admit()
        daemon.finish(job_id, hpwl=77.0)
        assert main(["status", "--service-dir", svc, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"][DONE] == 1
        (job,) = doc["jobs"]
        assert job["id"] == job_id and job["hpwl"] == 77.0
        assert job["spec"]["aux"] == aux_path

    def test_submit_set_overrides(self, aux_path, tmp_path, capsys):
        from repro.cli import main

        svc = str(tmp_path / "svc")
        assert main([
            "submit", "--service-dir", svc, "--aux", aux_path,
            "--set", "mcts.c_puct=2.5", "--set", "zeta=10",
        ]) == 0
        job_id = capsys.readouterr().out.strip()
        daemon = FakeDaemon(svc)
        daemon.admit()
        config = daemon.store.get(job_id).spec.build_config()
        assert config.mcts.c_puct == 2.5 and config.zeta == 10

    def test_study_status_json(self, aux_path, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_spec_payload(aux_path)))
        study_dir = str(tmp_path / "study")
        assert main([
            "study", "status", "--study-dir", study_dir,
            "--spec", str(spec_path), "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 3 and doc["counts"][PENDING] == 3
        assert len(doc["groups"]) == 1


class TestOverrides:
    def test_apply_overrides_rejects_reserved(self):
        with pytest.raises(UsageError):
            apply_overrides(PlacerConfig.fast(), {"run_dir": "/tmp/x"})

    def test_apply_overrides_nested_and_coerced(self):
        config = apply_overrides(
            PlacerConfig.fast(),
            {"mcts.c_puct": 2.5, "zeta": 10.0, "mcts.leaf_batch": 4},
        )
        assert config.mcts.c_puct == 2.5
        assert config.zeta == 10 and isinstance(config.zeta, int)
        assert config.mcts.leaf_batch == 4

    def test_jobspec_overrides_round_trip_and_fingerprint(self, aux_path):
        spec = JobSpec(
            aux=aux_path, preset="fast", seed=5,
            overrides=(("mcts.c_puct", 2.5),),
        )
        replayed = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert replayed == spec
        assert (config_fingerprint(replayed.build_config())
                == config_fingerprint(spec.build_config()))
