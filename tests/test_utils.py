"""Utility tests: RNG plumbing, stopwatch, tolerant JSONL reading."""

import json
import time

import numpy as np
import pytest

from repro.utils.events import read_jsonl
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Stopwatch, timed


class TestReadJsonl:
    """The shared tolerant reader behind the event log, the terminal
    cache, and the service job journal."""

    def test_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(str(tmp_path / "nope.jsonl")) == []

    def test_skips_torn_and_non_dict_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"a": 1}) + "\n"
            + "[1, 2, 3]\n"          # valid JSON, wrong shape
            + '"just a string"\n'
            + json.dumps({"b": 2}) + "\n"
            + '{"torn": tr'           # killed mid-append
        )
        assert read_jsonl(str(path)) == [{"a": 1}, {"b": 2}]


class TestRng:
    def test_seed_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent_children(self):
        parent = ensure_rng(0)
        a, b = spawn_rng(parent, 2)
        assert a.random() != b.random()

    def test_spawn_deterministic(self):
        xs = [c.random() for c in spawn_rng(ensure_rng(5), 3)]
        ys = [c.random() for c in spawn_rng(ensure_rng(5), 3)]
        assert xs == ys

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)

    def test_spawn_zero_ok(self):
        assert spawn_rng(ensure_rng(0), 0) == []


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.measure("a"):
            time.sleep(0.01)
        with sw.measure("a"):
            time.sleep(0.01)
        assert sw.total("a") >= 0.02

    def test_unknown_stage_zero(self):
        assert Stopwatch().total("nope") == 0.0

    def test_overall_sums(self):
        sw = Stopwatch()
        with sw.measure("a"):
            pass
        with sw.measure("b"):
            pass
        assert sw.overall() == pytest.approx(sw.total("a") + sw.total("b"))

    def test_measure_survives_exception(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.measure("x"):
                raise RuntimeError("boom")
        assert sw.total("x") > 0

    def test_timed_elapsed(self):
        with timed() as elapsed:
            time.sleep(0.01)
            assert elapsed() >= 0.01
