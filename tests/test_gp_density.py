"""Electrostatic density-spreading tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.density import (
    ElectrostaticSpreader,
    field_from_potential,
    rasterize_density,
    solve_poisson_dct,
)
from repro.netlist.model import PlacementRegion

REGION = PlacementRegion(0, 0, 100, 100)


class TestRasterize:
    def test_mass_conserved(self):
        rng = np.random.default_rng(0)
        cx = rng.uniform(0, 100, 50)
        cy = rng.uniform(0, 100, 50)
        areas = rng.uniform(1, 5, 50)
        density = rasterize_density(cx, cy, areas, REGION, bins=8)
        assert density.sum() == pytest.approx(areas.sum())

    def test_point_lands_in_right_bin(self):
        density = rasterize_density(
            np.array([12.5]), np.array([87.5]), np.array([3.0]), REGION, bins=8
        )
        assert density[7, 1] == pytest.approx(3.0)

    def test_out_of_region_clipped(self):
        density = rasterize_density(
            np.array([-50.0]), np.array([500.0]), np.array([1.0]), REGION, bins=4
        )
        assert density.sum() == pytest.approx(1.0)
        assert density[3, 0] == pytest.approx(1.0)


class TestPoisson:
    def test_uniform_charge_flat_potential(self):
        psi = solve_poisson_dct(np.ones((8, 8)))
        assert np.allclose(psi, psi[0, 0], atol=1e-9)

    def test_laplacian_recovers_charge(self):
        """Apply the discrete 5-point Laplacian stencil to ψ on interior
        bins and compare against −ρ (zero-mean part)."""
        rng = np.random.default_rng(1)
        rho = rng.normal(size=(16, 16))
        rho -= rho.mean()
        psi = solve_poisson_dct(rho)
        # The DCT eigen-decomposition corresponds to a Neumann Laplacian;
        # verify the dominant interior behaviour: correlation with −ρ.
        lap = (
            np.roll(psi, 1, 0) + np.roll(psi, -1, 0)
            + np.roll(psi, 1, 1) + np.roll(psi, -1, 1) - 4 * psi
        )[2:-2, 2:-2]
        target = -rho[2:-2, 2:-2]
        corr = np.corrcoef(lap.ravel(), target.ravel())[0, 1]
        assert corr > 0.99

    def test_field_points_away_from_charge(self):
        """A positive charge blob at the center pushes outward."""
        rho = np.zeros((16, 16))
        rho[8, 8] = 10.0
        rho -= rho.mean()
        psi = solve_poisson_dct(rho)
        ex, ey = field_from_potential(psi)
        # Right of the blob the x-field is positive (pointing right).
        assert ex[8, 11] > 0
        assert ex[8, 5] < 0
        assert ey[11, 8] > 0
        assert ey[5, 8] < 0


class TestSpreader:
    def test_step_reduces_overflow(self):
        rng = np.random.default_rng(0)
        n = 200
        cx = rng.normal(50, 4, n).clip(0, 100)
        cy = rng.normal(50, 4, n).clip(0, 100)
        areas = np.full(n, 2.0)
        spreader = ElectrostaticSpreader(bins=8)
        before = spreader.overflow(cx, cy, areas, REGION)
        for _ in range(20):
            cx, cy = spreader.step(cx, cy, areas, REGION)
        after = spreader.overflow(cx, cy, areas, REGION)
        assert after < before

    def test_step_stays_in_region(self):
        rng = np.random.default_rng(1)
        cx = rng.uniform(0, 100, 50)
        cy = rng.uniform(0, 100, 50)
        areas = np.ones(50)
        spreader = ElectrostaticSpreader(bins=8)
        for _ in range(5):
            cx, cy = spreader.step(cx, cy, areas, REGION)
        assert (cx >= 0).all() and (cx <= 100).all()
        assert (cy >= 0).all() and (cy <= 100).all()

    def test_blockage_repels(self):
        """Cells initially on a blocked half should drift toward the free
        half."""
        blocked = np.zeros((8, 8))
        blocked[:, :4] = 1000.0  # left half blocked
        spreader = ElectrostaticSpreader(bins=8, blocked=blocked)
        rng = np.random.default_rng(2)
        n = 100
        cx = rng.uniform(0, 50, n)  # start on the blocked side
        cy = rng.uniform(0, 100, n)
        areas = np.ones(n)
        mean_before = cx.mean()
        for _ in range(25):
            cx, cy = spreader.step(cx, cy, areas, REGION)
        assert cx.mean() > mean_before

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_uniform_layout_is_stable(self, seed):
        """An already-uniform layout barely moves (field ≈ 0)."""
        bins = 4
        # One node per bin center.
        centers = (np.arange(bins) + 0.5) * (100.0 / bins)
        cx, cy = np.meshgrid(centers, centers)
        cx, cy = cx.ravel(), cy.ravel()
        areas = np.ones(len(cx))
        spreader = ElectrostaticSpreader(bins=bins, step_frac=0.5)
        nx, ny = spreader.step(cx, cy, areas, REGION)
        assert np.abs(nx - cx).max() < 100.0 / bins
        assert np.abs(ny - cy).max() < 100.0 / bins
