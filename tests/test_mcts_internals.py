"""White-box MCTS tests: backpropagation to root, tree reuse, priors."""

import numpy as np
import pytest

from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.mcts.node import Node
from repro.mcts.search import MCTSConfig, MCTSPlacer


@pytest.fixture
def placer(coarse_small):
    env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
    net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
    reward_fn = NormalizedReward(w_max=2000.0, w_min=500.0, w_avg=1200.0)
    return MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=6, seed=0))


class TestBackpropagationToRoot:
    def test_root_visits_grow_across_committed_steps(self, placer):
        """The paper's Fig. 3 shows values propagating to s_0 even when the
        target node is deep — root edge visits must keep increasing."""
        from repro.agent.state import StateBuilder

        env = placer.env
        root = Node(depth=0)
        builder = StateBuilder(env.coarse)
        placer._expand(root, builder, [])

        committed = []
        committed_path = []
        current = root

        # Step 0 explorations: root visits accumulate.
        for _ in range(4):
            placer._explore(root, committed, committed_path, current)
        visits_after_step0 = root.visit.sum()
        assert visits_after_step0 == 4

        idx = current.most_visited_index()
        committed_path.append((current, idx))
        committed.append(int(current.actions[idx]))
        current = current.child_for(idx)

        # Step 1 explorations from the committed child: each one must also
        # bump the root's committed edge (backprop to s_0).
        b = StateBuilder(env.coarse)
        for a in committed:
            b.apply(a)
        placer._expand(current, b, list(committed))
        for _ in range(3):
            placer._explore(root, committed, committed_path, current)
        assert root.visit.sum() == visits_after_step0 + 3

    def test_explored_values_accumulate_on_path(self, placer):
        from repro.agent.state import StateBuilder

        env = placer.env
        root = Node(depth=0)
        builder = StateBuilder(env.coarse)
        placer._expand(root, builder, [])
        for _ in range(5):
            placer._explore(root, [], [], root)
        assert root.visit.sum() == 5
        # W on visited edges is a sum of leaf values → Q is their mean.
        visited = root.visit > 0
        q = root.q_values()
        assert np.isfinite(q[visited]).all()


class TestPriors:
    def test_expansion_priors_normalized(self, placer):
        from repro.agent.state import StateBuilder

        root = Node(depth=0)
        builder = StateBuilder(placer.env.coarse)
        placer._expand(root, builder, [])
        assert root.prior.sum() == pytest.approx(1.0)
        assert (root.prior >= 0).all()
        assert len(root.actions) == len(root.prior)

    def test_actions_are_valid_anchors(self, placer):
        from repro.agent.state import StateBuilder

        root = Node(depth=0)
        builder = StateBuilder(placer.env.coarse)
        state = builder.observe()
        placer._expand(root, builder, [])
        mask = state.action_mask
        for a in root.actions:
            assert mask[a] > 0


class TestEvalDeterminism:
    def test_network_eval_is_batch_independent(self):
        """Eval-mode BN uses running stats: the same state must score the
        same whether evaluated alone or within any batch."""
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
        rng = np.random.default_rng(0)
        # Populate BN running stats.
        net.train(True)
        net.forward(rng.random((8, 3, 4, 4)))
        net.eval()
        x1 = rng.random((1, 3, 4, 4))
        x2 = np.concatenate([x1, rng.random((3, 3, 4, 4))])
        logits_alone, v_alone = net.forward(x1)
        logits_batch, v_batch = net.forward(x2)
        np.testing.assert_allclose(logits_alone[0], logits_batch[0], rtol=1e-12)
        np.testing.assert_allclose(v_alone[0], v_batch[0], rtol=1e-12)

    def test_repeated_evaluate_identical(self):
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
        s_p = np.random.default_rng(1).random((4, 4))
        s_a = np.ones((4, 4))
        p1, v1 = net.evaluate(s_p, s_a, 1, 5)
        p2, v2 = net.evaluate(s_p, s_a, 1, 5)
        np.testing.assert_allclose(p1, p2)
        assert v1 == v2


class TestPrincipalVariation:
    def test_pv_matches_committed_assignment(self, placer):
        from repro.mcts.search import principal_variation

        result = placer.run()
        pv = principal_variation(placer.last_root)
        assert pv == result.assignment

    def test_pv_of_unexpanded_root_is_empty(self):
        from repro.mcts.node import Node
        from repro.mcts.search import principal_variation

        assert principal_variation(Node(depth=0)) == []

    def test_pv_respects_max_depth(self, placer):
        from repro.mcts.search import principal_variation

        placer.run()
        pv = principal_variation(placer.last_root, max_depth=2)
        assert len(pv) <= 2
