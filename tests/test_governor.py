"""Resource governance: probes, the ENOSPC write guard, quota GC,
load shedding, and end-to-end degradation through a live daemon.

Unit layers exercise :mod:`repro.runtime.resources` and
:class:`repro.service.governor.ResourceGovernor` against fabricated
service dirs with a fake clock; the drill layer submits ENOSPC-faulted
jobs to a real daemon and asserts the documented contract: a transient
full disk degrades (emergency GC + retry) and the job still finishes
DONE, a persistent one quarantines the job with a structured
``ResourceExhaustedError`` — and the daemon survives both.
"""

from __future__ import annotations

import copy
import json
import os
import time

import pytest

from repro.netlist.bookshelf import write_design
from repro.netlist.generator import generate_design
from repro.runtime import faults, resources
from repro.runtime.errors import ResourceExhaustedError
from repro.runtime.faults import Fault, FaultPlan, inject
from repro.runtime.resources import (
    dir_usage_bytes,
    disk_free_bytes,
    guarded_write,
    install_guard,
    process_rss_bytes,
    uninstall_guard,
)
from repro.service.governor import ResourceGovernor, resource_report
from repro.service.jobs import (
    DONE,
    QUARANTINED,
    JobSpec,
    JobStore,
    ServicePaths,
)
from repro.service.metrics import ServiceMetrics
from repro.service.service import PlacementService, submit_job
from repro.service.warm import ARTIFACTS, WarmArtifactCache
from repro.utils.events import append_jsonl, read_jsonl
from tests.conftest import _SMALL_SPEC


@pytest.fixture(scope="module")
def aux_path(tmp_path_factory) -> str:
    design = generate_design(copy.deepcopy(_SMALL_SPEC))
    return write_design(design, str(tmp_path_factory.mktemp("aux")))


def _spec(aux: str, **overrides) -> JobSpec:
    base = dict(aux=aux, preset="fast", seed=5)
    base.update(overrides)
    return JobSpec(**base)


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------


class TestProbes:
    def test_dir_usage_counts_nested_files(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"x" * 100)
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.bin").write_bytes(b"y" * 50)
        assert dir_usage_bytes(str(tmp_path)) == 150

    def test_dir_usage_missing_is_zero_not_raise(self, tmp_path):
        assert dir_usage_bytes(str(tmp_path / "nope")) == 0

    def test_disk_free_positive_here_zero_when_unstatable(self, tmp_path):
        assert disk_free_bytes(str(tmp_path)) > 0
        assert disk_free_bytes(str(tmp_path / "nope" / "deeper")) == 0

    def test_rss_is_measurable(self):
        assert process_rss_bytes() > 0


# ---------------------------------------------------------------------------
# the ENOSPC write guard
# ---------------------------------------------------------------------------


class _Hooks:
    """Recording guard hooks for the unit drills."""

    def __init__(self, gc_raises: bool = False):
        self.degradations: list[dict] = []
        self.gc_calls = 0
        self._gc_raises = gc_raises

    def on_degradation(self, info: dict) -> None:
        self.degradations.append(info)

    def emergency_gc(self) -> None:
        self.gc_calls += 1
        if self._gc_raises:
            raise RuntimeError("GC itself exploded")


@pytest.fixture()
def hooks():
    h = _Hooks()
    handle = install_guard(h.on_degradation, h.emergency_gc)
    yield h
    uninstall_guard(handle)


class TestGuardedWrite:
    def test_clean_write_returns_value(self, hooks):
        assert guarded_write("t", lambda: 42) == 42
        assert hooks.degradations == [] and hooks.gc_calls == 0

    def test_transient_enospc_degrades_and_retries(self, hooks):
        with inject(FaultPlan(Fault("disk.enospc", at=1, count=1))):
            assert guarded_write("t", lambda: "ok") == "ok"
        assert hooks.gc_calls == 1
        [info] = hooks.degradations
        assert info["event"] == "degradation"
        assert info["site"] == "disk.enospc"
        assert info["label"] == "t"
        assert info["fallback"] == "emergency_gc"

    def test_persistent_enospc_raises_retryable(self, hooks):
        with inject(FaultPlan(Fault("disk.enospc", at=1, count=None))):
            with pytest.raises(ResourceExhaustedError) as exc_info:
                guarded_write("t", lambda: "never")
        err = exc_info.value
        assert err.exit_code == 19
        assert err.details["attempts"] == 2
        assert hooks.gc_calls == 1  # once, between the two attempts
        assert len(hooks.degradations) == 2

    def test_real_enospc_from_the_write_itself(self, hooks):
        import errno

        calls = [0]

        def write():
            calls[0] += 1
            if calls[0] == 1:
                raise OSError(errno.ENOSPC, "disk full")
            return "recovered"

        assert guarded_write("t", write) == "recovered"
        assert calls[0] == 2 and hooks.gc_calls == 1

    def test_other_oserror_passes_through_untouched(self, hooks):
        import errno

        def write():
            raise OSError(errno.EACCES, "permission")

        with pytest.raises(OSError) as exc_info:
            guarded_write("t", write)
        assert exc_info.value.errno == errno.EACCES
        assert hooks.degradations == [] and hooks.gc_calls == 0

    def test_hook_failures_never_mask_the_outcome(self):
        h = _Hooks(gc_raises=True)
        handle = install_guard(lambda info: 1 / 0, h.emergency_gc)
        try:
            with inject(FaultPlan(Fault("disk.enospc", at=1, count=1))):
                assert guarded_write("t", lambda: "ok") == "ok"
            assert h.gc_calls == 1
        finally:
            uninstall_guard(handle)

    def test_append_jsonl_enospc_drill(self, hooks, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with inject(FaultPlan(Fault("disk.enospc", at=1, count=1))):
            append_jsonl(path, {"k": 1})
        assert read_jsonl(path) == [{"k": 1}]
        with inject(FaultPlan(Fault("disk.enospc", at=1, count=None))):
            with pytest.raises(ResourceExhaustedError):
                append_jsonl(path, {"k": 2})
        assert read_jsonl(path) == [{"k": 1}]  # failed append left no tear

    def test_checkpoint_save_enospc_drill(self, hooks, tmp_path):
        from repro.runtime.checkpoint import RunDir

        run = RunDir(str(tmp_path / "run"))
        run.save_json("calibration.json", {"zeta": 4})
        with inject(FaultPlan(Fault("disk.enospc", at=1, count=None))):
            with pytest.raises(ResourceExhaustedError):
                run.save_json("calibration.json", {"zeta": 8})
        with open(os.path.join(run.path, "calibration.json")) as f:
            assert json.load(f) == {"zeta": 4}  # previous version intact

    def test_warm_store_enospc_drill(self, hooks, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        for name in ARTIFACTS:
            (run_dir / name).write_bytes(b"artifact")
        warm = WarmArtifactCache(str(tmp_path / "warm"))
        with inject(FaultPlan(Fault("disk.enospc", at=1, count=None))):
            with pytest.raises(ResourceExhaustedError):
                warm.store("key-a", str(run_dir))
        assert not warm.has("key-a")  # no half-written entry
        assert warm.store("key-a", str(run_dir))  # clean disk: succeeds
        assert warm.validate("key-a")


# ---------------------------------------------------------------------------
# governor policy against a fabricated service dir
# ---------------------------------------------------------------------------


class _Env:
    """One fabricated service dir + governor with a controllable clock."""

    def __init__(self, root: str, **kwargs):
        self.paths = ServicePaths(root).ensure()
        self.store = JobStore(self.paths.journal)
        self.store.load()
        self.metrics = ServiceMetrics()
        self.warm = WarmArtifactCache(self.paths.warm)
        self.now = time.time()
        self.governor = ResourceGovernor(
            self.paths, self.store, self.metrics, self.warm,
            clock=lambda: self.now, **kwargs,
        )

    def fill(self, name: str, size: int) -> str:
        path = os.path.join(self.paths.root, name)
        with open(path, "wb") as f:
            f.write(b"\0" * size)
        return path

    def terminal_job(self, state: str = DONE, rundir_bytes: int = 100):
        job = self.store.add(JobSpec(circuit="ibm01", seed=len(
            self.store.jobs())))
        self.store.transition(job.id, state, hpwl=1.0 if state == DONE
                              else None)
        run_dir = self.paths.run_dir(job.id)
        os.makedirs(run_dir, exist_ok=True)
        with open(os.path.join(run_dir, "artifact.bin"), "wb") as f:
            f.write(b"\0" * rundir_bytes)
        return job


class TestGovernorPolicy:
    def test_shedding_hysteresis(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), disk_quota_bytes=1000,
                   high_water=0.8, low_water=0.4)
        ballast = env.fill("ballast.bin", 900)
        env.governor.sample()
        assert env.governor.shedding
        assert "disk pressure" in env.governor.admission_blocked()
        assert env.metrics.gauge("resource_shedding") == 1
        assert env.metrics.counter("pressure_shed_engaged") == 1

        # between low and high water: the latch holds (no flapping)
        os.truncate(ballast, 600)
        env.governor.sample()
        assert env.governor.shedding

        os.truncate(ballast, 100)
        env.governor.sample()
        assert not env.governor.shedding
        assert env.governor.admission_blocked() is None
        assert env.metrics.counter("pressure_shed_released") == 1

    def test_memory_pressure_sheds_admission(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), mem_quota_bytes=1)
        env.governor.sample()
        assert env.governor.shedding
        assert "memory pressure" in env.governor.admission_blocked()

    def test_pressure_fault_sites_force_the_paths(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), disk_quota_bytes=1 << 30)
        with inject(FaultPlan(Fault("disk.pressure", at=1, count=1))):
            env.governor.sample()
        assert env.governor.shedding  # synthetic quota-full sample
        env.governor.sample()  # un-faulted: real usage is tiny again
        assert not env.governor.shedding

        with inject(FaultPlan(Fault("mem.pressure", at=1, count=1))):
            env.governor.sample()
        assert env.governor.shedding
        assert "memory pressure" in env.governor.admission_blocked()

    def test_dispatch_pauses_without_headroom_and_resumes(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), disk_quota_bytes=1000,
                   rundir_projection_bytes=300)
        ballast = env.fill("ballast.bin", 900)
        env.governor.sample()
        assert not env.governor.dispatch_ok()
        assert env.metrics.gauge("resource_dispatch_paused") == 1
        os.truncate(ballast, 100)
        env.governor.sample()
        assert env.governor.dispatch_ok()

    def test_poll_is_rate_limited(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), sample_interval=10.0)
        env.governor.poll()
        first = env.governor._last_sample_ts
        env.now += 5.0
        env.governor.poll()
        assert env.governor._last_sample_ts == first
        env.now += 6.0
        env.governor.poll()
        assert env.governor._last_sample_ts > first

    def test_retention_gc_keeps_newest_and_quarantined(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), retention_runs=1)
        old = env.terminal_job(DONE)
        kept_poison = env.terminal_job(QUARANTINED)
        newest = env.terminal_job(DONE)

        dry = env.governor.gc(dry_run=True)
        assert dry["run_dirs_deleted"] == 1
        assert os.path.isdir(env.paths.run_dir(old.id))  # dry run touched nothing

        summary = env.governor.gc()
        assert summary["run_dirs_deleted"] == 1
        assert summary["run_dir_bytes_freed"] >= 100
        assert not os.path.isdir(env.paths.run_dir(old.id))
        assert os.path.isdir(env.paths.run_dir(newest.id))
        assert os.path.isdir(env.paths.run_dir(kept_poison.id))

        # the deletion left a durable gc record and replay still works
        records = [r for r in read_jsonl(env.paths.journal)
                   if r.get("record") == "gc"]
        assert [r["id"] for r in records] == [old.id]
        assert records[0]["bytes_freed"] >= 100
        replayed = JobStore(env.paths.journal).load()
        assert replayed.get(old.id).state == DONE
        assert replayed.get(kept_poison.id).state == QUARANTINED

    def test_emergency_gc_collects_everything_but_quarantine(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), retention_runs=5)
        done = env.terminal_job(DONE)
        poison = env.terminal_job(QUARANTINED)
        env.governor.emergency_gc()
        assert env.metrics.counter("emergency_gc_runs") == 1
        assert not os.path.isdir(env.paths.run_dir(done.id))
        assert os.path.isdir(env.paths.run_dir(poison.id))

    def test_rejected_ttl_sweep_and_gauge(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), rejected_ttl=60.0)
        os.makedirs(env.paths.rejected, exist_ok=True)
        for name in ("bad.json", "bad.json.reason.json"):
            with open(os.path.join(env.paths.rejected, name), "w") as f:
                f.write("{}")
        env.governor.sample()
        assert env.metrics.gauge("rejected_pending") == 1

        assert env.governor.gc()["rejected_deleted"] == 0  # still fresh
        env.now += 61.0
        assert env.governor.gc()["rejected_deleted"] == 1
        assert os.listdir(env.paths.rejected) == []
        env.governor.sample()
        assert env.metrics.gauge("rejected_pending") == 0

    def test_warm_quota_evicts_lru(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), warm_quota_bytes=1)
        run_dir = tmp_path / "fakerun"
        run_dir.mkdir()
        for name in ARTIFACTS:
            (run_dir / name).write_bytes(b"artifact-bytes")
        env.warm.store("key-a", str(run_dir))
        assert env.warm.total_bytes() > 1
        summary = env.governor.gc()
        assert summary["warm_evicted"] == 1
        assert env.warm.total_bytes() == 0

    def test_sample_over_high_water_auto_collects(self, tmp_path):
        env = _Env(str(tmp_path / "svc"), disk_quota_bytes=1000,
                   high_water=0.5, retention_runs=0)
        env.terminal_job(DONE, rundir_bytes=900)
        env.governor.sample()
        assert env.metrics.counter("gc_runs") >= 1
        assert dir_usage_bytes(env.paths.runs) == 0

    def test_fleet_lease_gates_shared_file_compaction(self, tmp_path):
        class BusyLeases:
            def acquire(self, lease_id):
                return None

            def release(self, lease_id):
                raise AssertionError("never acquired")

        env = _Env(str(tmp_path / "svc"), terminal_cache_quota_bytes=1,
                   journal_quota_bytes=0)
        env.store.add(JobSpec(circuit="ibm01"))  # materialize the journal
        env.governor.leases = BusyLeases()
        with open(env.paths.terminal_cache, "w") as f:
            f.write(json.dumps({"fingerprint": "fp", "assignment": [1],
                                "wirelength": 1.0}) + "\n")
        summary = env.governor.gc()
        assert summary["terminal_cache"] == {"skipped": "lease_busy"}
        assert summary["journal"]["skipped"] == "fleet_live"

    def test_resource_report_and_quota_verdict(self, tmp_path):
        env = _Env(str(tmp_path / "svc"))
        env.terminal_job(DONE, rundir_bytes=500)
        report = resource_report(env.paths, disk_quota_bytes=100)
        assert report["total_bytes"] >= 500
        assert report["run_dirs"] == 1
        assert report["over_quota"] is True
        assert report["breakdown"]["runs"] >= 500


# ---------------------------------------------------------------------------
# end to end: ENOSPC against a live daemon
# ---------------------------------------------------------------------------


class TestServiceDegradation:
    def test_enospc_degrades_quarantines_and_daemon_survives(
        self, aux_path, tmp_path
    ):
        sdir = str(tmp_path / "svc")
        clean = submit_job(sdir, _spec(aux_path, seed=5))
        transient = submit_job(
            sdir,
            _spec(aux_path, seed=6, faults=(("disk.enospc", 1, 1),)),
        )
        poison = submit_job(
            sdir,
            _spec(aux_path, seed=7, faults=(("disk.enospc", 1, None),)),
        )
        service = PlacementService(
            sdir, workers=1, poll_interval=0.02, backoff_base=0.05,
        )
        try:
            service.run(drain=True, max_seconds=150.0)

            assert service.store.get(clean).state == DONE
            faulted = service.store.get(transient)
            assert faulted.state == DONE  # degradation, not failure
            assert service.metrics.counter("resource_degradations") >= 1
            assert service.metrics.counter("emergency_gc_runs") >= 1

            doomed = service.store.get(poison)
            assert doomed.state == QUARANTINED
            assert doomed.error["kind"] == "ResourceExhaustedError"
            assert doomed.attempts == service.supervisor.max_retries + 1

            # the daemon survived: another cycle and a fresh admission
            # still work on the same instance
            followup = submit_job(sdir, _spec(aux_path, seed=5))
            service.run(drain=True, max_seconds=150.0)
            assert service.store.get(followup).state == DONE
        finally:
            service.governor.uninstall()
