"""Bookshelf reader/writer tests, including a full round-trip."""

import os

import pytest

from repro.netlist.bookshelf import BookshelfError, read_aux, write_design
from repro.netlist.hpwl import hpwl
from repro.netlist.model import NodeKind


class TestRoundTrip:
    def test_write_then_read_preserves_structure(self, placed_design, tmp_path):
        aux = write_design(placed_design, str(tmp_path))
        loaded = read_aux(aux)
        assert len(loaded.netlist) == len(placed_design.netlist)
        assert len(loaded.netlist.nets) == len(placed_design.netlist.nets)

    def test_roundtrip_preserves_positions(self, placed_design, tmp_path):
        aux = write_design(placed_design, str(tmp_path))
        loaded = read_aux(aux)
        for node in placed_design.netlist:
            other = loaded.netlist[node.name]
            assert other.x == pytest.approx(node.x, abs=1e-4)
            assert other.y == pytest.approx(node.y, abs=1e-4)

    def test_roundtrip_preserves_hpwl(self, placed_design, tmp_path):
        aux = write_design(placed_design, str(tmp_path))
        loaded = read_aux(aux)
        assert hpwl(loaded.netlist) == pytest.approx(
            hpwl(placed_design.netlist), rel=1e-6
        )

    def test_roundtrip_preserves_fixedness(self, placed_design, tmp_path):
        aux = write_design(placed_design, str(tmp_path))
        loaded = read_aux(aux)
        for node in placed_design.netlist:
            assert loaded.netlist[node.name].fixed == node.fixed

    def test_macro_cell_classification_survives(self, placed_design, tmp_path):
        aux = write_design(placed_design, str(tmp_path))
        loaded = read_aux(aux)
        orig = placed_design.netlist.stats()
        got = loaded.netlist.stats()
        assert got["cells"] == orig["cells"]
        assert got["movable_macros"] == orig["movable_macros"]

    def test_files_created(self, placed_design, tmp_path):
        write_design(placed_design, str(tmp_path))
        base = placed_design.name
        for ext in (".aux", ".nodes", ".nets", ".pl", ".scl"):
            assert os.path.exists(tmp_path / f"{base}{ext}")


class TestMalformedInput:
    def test_missing_files_in_aux(self, tmp_path):
        aux = tmp_path / "x.aux"
        aux.write_text("RowBasedPlacement : x.nodes\n")
        with pytest.raises(BookshelfError, match="missing"):
            read_aux(str(aux))

    def test_empty_aux(self, tmp_path):
        aux = tmp_path / "x.aux"
        aux.write_text("RowBasedPlacement :\n")
        with pytest.raises(BookshelfError, match="empty"):
            read_aux(str(aux))

    def test_pin_outside_net_rejected(self, tmp_path, placed_design):
        write_design(placed_design, str(tmp_path))
        nets = tmp_path / f"{placed_design.name}.nets"
        nets.write_text("UCLA nets 1.0\n  o_c0 B : 0 0\n")
        with pytest.raises(BookshelfError, match="outside"):
            read_aux(str(tmp_path / f"{placed_design.name}.aux"))

    def test_scl_without_rows_rejected(self, tmp_path, placed_design):
        write_design(placed_design, str(tmp_path))
        scl = tmp_path / f"{placed_design.name}.scl"
        scl.write_text("UCLA scl 1.0\nNumRows : 0\n")
        with pytest.raises(BookshelfError, match="CoreRow"):
            read_aux(str(tmp_path / f"{placed_design.name}.aux"))


class TestClassificationRules:
    def test_small_terminal_becomes_pad(self, tmp_path):
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl d.scl\n"
        )
        (tmp_path / "d.nodes").write_text(
            "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\n"
            "  pad1 1 1 terminal\n  cell1 2 1\n"
        )
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
            "NetDegree : 2 n0\n  pad1 B : 0 0\n  cell1 B : 0 0\n"
        )
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\npad1 -2 5 : N /FIXED\ncell1 3 3 : N\n")
        (tmp_path / "d.scl").write_text(
            "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n"
            "  Coordinate : 0\n  Height : 1\n  Sitewidth : 1\n"
            "  SubrowOrigin : 0 NumSites : 20\nEnd\n"
        )
        design = read_aux(str(tmp_path / "d.aux"))
        assert design.netlist["pad1"].kind is NodeKind.PAD
        assert design.netlist["cell1"].kind is NodeKind.CELL

    def test_tall_movable_node_becomes_macro(self, tmp_path):
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl d.scl\n"
        )
        (tmp_path / "d.nodes").write_text(
            "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n"
            "  big 8 6\n  small 2 1\n"
        )
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
            "NetDegree : 2 n0\n  big B : 0 0\n  small B : 0 0\n"
        )
        (tmp_path / "d.pl").write_text("UCLA pl 1.0\nbig 0 0 : N\nsmall 9 9 : N\n")
        (tmp_path / "d.scl").write_text(
            "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n"
            "  Coordinate : 0\n  Height : 1\n  Sitewidth : 1\n"
            "  SubrowOrigin : 0 NumSites : 20\nEnd\n"
        )
        design = read_aux(str(tmp_path / "d.aux"))
        assert design.netlist["big"].kind is NodeKind.MACRO
        assert not design.netlist["big"].fixed
        assert design.netlist["small"].kind is NodeKind.CELL

    def test_region_derived_from_scl(self, tmp_path, placed_design):
        aux = write_design(placed_design, str(tmp_path))
        loaded = read_aux(aux)
        assert loaded.region.width == pytest.approx(
            placed_design.region.width, rel=0.05
        )
