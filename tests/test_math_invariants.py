"""Mathematical invariants of the numeric engines.

These are the checks a referee would ask for: convolution equivariance,
KKT optimality of the quadratic solves, and LP optimality certificates on
small instances with known answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.netmodel import build_quadratic_system
from repro.gp.quadratic import solve_system
from repro.legalize.lp_spread import AxisNet, lp_legalize_axis
from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import Cell, Net, Netlist, Pin
from repro.nn.layers import Conv2D


class TestConvolutionEquivariance:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100), st.integers(1, 2))
    def test_translation_equivariance(self, seed, shift):
        """Shifting the input shifts the output (interior, same padding)."""
        rng = np.random.default_rng(seed)
        conv = Conv2D(1, 1, kernel=3, bias=False, rng=seed)
        x = rng.normal(size=(1, 1, 10, 10))
        x_shift = np.roll(x, shift, axis=3)
        y = conv(x)
        y_shift = conv(x_shift)
        # Compare interiors away from the wrap-around boundary.
        np.testing.assert_allclose(
            y_shift[:, :, :, shift + 1 : -1],
            np.roll(y, shift, axis=3)[:, :, :, shift + 1 : -1],
            atol=1e-10,
        )


class TestQuadraticKKT:
    def _random_system(self, seed):
        rng = np.random.default_rng(seed)
        nl = Netlist()
        n_fixed, n_free = 3, 5
        for i in range(n_fixed):
            nl.add_node(
                Cell(f"f{i}", 0, 0, x=float(rng.uniform(0, 50)),
                     y=float(rng.uniform(0, 50)), fixed=True)
            )
        for i in range(n_free):
            nl.add_node(Cell(f"m{i}", 0, 0))
        names = nl.node_names
        for k in range(10):
            a, b = rng.choice(len(names), size=2, replace=False)
            nl.add_net(Net(f"n{k}", pins=[Pin(names[a]), Pin(names[b])],
                           weight=float(rng.uniform(0.5, 2.0))))
        return FlatNetlist(nl)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_solution_satisfies_normal_equations(self, seed):
        """At the solution, A x = b up to the regularization anchor."""
        flat = self._random_system(seed)
        system = build_quadratic_system(flat, ~flat.fixed)
        x, y = solve_system(system, center=(25.0, 25.0), regularization=1e-9)
        res_x = system.A @ x - system.bx
        res_y = system.A @ y - system.by
        # Residual equals the anchor pull eps*(x - center): tiny.
        assert np.abs(res_x).max() < 1e-6
        assert np.abs(res_y).max() < 1e-6

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_solution_is_local_minimum(self, seed):
        """Perturbing any coordinate cannot decrease the quadratic cost."""
        flat = self._random_system(seed)
        system = build_quadratic_system(flat, ~flat.fixed)
        x, _y = solve_system(system, center=(25.0, 25.0), regularization=1e-9)

        def cost(v):
            return 0.5 * float(v @ (system.A @ v)) - float(system.bx @ v)

        base = cost(x)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            d = rng.normal(size=len(x)) * 0.1
            assert cost(x + d) >= base - 1e-9


class TestLPOptimality:
    def test_known_two_rect_optimum(self):
        """One net pulling two chained rects left: optimum packs at lo."""
        sizes = np.array([2.0, 3.0])
        nets = [AxisNet(weight=1.0, pins=[(0, 1.0), (1, 1.5)],
                        fixed_positions=[0.0])]
        pos = lp_legalize_axis(sizes, [(0, 1)], 0.0, 100.0, nets)
        assert pos[0] == pytest.approx(0.0, abs=1e-6)
        assert pos[1] == pytest.approx(2.0, abs=1e-6)

    def test_lp_never_worse_than_packing(self):
        """The LP objective at its solution is ≤ the packed fallback's."""
        rng = np.random.default_rng(7)
        n = 5
        sizes = rng.uniform(1, 4, n)
        edges = [(i, i + 1) for i in range(n - 1)]
        nets = [
            AxisNet(weight=1.0, pins=[(i, sizes[i] / 2)],
                    fixed_positions=[float(rng.uniform(0, 30))])
            for i in range(n)
        ]

        def objective(pos):
            total = 0.0
            for net in nets:
                pts = [pos[i] + off for i, off in net.pins] + net.fixed_positions
                total += net.weight * (max(pts) - min(pts))
            return total

        lp_pos = lp_legalize_axis(sizes, edges, 0.0, 60.0, nets)
        from repro.legalize.lp_spread import pack_longest_path

        packed = pack_longest_path(sizes, edges, 0.0)
        assert objective(lp_pos) <= objective(packed) + 1e-6
