"""Hierarchy-path utility tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.netlist.hierarchy import (
    common_prefix,
    common_prefix_depth,
    depth,
    parent,
    split_path,
)

segment = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=4
)
path_st = st.lists(segment, min_size=0, max_size=5).map("/".join)


class TestSplitAndDepth:
    def test_split_simple(self):
        assert split_path("top/cpu/alu") == ["top", "cpu", "alu"]

    def test_split_ignores_empty_segments(self):
        assert split_path("/top//cpu/") == ["top", "cpu"]

    def test_depth(self):
        assert depth("a/b/c") == 3
        assert depth("") == 0

    def test_parent(self):
        assert parent("a/b/c") == "a/b"
        assert parent("a") == ""
        assert parent("") == ""


class TestCommonPrefix:
    def test_shared_prefix(self):
        assert common_prefix_depth("top/cpu/alu", "top/cpu/fpu") == 2
        assert common_prefix("top/cpu/alu", "top/cpu/fpu") == "top/cpu"

    def test_identical_paths(self):
        assert common_prefix_depth("a/b", "a/b") == 2

    def test_no_overlap(self):
        assert common_prefix_depth("a/b", "c/d") == 0
        assert common_prefix("a/b", "c/d") == ""

    def test_empty_path_shares_nothing(self):
        assert common_prefix_depth("", "a/b") == 0
        assert common_prefix_depth("a/b", "") == 0

    def test_prefix_relation(self):
        assert common_prefix_depth("a/b", "a/b/c") == 2

    @given(path_st, path_st)
    def test_symmetry(self, a, b):
        assert common_prefix_depth(a, b) == common_prefix_depth(b, a)

    @given(path_st)
    def test_self_depth(self, a):
        assert common_prefix_depth(a, a) == depth(a)

    @given(path_st, path_st)
    def test_bounded_by_min_depth(self, a, b):
        assert common_prefix_depth(a, b) <= min(depth(a), depth(b))

    @given(path_st, path_st)
    def test_common_prefix_is_prefix_of_both(self, a, b):
        cp = split_path(common_prefix(a, b))
        assert split_path(a)[: len(cp)] == cp
        assert split_path(b)[: len(cp)] == cp
