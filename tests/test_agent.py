"""Agent tests: state encoding (Eq. 4), network (Fig. 2), reward (Eq. 9),
Actor-Critic trainer (Eq. 5–8)."""

import numpy as np
import pytest

from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import (
    NegativeWirelength,
    NormalizedReward,
    calibrate_reward,
)
from repro.agent.state import StateBuilder, group_utilization
from repro.grid.plan import GridPlan
from repro.netlist.model import PlacementRegion


@pytest.fixture
def plan16() -> GridPlan:
    return GridPlan(PlacementRegion(0, 0, 160, 160), zeta=16)


class TestGroupUtilization:
    def test_full_grid(self, plan16):
        u = group_utilization(plan16, 10.0, 10.0)
        assert u.shape == (1, 1)
        assert u[0, 0] == pytest.approx(1.0)

    def test_half_grid(self, plan16):
        u = group_utilization(plan16, 5.0, 10.0)
        assert u[0, 0] == pytest.approx(0.5)

    def test_multi_grid_span(self, plan16):
        u = group_utilization(plan16, 15.0, 25.0)
        assert u.shape == (3, 2)
        assert u[0, 0] == pytest.approx(1.0)
        assert u[0, 1] == pytest.approx(0.5)  # 5/10 width remainder
        assert u[2, 0] == pytest.approx(0.5)  # 5/10 height remainder
        assert u[2, 1] == pytest.approx(0.25)

    def test_paper_figure1_example(self):
        """The Fig. 1 walk-through: V(g) = sqrt(0.4*0.5*0.7*0.75) ≈ 0.32."""
        v = np.sqrt((1 - 0.6) * (1 - 0.5) * (1 - 0.3) * (1 - 0.25))
        assert v == pytest.approx(0.32, abs=0.005)


class TestStateBuilder:
    def test_initial_state_empty(self, coarse_small):
        b = StateBuilder(coarse_small)
        state = b.observe()
        assert state.t == 0
        assert state.s_p.shape == (4, 4)
        # Preplaced macros pre-load the occupancy.
        preplaced = coarse_small.design.netlist.preplaced_macros
        if preplaced:
            assert state.s_p.sum() > 0

    def test_apply_increases_occupancy(self, coarse_small):
        b = StateBuilder(coarse_small)
        before = b.s_p().sum()
        b.apply(0)
        assert b.s_p().sum() > before
        assert b.t == 1

    def test_availability_drops_where_occupied(self, coarse_small):
        b = StateBuilder(coarse_small)
        s_a_before = b.availability(1)
        b.apply(0)  # place group 0 at anchor (0, 0)
        s_a_after = b.availability(1)
        assert s_a_after[0, 0] <= s_a_before[0, 0]

    def test_availability_zero_outside_span(self, coarse_small):
        b = StateBuilder(coarse_small)
        rows, cols = coarse_small.group_span(0)
        s_a = b.availability(0)
        zeta = coarse_small.plan.zeta
        if cols > 1:
            assert (s_a[:, zeta - cols + 1 :] == 0).all()
        if rows > 1:
            assert (s_a[zeta - rows + 1 :, :] == 0).all()

    def test_eq4_value_matches_manual(self, coarse_small):
        b = StateBuilder(coarse_small)
        idx = 0
        s_m = b.footprint(idx)
        s_p = b.s_p()
        rows, cols = s_m.shape
        n = rows * cols
        manual = np.prod(
            (1 - s_m) * (1 - s_p[0:rows, 0:cols])
        ) ** (1.0 / n)
        assert b.availability(idx)[0, 0] == pytest.approx(manual)

    def test_full_episode_reaches_done(self, coarse_small):
        b = StateBuilder(coarse_small)
        while not b.done():
            b.observe()
            b.apply(int(b.t) % coarse_small.plan.n_grids)
        assert b.t == b.n_steps
        with pytest.raises(IndexError):
            b.observe()

    def test_reset(self, coarse_small):
        b = StateBuilder(coarse_small)
        b.apply(0)
        b.reset()
        assert b.t == 0
        np.testing.assert_allclose(b.occupancy, b._base_occupancy)

    def test_action_mask_fallback(self, coarse_small):
        b = StateBuilder(coarse_small)
        # Saturate the die so availability vanishes everywhere.
        b.occupancy[...] = 1.0
        state = b.observe()
        assert not state.mask.any()
        assert state.action_mask.sum() > 0  # fallback engaged


class TestPolicyValueNet:
    @pytest.fixture
    def net(self) -> PolicyValueNet:
        return PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))

    def test_forward_shapes(self, net):
        x = np.random.default_rng(0).random((3, 3, 4, 4))
        logits, v = net.forward(x)
        assert logits.shape == (3, 16)
        assert v.shape == (3,)

    def test_value_bounded_when_tanh_enabled(self):
        net = PolicyValueNet(
            NetworkConfig(zeta=4, channels=4, res_blocks=1, value_tanh=True, seed=0)
        )
        x = np.random.default_rng(0).random((5, 3, 4, 4)) * 100
        _, v = net.forward(x)
        assert (np.abs(v) <= 1.0).all()

    def test_value_unbounded_by_default(self):
        assert not NetworkConfig().value_tanh

    def test_pack_planes_validates_shape(self, net):
        with pytest.raises(ValueError):
            net.pack_planes(np.zeros((5, 5)), np.zeros((5, 5)), 0, 1)

    def test_evaluate_returns_distribution(self, net):
        s_p = np.zeros((4, 4))
        s_a = np.ones((4, 4))
        probs, v = net.evaluate(s_p, s_a, 0, 3)
        assert probs.shape == (16,)
        assert probs.sum() == pytest.approx(1.0)
        assert np.isfinite(v)

    def test_evaluate_respects_mask(self, net):
        s_p = np.zeros((4, 4))
        s_a = np.zeros((4, 4))
        s_a[1, 2] = 0.5
        probs, _ = net.evaluate(s_p, s_a, 0, 3)
        assert probs[1 * 4 + 2] == pytest.approx(1.0)

    def test_evaluate_restores_training_mode(self, net):
        net.train(True)
        net.evaluate(np.zeros((4, 4)), np.ones((4, 4)), 0, 3)
        assert net.training

    def test_backward_runs_and_produces_grads(self, net):
        x = np.random.default_rng(1).random((2, 3, 4, 4))
        logits, v = net.forward(x)
        net.zero_grad()
        net.backward(np.ones_like(logits) / logits.size, np.ones_like(v))
        total = sum(float(np.abs(p.grad).sum()) for p in net.parameters())
        assert total > 0

    def test_paper_config_topology(self):
        cfg = NetworkConfig.paper()
        assert cfg.zeta == 16
        assert cfg.channels == 128
        assert cfg.res_blocks == 10

    def test_grad_check_through_both_heads(self):
        """Finite-difference check of d(loss)/d(params) through the full net.

        float64 explicitly: central differences at eps=1e-6 are meaningless
        at float32 precision.
        """
        net = PolicyValueNet(
            NetworkConfig(zeta=3, channels=3, res_blocks=1, seed=3, dtype="float64")
        )
        rng = np.random.default_rng(0)
        x = rng.random((2, 3, 3, 3))
        dlogits = rng.normal(size=(2, 9))
        dv = rng.normal(size=2)

        def loss():
            lg, vv = net.forward(x)
            return float((lg * dlogits).sum() + (vv * dv).sum())

        net.train(True)
        net.zero_grad()
        net.forward(x)
        net.backward(dlogits, dv)
        checked = 0
        for p in net.parameters():
            flat, gflat = p.data.ravel(), p.grad.ravel()
            k = int(rng.integers(0, len(flat)))
            if abs(gflat[k]) < 1e-8:
                continue
            eps = 1e-6
            orig = flat[k]
            flat[k] = orig + eps
            lp = loss()
            flat[k] = orig - eps
            lm = loss()
            flat[k] = orig
            num = (lp - lm) / (2 * eps)
            err = abs(num - gflat[k]) / (abs(num) + abs(gflat[k]) + 1e-8)
            assert err < 1e-4, f"{p.name}: {err:.2e}"
            checked += 1
        assert checked > 5


class TestRewards:
    def test_eq9_at_average_is_alpha(self):
        r = NormalizedReward(w_max=200.0, w_min=100.0, w_avg=150.0, alpha=0.75)
        assert r(150.0) == pytest.approx(0.75)

    def test_eq9_better_than_average_above_alpha(self):
        r = NormalizedReward(w_max=200.0, w_min=100.0, w_avg=150.0, alpha=0.75)
        assert r(100.0) > 0.75
        assert r(200.0) < 0.75

    def test_eq9_range_with_alpha_in_band(self):
        """With α ∈ [0.5, 1], rewards within the sampled W range stay ≥ ~0."""
        r = NormalizedReward(w_max=200.0, w_min=100.0, w_avg=150.0, alpha=0.5)
        assert r(200.0) >= 0.0
        assert r(100.0) <= 1.0

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError):
            NormalizedReward(w_max=1.0, w_min=2.0, w_avg=1.5)

    def test_degenerate_spread_guarded(self):
        r = NormalizedReward(w_max=5.0, w_min=5.0, w_avg=5.0, alpha=0.5)
        assert np.isfinite(r(5.0))

    def test_negative_wirelength(self):
        assert NegativeWirelength()(123.0) == -123.0
        assert NegativeWirelength(scale=0.01)(100.0) == pytest.approx(-1.0)

    def test_calibrate_reward_statistics(self):
        samples = iter([10.0, 20.0, 30.0])
        reward, seen = calibrate_reward(
            lambda g: next(samples), alpha=0.6, n_episodes=3, rng=0
        )
        assert reward.w_min == 10.0
        assert reward.w_max == 30.0
        assert reward.w_avg == pytest.approx(20.0)
        assert seen == [10.0, 20.0, 30.0]
