"""Legalization tests: sequence pair, LP overlap removal, full pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import macro_overlap_area, out_of_region_area
from repro.legalize.lp_spread import AxisNet, lp_legalize_axis, pack_longest_path
from repro.legalize.pipeline import MacroLegalizer, anchor_for_span, span_rect
from repro.legalize.sequence_pair import SequencePair, extract_sequence_pair

_PROPERTY_COARSE = None


def _coarse_for_property():
    """Session-cached coarse instance for hypothesis property tests."""
    global _PROPERTY_COARSE
    if _PROPERTY_COARSE is None:
        from repro.coarsen import coarsen_design
        from repro.gp.mixed_size import MixedSizePlacer
        from repro.grid.plan import GridPlan
        from repro.netlist.generator import GeneratorSpec, generate_design

        design = generate_design(
            GeneratorSpec(
                name="prop", n_movable_macros=6, n_preplaced_macros=1,
                n_pads=4, n_cells=30, n_nets=40, seed=11,
            )
        )
        MixedSizePlacer(n_iterations=2).place(design)
        _PROPERTY_COARSE = coarsen_design(design, GridPlan(design.region, zeta=4))
    return _PROPERTY_COARSE


class TestSequencePair:
    def test_permutation_validation(self):
        with pytest.raises(ValueError):
            SequencePair(s_plus=(0, 1), s_minus=(0, 0))

    def test_left_of_relation(self):
        # a at x=0, b at x=10, same y: a left of b.
        sp = extract_sequence_pair(
            np.array([0.0, 10.0]), np.array([0.0, 0.0]),
            np.array([2.0, 2.0]), np.array([2.0, 2.0]),
        )
        horizontal, vertical = sp.relations()
        assert (0, 1) in horizontal
        assert not vertical

    def test_above_relation(self):
        # a above b: vertical edge (b, a) meaning b below a.
        sp = extract_sequence_pair(
            np.array([0.0, 0.0]), np.array([10.0, 0.0]),
            np.array([2.0, 2.0]), np.array([2.0, 2.0]),
        )
        horizontal, vertical = sp.relations()
        assert (1, 0) in vertical
        assert not horizontal

    def test_every_pair_has_exactly_one_relation(self):
        rng = np.random.default_rng(0)
        n = 8
        xs, ys = rng.uniform(0, 100, n), rng.uniform(0, 100, n)
        ws, hs = rng.uniform(1, 5, n), rng.uniform(1, 5, n)
        sp = extract_sequence_pair(xs, ys, ws, hs)
        horizontal, vertical = sp.relations()
        seen = set()
        for a, b in horizontal:
            seen.add(frozenset((a, b)))
        for a, b in vertical:
            seen.add(frozenset((a, b)))
        assert len(seen) == n * (n - 1) // 2

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 10), st.integers(0, 1000))
    def test_extraction_always_valid_permutations(self, n, seed):
        rng = np.random.default_rng(seed)
        sp = extract_sequence_pair(
            rng.uniform(0, 50, n), rng.uniform(0, 50, n),
            rng.uniform(1, 5, n), rng.uniform(1, 5, n),
        )
        assert sorted(sp.s_plus) == list(range(n))
        assert sorted(sp.s_minus) == list(range(n))


class TestPackLongestPath:
    def test_simple_chain(self):
        sizes = np.array([3.0, 4.0, 5.0])
        pos = pack_longest_path(sizes, [(0, 1), (1, 2)], lo=10.0)
        np.testing.assert_allclose(pos, [10.0, 13.0, 17.0])

    def test_diamond(self):
        sizes = np.array([2.0, 5.0, 3.0, 1.0])
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        pos = pack_longest_path(sizes, edges, lo=0.0)
        assert pos[3] == pytest.approx(7.0)  # max(2+5, 2+3)

    def test_no_edges(self):
        pos = pack_longest_path(np.array([1.0, 2.0]), [], lo=5.0)
        np.testing.assert_allclose(pos, [5.0, 5.0])


class TestLPLegalizeAxis:
    def test_constraints_satisfied(self):
        sizes = np.array([3.0, 4.0])
        pos = lp_legalize_axis(sizes, [(0, 1)], 0.0, 20.0, [])
        assert pos[0] + 3.0 <= pos[1] + 1e-6
        assert pos[0] >= -1e-6 and pos[1] + 4.0 <= 20.0 + 1e-6

    def test_net_pull_toward_fixed_pin(self):
        sizes = np.array([2.0])
        nets = [AxisNet(weight=1.0, pins=[(0, 1.0)], fixed_positions=[15.0])]
        pos = lp_legalize_axis(sizes, [], 0.0, 20.0, nets)
        # Pin at pos+1 should reach 15 → pos = 14.
        assert pos[0] == pytest.approx(14.0, abs=1e-6)

    def test_two_rect_net_compacts(self):
        sizes = np.array([2.0, 2.0])
        nets = [AxisNet(weight=1.0, pins=[(0, 1.0), (1, 1.0)])]
        pos = lp_legalize_axis(sizes, [(0, 1)], 0.0, 100.0, nets)
        # Minimum span subject to no-overlap: rect1 exactly after rect0.
        assert pos[1] - pos[0] == pytest.approx(2.0, abs=1e-6)

    def test_weights_break_ties(self):
        sizes = np.array([2.0])
        nets = [
            AxisNet(weight=5.0, pins=[(0, 1.0)], fixed_positions=[0.0]),
            AxisNet(weight=1.0, pins=[(0, 1.0)], fixed_positions=[50.0]),
        ]
        pos = lp_legalize_axis(sizes, [], 0.0, 60.0, nets)
        assert pos[0] == pytest.approx(0.0, abs=1e-6)  # heavy net wins

    def test_infeasible_falls_back_to_packing(self):
        # Three width-5 rects chained in a width-8 window: impossible.
        sizes = np.array([5.0, 5.0, 5.0])
        pos = lp_legalize_axis(sizes, [(0, 1), (1, 2)], 0.0, 8.0, [])
        assert len(pos) == 3
        assert (np.diff(np.sort(pos)) >= 0).all()

    def test_empty_input(self):
        assert lp_legalize_axis(np.zeros(0), [], 0.0, 1.0, []).shape == (0,)


class TestSpanHelpers:
    def test_anchor_clamped(self, coarse_small):
        plan = coarse_small.plan
        rows, cols = 2, 2
        r, c = anchor_for_span(plan, plan.n_grids - 1, rows, cols)
        assert r + rows <= plan.zeta
        assert c + cols <= plan.zeta

    def test_span_rect_inside_region(self, coarse_small):
        for flat in [0, coarse_small.plan.n_grids // 2, coarse_small.plan.n_grids - 1]:
            rect = span_rect(coarse_small, 0, flat)
            region = coarse_small.design.region
            assert rect.x >= region.x - 1e-9
            assert rect.y >= region.y - 1e-9
            assert rect.x + rect.width <= region.x_max + 1e-9
            assert rect.y + rect.height <= region.y_max + 1e-9


class TestMacroLegalizerPipeline:
    def _legalize(self, coarse, seed=0):
        rng = np.random.default_rng(seed)
        assignment = list(
            rng.integers(0, coarse.plan.n_grids, size=coarse.n_macro_groups)
        )
        MacroLegalizer().legalize(coarse, assignment)
        return assignment

    def test_wrong_assignment_length_rejected(self, coarse_small):
        with pytest.raises(ValueError, match="assignment"):
            MacroLegalizer().legalize(coarse_small, [0])

    def test_no_overlap_after_legalization(self, coarse_small):
        self._legalize(coarse_small)
        assert macro_overlap_area(coarse_small.design) < 1e-9

    def test_macros_inside_region(self, coarse_small):
        self._legalize(coarse_small)
        assert out_of_region_area(coarse_small.design) < 1e-6

    def test_preplaced_macros_untouched(self, coarse_small):
        before = {
            m.name: (m.x, m.y)
            for m in coarse_small.design.netlist.preplaced_macros
        }
        self._legalize(coarse_small)
        for name, pos in before.items():
            node = coarse_small.design.netlist[name]
            assert (node.x, node.y) == pos

    def test_different_assignments_give_different_layouts(self, coarse_small):
        import copy

        c2 = copy.deepcopy(coarse_small)
        MacroLegalizer().legalize(
            coarse_small, [0] * coarse_small.n_macro_groups
        )
        far = coarse_small.plan.n_grids - 1
        MacroLegalizer().legalize(c2, [far] * c2.n_macro_groups)
        a = [(m.x, m.y) for m in coarse_small.design.netlist.movable_macros]
        b = [(m.x, m.y) for m in c2.design.netlist.movable_macros]
        assert a != b

    def test_repeated_legalization_consistent(self, coarse_small):
        """Re-legalizing the same assignment is deterministic episode-to-episode."""
        assignment = [1] * coarse_small.n_macro_groups
        MacroLegalizer().legalize(coarse_small, assignment)
        first = [
            (m.x, m.y) for m in coarse_small.design.netlist.movable_macros
        ]
        MacroLegalizer().legalize(coarse_small, assignment)
        second = [
            (m.x, m.y) for m in coarse_small.design.netlist.movable_macros
        ]
        for (ax, ay), (bx, by) in zip(first, second):
            assert ax == pytest.approx(bx, abs=1e-6)
            assert ay == pytest.approx(by, abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_legality_invariant_random_assignments(self, seed):
        """Property: any assignment legalizes to zero overlap, in region.

        Builds its own coarse instance (hypothesis forbids function-scoped
        fixtures inside @given).
        """
        import copy


        coarse = copy.deepcopy(_coarse_for_property())
        self._legalize(coarse, seed=seed)
        assert macro_overlap_area(coarse.design) < 1e-9
        assert out_of_region_area(coarse.design) < 1e-6
