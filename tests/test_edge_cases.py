"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.coarsen.cluster import CONNECTIVITY_DEGREE_CAP, greedy_cluster
from repro.coarsen.groups import Group, GroupKind
from repro.coarsen.scores import gamma_score
from repro.gp.netmodel import build_quadratic_system
from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import (
    Cell,
    Design,
    Macro,
    Net,
    Netlist,
    Pin,
    PlacementRegion,
)


def grp(gid, x, y, area=4.0):
    return Group(gid=gid, kind=GroupKind.MACRO, members=[f"n{gid}"],
                 area=area, cx=x, cy=y)


class TestClusteringEdgeCases:
    def test_empty_seed_list(self):
        out = greedy_cluster([], [], lambda a, b, w: 1.0, max_area=10.0,
                             threshold=0.0)
        assert out == []

    def test_single_seed(self):
        out = greedy_cluster([grp(0, 0, 0)], [], lambda a, b, w: 1.0,
                             max_area=10.0, threshold=0.0)
        assert len(out) == 1

    def test_no_spatial_candidates(self):
        """k_spatial=0 with no nets: nothing can merge."""
        seeds = [grp(i, i * 0.01, 0) for i in range(4)]
        out = greedy_cluster(seeds, [], lambda a, b, w: 100.0, max_area=1e9,
                             threshold=0.0, k_spatial=0)
        assert len(out) == 4

    def test_giant_net_ignored_for_connectivity(self):
        """Nets above the degree cap contribute no clustering signal."""
        n = CONNECTIVITY_DEGREE_CAP + 2
        seeds = [grp(i, 1000.0 * i, 0) for i in range(n)]
        giant = Net("g", pins=[Pin(f"n{i}") for i in range(n)], weight=100.0)
        score = lambda a, b, w: w  # connectivity-only  # noqa: E731
        out = greedy_cluster(seeds, [giant], score, max_area=1e9,
                             threshold=0.5, k_spatial=0)
        assert len(out) == n  # nothing merged

    def test_merge_chain_terminates(self):
        """Aggressive scores still terminate (merge count bounded)."""
        seeds = [grp(i, float(i), 0.0, area=1.0) for i in range(12)]
        out = greedy_cluster(seeds, [], lambda a, b, w: 1e9, max_area=1e9,
                             threshold=1.0, k_spatial=3)
        assert len(out) >= 1
        members = sorted(m for g in out for m in g.members)
        assert members == sorted(f"n{i}" for i in range(12))

    def test_gamma_with_empty_hierarchy(self):
        a, b = grp(0, 0, 0), grp(1, 5, 0)
        assert np.isfinite(gamma_score(a, b, 0.0))


class TestNetModelEdgeCases:
    def test_all_fixed_net_contributes_nothing(self):
        nl = Netlist()
        nl.add_node(Cell("a", 0, 0, fixed=True))
        nl.add_node(Cell("b", 0, 0, x=5, fixed=True))
        nl.add_node(Cell("free", 0, 0))
        nl.add_net(Net("n", pins=[Pin("a"), Pin("b")]))
        flat = FlatNetlist(nl)
        system = build_quadratic_system(flat, ~flat.fixed)
        assert system.A.nnz == 0

    def test_zero_weight_net_skipped(self):
        nl = Netlist()
        nl.add_node(Cell("a", 0, 0, fixed=True))
        nl.add_node(Cell("free", 0, 0))
        nl.add_net(Net("n", pins=[Pin("a"), Pin("free")], weight=0.0))
        flat = FlatNetlist(nl)
        system = build_quadratic_system(flat, ~flat.fixed)
        assert system.A.nnz == 0

    def test_star_node_count(self):
        nl = Netlist()
        for i in range(8):
            nl.add_node(Cell(f"c{i}", 0, 0, x=float(i)))
        nl.add_net(Net("big", pins=[Pin(f"c{i}") for i in range(8)]))
        flat = FlatNetlist(nl)
        system = build_quadratic_system(flat, ~flat.fixed, clique_threshold=4)
        assert system.n_star == 1
        assert system.A.shape == (9, 9)


class TestDegenerateDesigns:
    def test_flow_on_single_macro(self):
        from repro.core import MCTSGuidedPlacer, PlacerConfig

        nl = Netlist("one")
        nl.add_node(Macro("m", 4.0, 4.0, x=1.0, y=1.0))
        for i in range(6):
            nl.add_node(Cell(f"c{i}", 1.0, 1.0, x=float(i), y=float(i)))
        nl.add_net(Net("n0", pins=[Pin("m"), Pin("c0"), Pin("c1")]))
        nl.add_net(Net("n1", pins=[Pin("c2"), Pin("c3")]))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 20, 20))
        result = MCTSGuidedPlacer(PlacerConfig.fast(seed=0)).place(design)
        assert result.hpwl > 0
        assert len(result.assignment) >= 1

    def test_macro_larger_than_grid_cell(self):
        """A macro spanning many grid cells still places legally."""
        from repro.coarsen import coarsen_design
        from repro.env import MacroGroupPlacementEnv
        from repro.eval.metrics import macro_overlap_area
        from repro.gp.mixed_size import MixedSizePlacer
        from repro.grid.plan import GridPlan

        nl = Netlist("big")
        nl.add_node(Macro("huge", 30.0, 30.0, x=0.0, y=0.0))
        nl.add_node(Macro("small", 5.0, 5.0, x=40.0, y=40.0))
        for i in range(10):
            nl.add_node(Cell(f"c{i}", 1.0, 1.0, x=float(i * 3), y=float(i * 3)))
        nl.add_net(Net("n", pins=[Pin("huge"), Pin("small"), Pin("c0")]))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 64, 64))
        MixedSizePlacer(n_iterations=2).place(design)
        coarse = coarsen_design(design, GridPlan(design.region, zeta=8))
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        env.evaluate_assignment([0] * env.n_steps)
        assert macro_overlap_area(design) < 1e-9
        assert design.region.contains(nl["huge"], tol=1e-6)

    def test_design_with_no_nets(self):
        from repro.gp.mixed_size import MixedSizePlacer

        nl = Netlist("disconnected")
        nl.add_node(Macro("m", 3.0, 3.0))
        for i in range(4):
            nl.add_node(Cell(f"c{i}", 1.0, 1.0))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 10, 10))
        result = MixedSizePlacer(n_iterations=2).place(design)
        assert result.hpwl == 0.0
        assert design.region.contains(nl["m"], tol=1e-6)

    def test_environment_saturated_die(self):
        """When availability vanishes everywhere the fallback mask keeps
        episodes completable."""
        from repro.coarsen import coarsen_design
        from repro.env import MacroGroupPlacementEnv
        from repro.gp.mixed_size import MixedSizePlacer
        from repro.grid.plan import GridPlan

        nl = Netlist("tight")
        # Macros covering most of the die: availability goes to ~0 fast.
        for i in range(4):
            nl.add_node(Macro(f"m{i}", 9.0, 9.0, x=float(i), y=float(i)))
        for i in range(8):
            nl.add_node(Cell(f"c{i}", 1.0, 1.0, x=float(i), y=float(i)))
        nl.add_net(Net("n", pins=[Pin("m0"), Pin("m1"), Pin("c0")]))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 20, 20))
        MixedSizePlacer(n_iterations=2).place(design)
        coarse = coarsen_design(design, GridPlan(design.region, zeta=4))
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        record = env.play_random_episode(rng=0)
        assert len(record.actions) == env.n_steps
        assert np.isfinite(record.wirelength)
