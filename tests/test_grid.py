"""GridPlan tests (ζ×ζ partition, Sec. II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.plan import GridPlan
from repro.netlist.model import Macro, PlacementRegion


@pytest.fixture
def plan() -> GridPlan:
    return GridPlan(PlacementRegion(0, 0, 160, 160), zeta=16)


class TestGeometry:
    def test_cell_dimensions(self, plan):
        assert plan.cell_width == 10.0
        assert plan.cell_height == 10.0
        assert plan.cell_area == 100.0
        assert plan.n_grids == 256

    def test_rejects_bad_zeta(self):
        with pytest.raises(ValueError):
            GridPlan(PlacementRegion(), zeta=0)

    def test_flat_index_roundtrip(self, plan):
        for flat in [0, 17, 255]:
            r, c = plan.row_col(flat)
            assert plan.flat_index(r, c) == flat

    def test_flat_index_bounds(self, plan):
        with pytest.raises(IndexError):
            plan.flat_index(16, 0)
        with pytest.raises(IndexError):
            plan.row_col(256)

    def test_origin_and_center(self, plan):
        assert plan.origin(0, 0) == (0.0, 0.0)
        assert plan.center(0, 0) == (5.0, 5.0)
        assert plan.origin(2, 3) == (30.0, 20.0)  # (row→y, col→x)

    def test_bounds(self, plan):
        assert plan.bounds(1, 1) == (10.0, 10.0, 20.0, 20.0)

    def test_grid_of_point(self, plan):
        assert plan.grid_of_point(5.0, 5.0) == (0, 0)
        assert plan.grid_of_point(15.0, 25.0) == (2, 1)

    def test_grid_of_point_clamps(self, plan):
        assert plan.grid_of_point(-10.0, -10.0) == (0, 0)
        assert plan.grid_of_point(1e6, 1e6) == (15, 15)

    def test_offset_region(self):
        plan = GridPlan(PlacementRegion(100, 200, 40, 80), zeta=4)
        assert plan.origin(0, 0) == (100.0, 200.0)
        assert plan.grid_of_point(105.0, 205.0) == (0, 0)

    @given(st.integers(0, 255))
    def test_row_col_inverse_property(self, flat):
        plan = GridPlan(PlacementRegion(0, 0, 160, 160), zeta=16)
        r, c = plan.row_col(flat)
        assert plan.flat_index(r, c) == flat


class TestSpan:
    def test_sub_grid_rectangle_spans_one(self, plan):
        assert plan.span(9.0, 9.0) == (1, 1)

    def test_exact_grid_spans_one(self, plan):
        assert plan.span(10.0, 10.0) == (1, 1)

    def test_slight_overflow_spans_two(self, plan):
        assert plan.span(10.5, 9.0) == (1, 2)

    def test_large_rectangle(self, plan):
        assert plan.span(25.0, 35.0) == (4, 3)

    def test_span_capped_at_zeta(self, plan):
        assert plan.span(1e6, 1e6) == (16, 16)

    def test_degenerate_rectangle(self, plan):
        assert plan.span(0.0, 0.0) == (1, 1)


class TestOccupancy:
    def test_single_cell_full(self, plan):
        occ = plan.occupancy([Macro("m", 10.0, 10.0, x=0.0, y=0.0)])
        assert occ[0, 0] == pytest.approx(1.0)
        assert occ.sum() == pytest.approx(1.0)

    def test_partial_coverage(self, plan):
        occ = plan.occupancy([Macro("m", 5.0, 10.0, x=0.0, y=0.0)])
        assert occ[0, 0] == pytest.approx(0.5)

    def test_straddling_rectangle(self, plan):
        occ = plan.occupancy([Macro("m", 20.0, 10.0, x=5.0, y=0.0)])
        assert occ[0, 0] == pytest.approx(0.5)
        assert occ[0, 1] == pytest.approx(1.0)
        assert occ[0, 2] == pytest.approx(0.5)

    def test_outside_region_ignored(self, plan):
        occ = plan.occupancy([Macro("m", 10.0, 10.0, x=-100.0, y=-100.0)])
        assert occ.sum() == 0.0

    def test_total_area_conserved_inside(self, plan):
        nodes = [
            Macro("a", 13.0, 27.0, x=3.0, y=8.0),
            Macro("b", 8.0, 5.0, x=100.0, y=100.0),
        ]
        occ = plan.occupancy(nodes)
        total_area = occ.sum() * plan.cell_area
        assert total_area == pytest.approx(sum(n.area for n in nodes))

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(1.0, 60.0),
        st.floats(1.0, 60.0),
        st.floats(0.0, 100.0),
        st.floats(0.0, 100.0),
    )
    def test_occupancy_conservation_property(self, w, h, x, y):
        """Rasterized area equals geometric area for fully-inside nodes."""
        plan = GridPlan(PlacementRegion(0, 0, 160, 160), zeta=16)
        occ = plan.occupancy([Macro("m", w, h, x=x, y=y)])
        assert occ.sum() * plan.cell_area == pytest.approx(w * h, rel=1e-9)
