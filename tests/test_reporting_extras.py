"""Additional reporting/infrastructure tests written against observed
behaviours: comparison-table formatting details, stopwatch nesting, and
config immutability."""

import dataclasses

import pytest

from repro.core.config import PlacerConfig
from repro.eval.report import ComparisonTable
from repro.utils.timer import Stopwatch


class TestComparisonTableFormatting:
    def test_value_format_respected(self):
        t = ComparisonTable(methods=["a"], reference="a")
        t.add("c", "a", 3.14159)
        text = t.render(value_format="{:.3f}")
        assert "3.142" in text

    def test_column_order_is_method_order(self):
        t = ComparisonTable(methods=["z", "a"], reference="a")
        t.add("c", "z", 1.0)
        t.add("c", "a", 2.0)
        header = t.render().splitlines()[0]
        assert header.index("z") < header.index("a")

    def test_row_order_is_insertion_order(self):
        t = ComparisonTable(methods=["a"], reference="a")
        t.add("late", "a", 1.0)
        t.add("early", "a", 1.0)
        lines = t.render().splitlines()
        assert lines.index(next(ln for ln in lines if ln.startswith("late"))) < \
            lines.index(next(ln for ln in lines if ln.startswith("early")))

    def test_zero_reference_skipped_in_normalization(self):
        t = ComparisonTable(methods=["a", "r"], reference="r")
        t.add("c1", "r", 0.0)  # degenerate reference
        t.add("c1", "a", 5.0)
        t.add("c2", "r", 1.0)
        t.add("c2", "a", 2.0)
        assert t.normalized()["a"] == pytest.approx(2.0)


class TestStopwatchNesting:
    def test_distinct_stages_tracked_separately(self):
        sw = Stopwatch()
        with sw.measure("outer"):
            with sw.measure("inner"):
                pass
        assert sw.total("outer") >= sw.total("inner")
        assert set(sw.totals) == {"outer", "inner"}


class TestConfigImmutability:
    def test_placer_config_is_frozen(self):
        cfg = PlacerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.zeta = 4  # type: ignore[misc]

    def test_replace_produces_new_config(self):
        cfg = PlacerConfig()
        cfg2 = dataclasses.replace(cfg, episodes=7)
        assert cfg.episodes != 7
        assert cfg2.episodes == 7

    def test_presets_are_independent(self):
        a = PlacerConfig.fast(seed=1)
        b = PlacerConfig.fast(seed=2)
        assert a.seed != b.seed
        assert a.network.seed != b.network.seed
