"""Baseline placer tests: each must produce a legal, measured placement."""

import copy

import numpy as np
import pytest

from repro.baselines import (
    CTStylePlacer,
    MacroEvalModel,
    RandomPlacer,
    RePlAceLikePlacer,
    SAPlacer,
    SEPlacer,
    WiremaskPlacer,
)
from repro.baselines.common import finalize_design
from repro.eval.metrics import macro_overlap_area, out_of_region_area


FAST_BASELINES = [
    ("random", lambda: RandomPlacer(cell_place_iters=1, seed=0)),
    ("sa", lambda: SAPlacer(n_moves=150, cell_place_iters=1, seed=0)),
    ("se", lambda: SEPlacer(generations=3, lattice=6, cell_place_iters=1, seed=0)),
    (
        "maskplace",
        lambda: WiremaskPlacer(bins=6, rollouts=2, cell_place_iters=1, seed=0),
    ),
    (
        "replace",
        lambda: RePlAceLikePlacer(gp_iterations=3, refine_moves=100,
                                  cell_place_iters=1, seed=0),
    ),
]


class TestCommonContract:
    @pytest.mark.parametrize("name,factory", FAST_BASELINES)
    def test_result_fields(self, small_design, name, factory):
        result = factory().place(small_design)
        assert result.name == name
        assert result.hpwl > 0
        assert result.runtime >= 0

    @pytest.mark.parametrize("name,factory", FAST_BASELINES)
    def test_placement_legal(self, small_design, name, factory):
        factory().place(small_design)
        assert macro_overlap_area(small_design) < 1e-9
        assert out_of_region_area(small_design) < 1e-6

    @pytest.mark.parametrize("name,factory", FAST_BASELINES)
    def test_preplaced_macros_untouched(self, small_design, name, factory):
        before = {
            m.name: (m.x, m.y)
            for m in small_design.netlist.preplaced_macros
        }
        factory().place(small_design)
        for mname, pos in before.items():
            node = small_design.netlist[mname]
            assert (node.x, node.y) == pos

    @pytest.mark.parametrize("name,factory", FAST_BASELINES)
    def test_deterministic(self, small_design, name, factory):
        d2 = copy.deepcopy(small_design)
        r1 = factory().place(small_design)
        r2 = factory().place(d2)
        assert r1.hpwl == pytest.approx(r2.hpwl)


class TestQualityOrdering:
    def test_search_baselines_beat_random(self, small_design):
        """SA/SE/wiremask must clearly beat random placement."""
        d_rand = copy.deepcopy(small_design)
        rand = RandomPlacer(cell_place_iters=1, seed=3).place(d_rand).hpwl
        for factory in [
            lambda: SAPlacer(n_moves=400, cell_place_iters=1, seed=1),
            lambda: SEPlacer(generations=5, cell_place_iters=1, seed=1),
            lambda: WiremaskPlacer(bins=8, rollouts=4, cell_place_iters=1, seed=1),
        ]:
            d = copy.deepcopy(small_design)
            assert factory().place(d).hpwl < rand


class TestMacroEvalModel:
    def test_hpwl_responds_to_macro_moves(self, placed_design):
        model = MacroEvalModel(placed_design)
        cx, cy = model.current_centers()
        base = model.hpwl(cx, cy)
        moved = model.hpwl(cx + 50.0, cy)
        assert moved != pytest.approx(base, rel=1e-6)

    def test_overlap_penalty_detects_collision(self, placed_design):
        model = MacroEvalModel(placed_design)
        cx, cy = model.current_centers()
        assert model.overlap_penalty(cx, cy) < 1e-9  # placed = legal
        stacked = np.full_like(cx, float(cx[0]))
        assert model.overlap_penalty(stacked, np.full_like(cy, float(cy[0]))) > 0

    def test_write_centers_mutates_design(self, placed_design):
        model = MacroEvalModel(placed_design)
        cx, cy = model.current_centers()
        model.write_centers(cx + 1.0, cy + 2.0)
        name = model.flat.names[int(model.macro_idx[0])]
        node = placed_design.netlist[name]
        assert node.cx == pytest.approx(float(cx[0]) + 1.0)

    def test_finalize_reports_current_hpwl(self, placed_design):
        wl = finalize_design(placed_design, cell_place_iters=1)
        from repro.netlist.hpwl import hpwl as hp

        assert wl == pytest.approx(hp(placed_design.netlist), rel=1e-9)


class TestCTStyle:
    def test_ct_runs_and_is_legal(self, small_design):
        from repro.agent.network import NetworkConfig

        placer = CTStylePlacer(
            zeta=4,
            network=NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0),
            episodes=4,
            update_every=2,
            cell_place_iters=1,
            seed=0,
        )
        result = placer.place(small_design)
        assert result.name == "ct"
        assert result.hpwl > 0
        assert macro_overlap_area(small_design) < 1e-9

    def test_ct_uses_singleton_macro_groups(self, placed_design):
        from repro.baselines.ct_placer import singleton_macro_coarsening
        from repro.grid.plan import GridPlan

        plan = GridPlan(placed_design.region, zeta=4)
        coarse = singleton_macro_coarsening(placed_design, plan)
        assert coarse.n_macro_groups == len(
            placed_design.netlist.movable_macros
        )
        assert all(len(g.members) == 1 for g in coarse.macro_groups)

    def test_ct_groups_sorted_by_area(self, placed_design):
        from repro.baselines.ct_placer import singleton_macro_coarsening
        from repro.grid.plan import GridPlan

        coarse = singleton_macro_coarsening(
            placed_design, GridPlan(placed_design.region, zeta=4)
        )
        areas = [g.area for g in coarse.macro_groups]
        assert areas == sorted(areas, reverse=True)


class TestSARotation:
    def test_rotation_preserves_macro_areas(self, small_design):
        areas_before = sorted(m.area for m in small_design.netlist.movable_macros)
        SAPlacer(n_moves=300, allow_rotation=True, rotate_prob=0.5,
                 cell_place_iters=1, seed=2).place(small_design)
        areas_after = sorted(m.area for m in small_design.netlist.movable_macros)
        for a, b in zip(areas_before, areas_after):
            assert a == pytest.approx(b)

    def test_rotation_keeps_placement_legal(self, small_design):
        SAPlacer(n_moves=300, allow_rotation=True, rotate_prob=0.5,
                 cell_place_iters=1, seed=2).place(small_design)
        assert macro_overlap_area(small_design) < 1e-9
        assert out_of_region_area(small_design) < 1e-6

    def test_rotation_deterministic(self, small_design):
        d2 = copy.deepcopy(small_design)
        kw = dict(n_moves=200, allow_rotation=True, rotate_prob=0.5,
                  cell_place_iters=1, seed=7)
        r1 = SAPlacer(**kw).place(small_design)
        r2 = SAPlacer(**kw).place(d2)
        assert r1.hpwl == pytest.approx(r2.hpwl)


class TestElectrostaticVariant:
    def test_mixed_size_electrostatic_legal(self, small_design):
        from repro.gp.mixed_size import MixedSizePlacer

        result = MixedSizePlacer(
            n_iterations=3, spreader="electrostatic"
        ).place(small_design)
        assert result.hpwl > 0
        assert macro_overlap_area(small_design) < 1e-9

    def test_invalid_spreader_rejected(self):
        from repro.gp.mixed_size import MixedSizePlacer

        with pytest.raises(ValueError):
            MixedSizePlacer(spreader="magic")

    def test_replace_like_electrostatic(self, small_design):
        result = RePlAceLikePlacer(
            gp_iterations=3, refine_moves=100, cell_place_iters=1,
            electrostatic=True, seed=0,
        ).place(small_design)
        assert result.hpwl > 0
        assert macro_overlap_area(small_design) < 1e-9
