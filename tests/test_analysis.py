"""Analysis/statistics helper tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bootstrap_mean_ci,
    converged_at,
    moving_average,
    normalized_ratios,
    rank_correlation,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        v = [1.0, 5.0, 2.0]
        np.testing.assert_allclose(moving_average(v, 1), v)

    def test_constant_input(self):
        np.testing.assert_allclose(moving_average([3.0] * 10, 4), 3.0)

    def test_known_values(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_empty(self):
        assert moving_average([], 3).size == 0

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30),
           st.integers(1, 10))
    @settings(max_examples=40)
    def test_bounded_by_input_range(self, values, window):
        out = moving_average(values, window)
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9


class TestBootstrap:
    def test_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, 100)
        ci = bootstrap_mean_ci(sample, rng=1)
        assert ci.low <= ci.mean <= ci.high
        assert ci.contains(ci.mean)

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = bootstrap_mean_ci(rng.normal(0, 1, 10), rng=1)
        large = bootstrap_mean_ci(rng.normal(0, 1, 1000), rng=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_deterministic_given_seed(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean_ci(sample, rng=5)
        b = bootstrap_mean_ci(sample, rng=5)
        assert (a.low, a.high) == (b.low, b.high)


class TestConvergence:
    def test_converging_curve_detected(self):
        curve = [0.0] * 50 + [1.0] * 100
        idx = converged_at(curve, window=10, tolerance=0.05)
        assert idx is not None
        assert 40 <= idx <= 80

    def test_flat_noise_converges_immediately_or_never(self):
        rng = np.random.default_rng(0)
        curve = list(rng.normal(1.0, 0.001, 100))
        idx = converged_at(curve, window=10)
        assert idx is not None and idx < 20

    def test_diverging_curve_not_converged(self):
        curve = list(np.linspace(0, 10, 100))  # still climbing at the end
        idx = converged_at(curve, window=10, tolerance=0.01)
        assert idx is None or idx > 80

    def test_too_short_returns_none(self):
        assert converged_at([1.0, 2.0], window=10) is None


class TestNormalizedRatios:
    def test_reference_all_ones(self):
        values = {"c1": {"a": 2.0, "ref": 1.0}, "c2": {"a": 3.0, "ref": 1.5}}
        ratios = normalized_ratios(values, "ref")
        np.testing.assert_allclose(ratios["ref"], [1.0, 1.0])
        np.testing.assert_allclose(ratios["a"], [2.0, 2.0])

    def test_missing_reference_skipped(self):
        values = {"c1": {"a": 2.0}, "c2": {"a": 3.0, "ref": 1.0}}
        ratios = normalized_ratios(values, "ref")
        assert ratios["a"] == [3.0]


class TestRankCorrelation:
    def test_perfect_monotone(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert rank_correlation([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [1])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            rank_correlation([1], [1])
