"""MCTS tests: node/edge statistics (Eq. 10–12) and the full search."""

import numpy as np
import pytest

from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NormalizedReward
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.eval.metrics import macro_overlap_area
from repro.mcts.node import Node
from repro.mcts.search import MCTSConfig, MCTSPlacer


def make_node(priors, visits=None, values=None) -> Node:
    n = len(priors)
    node = Node(depth=0)
    node.actions = np.arange(n, dtype=np.int64)
    node.prior = np.asarray(priors, dtype=float)
    node.visit = np.zeros(n) if visits is None else np.asarray(visits, dtype=float)
    node.total_value = (
        np.zeros(n) if values is None else np.asarray(values, dtype=float)
    )
    node.expanded = True
    return node


class TestNodeStatistics:
    def test_q_values_zero_when_unvisited(self):
        node = make_node([0.5, 0.5])
        np.testing.assert_allclose(node.q_values(), [0.0, 0.0])

    def test_q_is_mean_value(self):
        node = make_node([0.5, 0.5], visits=[2, 4], values=[1.0, 1.0])
        np.testing.assert_allclose(node.q_values(), [0.5, 0.25])

    def test_puct_prefers_prior_when_unvisited(self):
        node = make_node([0.9, 0.1], visits=[1, 1], values=[0.0, 0.0])
        scores = node.puct_scores(c=1.05)
        assert scores[0] > scores[1]

    def test_puct_u_term_decays_with_visits(self):
        """Eq. 11: heavily-visited edges lose exploration bonus."""
        node = make_node([0.5, 0.5], visits=[10, 1], values=[0.0, 0.0])
        scores = node.puct_scores(c=1.05)
        assert scores[1] > scores[0]

    def test_puct_q_dominates_when_c_small(self):
        node = make_node([0.1, 0.9], visits=[5, 5], values=[5.0, 0.0])
        assert node.select_child_index(c=1e-6) == 0

    def test_record_implements_eq12(self):
        node = make_node([1.0])
        node.record(0, 0.8)
        node.record(0, 0.4)
        assert node.visit[0] == 2
        assert node.total_value[0] == pytest.approx(1.2)
        assert node.q_values()[0] == pytest.approx(0.6)

    def test_child_for_creates_lazily(self):
        node = make_node([0.5, 0.5])
        child = node.child_for(1)
        assert child.depth == 1
        assert node.child_for(1) is child

    def test_most_visited_index(self):
        node = make_node([0.3, 0.3, 0.4], visits=[1, 5, 2])
        assert node.most_visited_index() == 1

    def test_most_visited_tie_broken_by_q(self):
        node = make_node([0.5, 0.5], visits=[3, 3], values=[0.3, 0.9])
        assert node.most_visited_index() == 1


class TestMCTSSearch:
    @pytest.fixture
    def setup(self, coarse_small):
        env = MacroGroupPlacementEnv(coarse_small, cell_place_iters=1)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1, seed=0))
        reward_fn = NormalizedReward(
            w_max=2000.0, w_min=500.0, w_avg=1200.0, alpha=0.75
        )
        return env, net, reward_fn

    def test_search_produces_full_assignment(self, setup):
        env, net, reward_fn = setup
        placer = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=4))
        result = placer.run()
        assert len(result.assignment) == env.n_steps
        assert all(0 <= a < env.n_actions for a in result.assignment)

    def test_search_result_is_legal(self, setup):
        env, net, reward_fn = setup
        MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=4)).run()
        assert macro_overlap_area(env.coarse.design) < 1e-9

    def test_reward_consistent_with_wirelength(self, setup):
        env, net, reward_fn = setup
        result = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=4)).run()
        assert result.reward == pytest.approx(reward_fn(result.wirelength))

    def test_deterministic_given_seed(self, setup):
        import copy

        env, net, reward_fn = setup
        r1 = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=4, seed=3)).run()
        env2 = MacroGroupPlacementEnv(
            copy.deepcopy(env.coarse), cell_place_iters=1
        )
        r2 = MCTSPlacer(env2, net, reward_fn, MCTSConfig(explorations=4, seed=3)).run()
        assert r1.assignment == r2.assignment

    def test_terminal_cache_hit(self, setup):
        env, net, reward_fn = setup
        placer = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=4))
        v1 = placer._terminal_value([0] * env.n_steps)
        count = placer.n_terminal_evaluations
        v2 = placer._terminal_value([0] * env.n_steps)
        assert v1 == v2
        assert placer.n_terminal_evaluations == count

    def test_network_evaluations_counted(self, setup):
        env, net, reward_fn = setup
        result = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=4)).run()
        assert result.n_network_evaluations > 0

    def test_more_explorations_not_worse_on_average(self, setup):
        """With a bigger γ budget the committed result should not degrade
        (statistical: compared via best-terminal tracking)."""
        import copy

        env, net, reward_fn = setup
        small = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=2, seed=0)).run()
        env2 = MacroGroupPlacementEnv(copy.deepcopy(env.coarse), cell_place_iters=1)
        big = MCTSPlacer(env2, net, reward_fn, MCTSConfig(explorations=16, seed=0)).run()
        assert (
            min(big.wirelength, big.best_terminal_wirelength)
            <= min(small.wirelength, small.best_terminal_wirelength) * 1.2
        )

    def test_best_terminal_tracked(self, setup):
        env, net, reward_fn = setup
        result = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=8)).run()
        assert result.best_terminal_assignment is not None
        assert result.best_terminal_wirelength <= result.wirelength + 1e-9

    def test_root_noise_changes_priors(self, setup):
        env, net, reward_fn = setup
        cfg = MCTSConfig(explorations=2, root_noise_frac=0.5, seed=1)
        placer = MCTSPlacer(env, net, reward_fn, cfg)
        result = placer.run()
        assert len(result.assignment) == env.n_steps

    def test_zero_steps_design(self):
        """A design with no movable macros yields an empty search."""
        from repro.coarsen import coarsen_design
        from repro.grid.plan import GridPlan
        from repro.netlist.model import (
            Cell,
            Design,
            IOPad,
            Net,
            Netlist,
            Pin,
            PlacementRegion,
        )

        nl = Netlist("nomacro")
        nl.add_node(Cell("c0", 2, 1, x=5, y=5))
        nl.add_node(Cell("c1", 2, 1, x=15, y=15))
        nl.add_node(IOPad("p0", 1, 1, x=-1, y=0))
        nl.add_net(Net("n0", pins=[Pin("c0"), Pin("c1")]))
        nl.add_net(Net("n1", pins=[Pin("c1"), Pin("p0")]))
        design = Design(netlist=nl, region=PlacementRegion(0, 0, 40, 40))
        coarse = coarsen_design(design, GridPlan(design.region, zeta=4))
        assert coarse.n_macro_groups == 0
        env = MacroGroupPlacementEnv(coarse, cell_place_iters=1)
        net = PolicyValueNet(NetworkConfig(zeta=4, channels=4, res_blocks=1))
        reward_fn = NormalizedReward(w_max=2.0, w_min=1.0, w_avg=1.5)
        result = MCTSPlacer(env, net, reward_fn, MCTSConfig(explorations=2)).run()
        assert result.assignment == []
