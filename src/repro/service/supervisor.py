"""Self-healing job supervision: heartbeats, watchdog, retry, quarantine.

PR 4 gave the service a scheduler; this module gives it *judgment about
failure*.  Three cooperating pieces:

**Heartbeats** (:class:`Heartbeat`) — every job attempt carries one.
Beats come from two existing progress streams, so no flow code had to
learn about supervision: every :class:`~repro.utils.events.EventLog`
emission (stage transitions, checkpoints, degradations) beats via the
log's listener hook, and every budget poll beats via
:class:`SupervisedBudget` — the flow polls budgets each RL episode wave
and each MCTS exploration, which bounds heartbeat granularity by the
cost of one episode.

**Watchdog** — :meth:`JobSupervisor.check_stalls` runs inside the
daemon's poll cycle.  A heartbeat older than ``stall_seconds`` is
*cancelled*: the next budget poll inside the job raises a structured
:class:`~repro.runtime.errors.StageStallError` (cooperative kill — the
worker thread unwinds through the normal failure path).  If the job
still hasn't unwound after a further grace period (a truly hung solver
never polls), the watchdog force-abandons it: the scheduler releases
the slot (spawning a replacement worker thread so capacity survives)
and the supervisor resolves the failure on the stuck thread's behalf.
A stale attempt that eventually wakes up and reports is detected by
its attempt number and dropped.

**Retry / quarantine** (:meth:`JobSupervisor.resolve_failure`) —
transient failures (injected faults, stalls, artifact corruption,
unexpected non-placement exceptions) are retried with exponential
backoff and *deterministic* jitter (hash of job id + attempt, so two
daemons replaying the same journal schedule identical delays).  After
``max_retries`` retries the job is QUARANTINED — a terminal state with
its own JSONL journal (``<service_dir>/quarantine.jsonl``) recording
the poison job's spec and final error for offline triage.  Structured
domain failures (bad usage, calibration/divergence errors) fail
immediately: retrying a deterministic failure is pure waste.
"""

from __future__ import annotations

import hashlib
import heapq
import threading
import time

from repro.runtime import faults
from repro.runtime.errors import StageStallError
from repro.utils.events import append_jsonl
from repro.service.jobs import (
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    write_json_atomic,
)

#: error kinds whose recurrence is plausibly environmental — worth a
#: retry.  Everything not listed and not a PlacementError (worker crash,
#: MemoryError, a plain bug) is treated as transient too: the retry
#: either heals it or escalates it to quarantine with evidence.
TRANSIENT_KINDS = frozenset(
    {
        "FaultInjected",
        "StageStallError",
        "ArtifactCorruptError",
        # ENOSPC after an emergency GC pass: by the retry the governor
        # (or an operator) may have freed space — never a daemon-killer
        "ResourceExhaustedError",
    }
)
#: structured kinds that are deterministic properties of the job — a
#: retry would fail identically, so they go straight to FAILED
PERMANENT_KINDS = frozenset(
    {
        "UsageError",
        "CalibrationError",
        "TrainingDivergedError",
        "SolverInfeasibleError",
        "StageTimeoutError",
        "Backpressure",
        # admission shed above the resource high-water mark: the client
        # resubmits once pressure clears; the journaled job stays FAILED
        "ResourcePressure",
        "VerificationError",
    }
)


def classify_transient(kind: str | None) -> bool:
    """Is an error of *kind* worth retrying?"""
    if kind in TRANSIENT_KINDS:
        return True
    return kind not in PERMANENT_KINDS


class Heartbeat:
    """Monotonic progress clock of one job attempt.

    ``beat`` (from the event-log listener and budget polls) advances the
    clock; ``poll`` is the raising variant used at the flow's safe
    points — once the watchdog has cancelled the heartbeat, the next
    poll raises :class:`StageStallError` inside the job, unwinding it
    through its ordinary failure path.

    The ``stall.freeze`` fault site hooks ``beat``: once fired, beats
    stop registering, which is exactly what a hung solver looks like
    from the outside.
    """

    def __init__(self, job_id: str, attempt: int, clock=time.monotonic) -> None:
        self.job_id = job_id
        self.attempt = attempt
        self._clock = clock
        self.started = self.last_beat = clock()
        self.stage: str | None = None
        self.beats = 0
        self.frozen = False
        self.abandoned = False
        self._cancel_reason: str | None = None

    # -- progress --------------------------------------------------------------
    def beat(self, stage: str | None = None) -> None:
        if not self.frozen and faults.should_fire("stall.freeze"):
            self.frozen = True
        if self.frozen or self.cancelled:
            return
        self.beats += 1
        if stage is not None:
            self.stage = stage
        self.last_beat = self._clock()

    def beat_event(self, event) -> None:
        """EventLog listener adapter."""
        self.beat(event.stage)

    def poll(self, stage: str | None = None) -> None:
        """Beat — or raise if the watchdog cancelled this attempt."""
        if self.cancelled:
            raise StageStallError(
                self._cancel_reason or "job heartbeat cancelled",
                stage=stage or self.stage,
                job=self.job_id,
                attempt=self.attempt,
                stalled_seconds=round(self.age(), 3),
            )
        self.beat(stage)

    # -- watchdog side ---------------------------------------------------------
    def age(self, now: float | None = None) -> float:
        return (self._clock() if now is None else now) - self.last_beat

    @property
    def cancelled(self) -> bool:
        return self._cancel_reason is not None

    def cancel(self, reason: str) -> None:
        self._cancel_reason = reason


class SupervisedBudget:
    """Budget proxy that beats (and enforces) a heartbeat on every poll.

    Wraps the :class:`~repro.runtime.budget.StageBudget` a
    :class:`JobRunContext` hands the flow; the flow already polls
    budgets at every safe point, so piggybacking costs nothing and
    requires no flow changes.
    """

    __slots__ = ("inner", "heartbeat")

    def __init__(self, inner, heartbeat: Heartbeat) -> None:
        self.inner = inner
        self.heartbeat = heartbeat

    @property
    def stage(self) -> str:
        return self.inner.stage

    @property
    def seconds(self):
        return self.inner.seconds

    def elapsed(self) -> float:
        return self.inner.elapsed()

    def remaining(self):
        return self.inner.remaining()

    def exhausted(self) -> bool:
        self.heartbeat.poll(self.inner.stage)
        return self.inner.exhausted()

    def check(self) -> None:
        self.heartbeat.poll(self.inner.stage)
        self.inner.check()


class JobSupervisor:
    """Watchdog + retry/backoff/quarantine policy of one service daemon.

    Owns no threads: the daemon calls :meth:`check_stalls` and
    :meth:`due_retries` from its poll loop (``poll_interval`` is the
    watchdog resolution), and the scheduler's workers call
    :meth:`begin`/:meth:`end`/:meth:`resolve_failure` around each
    attempt.
    """

    def __init__(
        self,
        store,
        metrics,
        quarantine_path: str,
        *,
        scheduler=None,
        finalize=None,
        stall_seconds: float | None = None,
        stall_grace: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.5,
        clock=time.monotonic,
    ) -> None:
        self.store = store
        self.metrics = metrics
        self.quarantine_path = quarantine_path
        self.scheduler = scheduler
        #: called with the (terminal) job after quarantine/fail decisions
        #: the supervisor makes on a worker's behalf (result-file writer)
        self.finalize = finalize
        self.stall_seconds = stall_seconds
        self.stall_grace = (
            stall_grace if stall_grace is not None
            else (stall_seconds if stall_seconds is not None else 0.0)
        )
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = float(backoff_base)
        self._clock = clock
        self._lock = threading.Lock()
        self._heartbeats: dict[str, Heartbeat] = {}
        self._retries: list[tuple[float, str]] = []  # (due, job_id) heap
        self._cold: set[str] = set()

    # -- attempt lifecycle -----------------------------------------------------
    def begin(self, job_id: str, attempt: int) -> Heartbeat:
        hb = Heartbeat(job_id, attempt, clock=self._clock)
        with self._lock:
            self._heartbeats[job_id] = hb
        return hb

    def end(self, job_id: str, attempt: int) -> None:
        with self._lock:
            hb = self._heartbeats.get(job_id)
            if hb is not None and hb.attempt == attempt:
                del self._heartbeats[job_id]

    def heartbeat(self, job_id: str):
        """The live attempt's heartbeat (None when nothing is running).

        A fleet shard that loses a job's lease cancels this heartbeat so
        the disowned attempt unwinds at its next progress poll instead of
        burning a worker on a job a peer now owns.
        """
        with self._lock:
            return self._heartbeats.get(job_id)

    def attempt_current(self, job_id: str, attempt: int) -> bool:
        """Is *attempt* still the live attempt of *job_id*?  False once
        the watchdog force-abandoned it (its slot was already resolved)."""
        job = self.store.get(job_id)
        return (
            job is not None
            and job.attempts == attempt
            and job.state == RUNNING
        )

    # -- cold-retry flags (verification failures) ------------------------------
    def set_cold(self, job_id: str) -> None:
        with self._lock:
            self._cold.add(job_id)

    def is_cold(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._cold

    def clear_cold(self, job_id: str) -> None:
        with self._lock:
            self._cold.discard(job_id)

    # -- backoff ---------------------------------------------------------------
    def backoff_delay(self, job_id: str, attempt: int) -> float:
        """``backoff_base * 2^(attempt-1)`` with deterministic jitter.

        The jitter factor (in [1.0, 1.5)) is a hash of job id + attempt:
        it decorrelates a thundering herd of retries without making the
        schedule irreproducible — replaying the same journal yields the
        same delays, which the determinism tests assert.
        """
        base = self.backoff_base * (2.0 ** max(0, attempt - 1))
        digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + 0.5 * jitter)

    # -- failure resolution ----------------------------------------------------
    def resolve_failure(
        self,
        job,
        error: dict,
        transient: bool | None = None,
        seconds: float | None = None,
    ) -> str:
        """Decide (and journal) what happens after a failed attempt.

        Returns ``"retry"``, ``"quarantine"``, or ``"fail"``.  Retries
        transition the job back to QUEUED with the computed backoff delay
        recorded; it is re-enqueued by the daemon once the delay elapses
        (:meth:`due_retries`).
        """
        if transient is None:
            transient = classify_transient(error.get("kind"))
        extra = {} if seconds is None else {"seconds": seconds}
        if transient and job.attempts <= self.max_retries:
            delay = self.backoff_delay(job.id, job.attempts)
            self.store.transition(
                job.id, QUEUED,
                reason="retry",
                error=error,
                retry_delay=round(delay, 4),
                **extra,
            )
            with self._lock:
                heapq.heappush(self._retries, (self._clock() + delay, job.id))
            self.metrics.inc("jobs_retried")
            return "retry"
        if transient:
            self.store.transition(job.id, QUARANTINED, error=error, **extra)
            self._journal_quarantine(job, error)
            self.metrics.inc("jobs_quarantined")
            return "quarantine"
        self.store.transition(job.id, FAILED, error=error, **extra)
        self.metrics.inc("jobs_failed")
        return "fail"

    def _journal_quarantine(self, job, error: dict) -> None:
        record = {
            "ts": round(time.time(), 3),
            "id": job.id,
            "attempts": job.attempts,
            "error": error,
            "spec": job.spec.to_json(),
        }
        # Single-syscall atomic append: a fleet's shards share this journal.
        append_jsonl(self.quarantine_path, record, fsync=True)

    def quarantined(self) -> list[dict]:
        """Parsed quarantine journal (offline triage surface)."""
        from repro.utils.events import read_jsonl

        return read_jsonl(self.quarantine_path)

    # -- retry scheduling ------------------------------------------------------
    def schedule_retry(self, job, error: dict, reason: str, seconds: float | None = None) -> float:
        """Explicitly schedule one retry outside the attempt budget (used
        for the verification cold-retry); returns the delay."""
        delay = self.backoff_delay(job.id, max(1, job.attempts))
        extra = {} if seconds is None else {"seconds": seconds}
        self.store.transition(
            job.id, QUEUED,
            reason=reason, error=error, retry_delay=round(delay, 4), **extra,
        )
        with self._lock:
            heapq.heappush(self._retries, (self._clock() + delay, job.id))
        self.metrics.inc("jobs_retried")
        return delay

    def due_retries(self) -> list[str]:
        """Job ids whose backoff delay has elapsed (ready to enqueue)."""
        now = self._clock()
        due: list[str] = []
        with self._lock:
            while self._retries and self._retries[0][0] <= now:
                due.append(heapq.heappop(self._retries)[1])
        return due

    def pending_retries(self) -> int:
        with self._lock:
            return len(self._retries)

    # -- watchdog --------------------------------------------------------------
    def check_stalls(self) -> None:
        """One watchdog sweep (called from the daemon's poll cycle).

        Phase 1: a heartbeat past ``stall_seconds`` is cancelled — the
        job raises :class:`StageStallError` at its next progress poll.
        Phase 2: a cancelled heartbeat still unreported after a further
        ``stall_grace`` means the thread never polls (hard hang): the
        job's slot is force-abandoned and the failure resolved here.
        """
        if self.stall_seconds is None:
            return
        now = self._clock()
        with self._lock:
            beats = list(self._heartbeats.items())
        for job_id, hb in beats:
            age = hb.age(now)
            if not hb.cancelled:
                if age > self.stall_seconds:
                    hb.cancel(
                        f"no progress for {age:.2f}s "
                        f"(stall_seconds={self.stall_seconds})"
                    )
                    self.metrics.inc("stalls_detected")
            elif not hb.abandoned and age > self.stall_seconds + self.stall_grace:
                hb.abandoned = True
                self._force_abandon(job_id, hb)

    def _force_abandon(self, job_id: str, hb: Heartbeat) -> None:
        with self._lock:
            if self._heartbeats.get(job_id) is hb:
                del self._heartbeats[job_id]
        job = self.store.get(job_id)
        if job is None or job.state != RUNNING or job.attempts != hb.attempt:
            return  # the attempt reported in the meantime
        self.metrics.inc("jobs_abandoned")
        if self.scheduler is not None:
            self.scheduler.abandon(job_id)
        error = {
            "kind": "StageStallError",
            "message": (
                f"watchdog abandoned hung attempt {hb.attempt} "
                f"(no progress for {hb.age():.2f}s, stage {hb.stage})"
            ),
            "stage": hb.stage,
            "exit_code": StageStallError.exit_code,
        }
        action = self.resolve_failure(job, error, transient=True)
        if action in ("quarantine", "fail") and self.finalize is not None:
            self.finalize(self.store.get(job_id))
