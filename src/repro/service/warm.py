"""Warm-artifact cache: skip pre-training on repeat jobs.

Pre-training (reward calibration + Actor-Critic episodes) dominates a
job's wall-clock and is a pure function of (design, config) — seed
included, since the trained weights depend on it.  The cache stores the
three stage artifacts the run harness already knows how to restore
(``calibration.json``, ``network.npz``, ``training.json``) under a
fingerprint key; a later job with the same key gets them *injected* into
its fresh run dir with the two stages pre-marked complete, so the flow's
ordinary resume path loads them — network weights plus the post-training
RNG state — and continues straight into MCTS.  Because that is exactly
the code path the kill-and-resume tests prove bit-for-bit, a warm job's
HPWL is bitwise-identical to an uninterrupted cold run with the same
seed: the cache trades time, never determinism.

Integrity (PR 5): every stored entry carries a ``checksums.json`` of
sha256 digests, verified *before* injection — a corrupted entry (bit
rot, torn copy, the ``warm.corrupt`` fault site) is discarded with a
``warm_artifact_corrupt`` event and the job simply runs cold.  The
digests are also recorded into the receiving run dir's manifest, so the
harness's own artifact verification covers injected files too.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid

from repro.runtime import faults
from repro.runtime.checkpoint import pretraining_fingerprint
from repro.runtime.errors import ResourceExhaustedError
from repro.runtime.integrity import CHECKSUMS_KEY, corrupt_file, sha256_file
from repro.runtime.resources import dir_usage_bytes, guarded_write

#: the stage artifacts that constitute "pre-training is done"
ARTIFACTS = ("calibration.json", "network.npz", "training.json")
#: stages those artifacts complete
WARM_STAGES = ("calibration", "rl_training")
#: per-entry digest record, written last so its presence implies a
#: complete copy
CHECKSUM_FILE = "checksums.json"


def design_key(design) -> str:
    """Content hash of the design identity (finer than the manifest's
    coarse fingerprint: includes region geometry and total node area, so
    two same-named designs with equal counts don't alias)."""
    nl = design.netlist
    payload = {
        "name": nl.name,
        "n_nodes": len(nl),
        "n_nets": len(nl.nets),
        "area": repr(float(sum(node.area for node in nl))),
        "region": [
            repr(float(v))
            for v in (design.region.x, design.region.y,
                      design.region.width, design.region.height)
        ],
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def warm_key(config, design) -> str:
    """``<pre-training fingerprint>-<design hash>`` — the cache key.

    Keyed on :func:`pretraining_fingerprint`, not the full config
    fingerprint: the cached artifacts are produced before the MCTS stage
    ever runs, so search-only knobs (``mcts.*``, ``exact_topk``, the MCTS
    budget, cell legalization) must not split the key.  That is what lets
    a sweep over MCTS knobs pre-train once and serve every other point
    warm.  Execution knobs are already excluded by the fingerprint
    itself.
    """
    return f"{pretraining_fingerprint(config)}-{design_key(design)}"


class WarmArtifactCache:
    """Fingerprint-keyed store of pre-trained flow artifacts."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corruptions = 0
        self.evictions = 0
        # per-fingerprint counters, surfaced in metrics.json so a study
        # report can prove the one-cold-pretrain-per-fingerprint property
        self._by_key: dict[str, dict[str, int]] = {}

    def key(self, config, design) -> str:
        """See :func:`warm_key`."""
        return warm_key(config, design)

    def _count(self, key: str, event: str) -> None:
        entry = self._by_key.setdefault(
            key,
            {"hits": 0, "misses": 0, "stores": 0, "corruptions": 0,
             "evictions": 0},
        )
        entry[event] = entry.get(event, 0) + 1

    def per_key(self) -> dict[str, dict[str, int]]:
        """Snapshot of per-fingerprint hit/miss/store/corruption counts."""
        return {key: dict(counts) for key, counts in sorted(self._by_key.items())}

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key)

    def has(self, key: str) -> bool:
        entry = self._entry_dir(key)
        return all(
            os.path.exists(os.path.join(entry, name)) for name in ARTIFACTS
        )

    # -- population ------------------------------------------------------------
    def store(self, key: str, run_dir: str) -> bool:
        """Copy a completed run dir's pre-training artifacts under *key*.

        No-op when the key is already populated or the run dir is missing
        an artifact.  The copy lands in a temp dir first and is renamed
        into place, so a concurrently reading (or crashing) daemon never
        observes a half-written entry.
        """
        if self.has(key):
            return False
        sources = [os.path.join(run_dir, name) for name in ARTIFACTS]
        if not all(os.path.exists(src) for src in sources):
            return False
        tmp = os.path.join(self.root, f".{key}.{uuid.uuid4().hex[:6]}.tmp")
        os.makedirs(tmp, exist_ok=True)

        def _copy() -> None:
            checksums = {}
            for src, name in zip(sources, ARTIFACTS):
                dst = os.path.join(tmp, name)
                shutil.copy2(src, dst)
                checksums[name] = sha256_file(dst)
            with open(os.path.join(tmp, CHECKSUM_FILE), "w") as f:
                json.dump(checksums, f, indent=2, sort_keys=True)
            os.replace(tmp, self._entry_dir(key))

        try:
            # ENOSPC-guarded: a full disk degrades (emergency GC + one
            # retry) and otherwise raises ResourceExhaustedError, which
            # the service resolves as a retryable attempt failure.
            guarded_write(f"warm:{key}", _copy)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            return self.has(key)  # lost a benign race to a sibling worker
        except ResourceExhaustedError:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        if faults.should_fire("warm.corrupt"):
            corrupt_file(os.path.join(self._entry_dir(key), "network.npz"))
        self.stores += 1
        self._count(key, "stores")
        return True

    # -- validation ------------------------------------------------------------
    def checksums(self, key: str) -> dict | None:
        """The entry's recorded digests (None for pre-PR 5 legacy entries)."""
        path = os.path.join(self._entry_dir(key), CHECKSUM_FILE)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, json.JSONDecodeError):
            return {}  # unreadable record: treat every artifact as suspect

    def validate(self, key: str) -> bool:
        """Verify the entry's artifacts against its recorded digests.

        Legacy entries without a digest record are accepted (same
        tolerance the run harness extends to old manifests).
        """
        checksums = self.checksums(key)
        if checksums is None:
            return True
        entry = self._entry_dir(key)
        return all(
            checksums.get(name) is not None
            and os.path.exists(os.path.join(entry, name))
            and sha256_file(os.path.join(entry, name)) == checksums[name]
            for name in ARTIFACTS
        )

    def discard(self, key: str) -> None:
        shutil.rmtree(self._entry_dir(key), ignore_errors=True)

    # -- injection -------------------------------------------------------------
    def inject(self, key: str, ctx) -> bool:
        """Pre-complete calibration + rl_training in *ctx*'s run dir.

        Copies the cached artifacts in and marks both stages completed in
        the manifest (tagged ``warm``), so the flow's resume path restores
        them instead of re-training.  Returns True on a hit.

        The entry is validated against its recorded digests first: a
        corrupted entry is discarded (the cache must never poison a job)
        and the miss is reported with a ``warm_artifact_corrupt`` event —
        the job just runs cold.
        """
        if ctx.dir is None:
            return False
        if not self.has(key):
            self.misses += 1
            self._count(key, "misses")
            return False
        if not self.validate(key):
            self.discard(key)
            self.corruptions += 1
            self.misses += 1
            self._count(key, "corruptions")
            self._count(key, "misses")
            ctx.events.emit(
                "warm_artifact_corrupt", key=key, action="discarded"
            )
            return False
        checksums = self.checksums(key) or {}
        entry = self._entry_dir(key)
        try:
            os.utime(entry)  # LRU recency: a hit keeps the entry warm
        except OSError:
            pass
        for name in ARTIFACTS:
            shutil.copy2(os.path.join(entry, name), ctx.dir.file(name))
        for stage in WARM_STAGES:
            ctx.manifest["stages"][stage] = {"completed": True, "warm": True}
        if checksums:
            ctx.manifest.setdefault(CHECKSUMS_KEY, {}).update(checksums)
        ctx.dir.write_manifest(ctx.manifest)
        self.hits += 1
        self._count(key, "hits")
        ctx.events.emit("warm_artifacts_injected", key=key)
        return True

    def keys(self) -> list[str]:
        return sorted(
            name for name in os.listdir(self.root)
            if not name.startswith(".") and self.has(name)
        )

    # -- size governance -------------------------------------------------------
    def entry_bytes(self, key: str) -> int:
        return dir_usage_bytes(self._entry_dir(key))

    def total_bytes(self) -> int:
        """Bytes under the cache root (stale tmp dirs included — they are
        reclaimable and the eviction pass removes them first)."""
        return dir_usage_bytes(self.root)

    def evict_lru(self, max_bytes: int) -> list[str]:
        """Evict least-recently-used entries until the cache fits
        *max_bytes*; returns the evicted keys.

        Recency is the entry directory's mtime: ``os.replace`` stamps it
        at store time and :meth:`inject` re-touches it on every hit, so
        eviction order tracks *use*, not just age.  Orphaned ``.tmp``
        dirs (a crashed store) are swept unconditionally.
        """
        for name in os.listdir(self.root):
            if name.startswith(".") and name.endswith(".tmp"):
                shutil.rmtree(os.path.join(self.root, name),
                              ignore_errors=True)
        entries = []
        for key in self.keys():
            try:
                mtime = os.path.getmtime(self._entry_dir(key))
            except OSError:
                continue
            entries.append((mtime, key, self.entry_bytes(key)))
        entries.sort()
        total = sum(size for _, _, size in entries)
        evicted: list[str] = []
        for _, key, size in entries:
            if total <= max_bytes:
                break
            self.discard(key)
            self._count(key, "evictions")
            total -= size
            evicted.append(key)
        self.evictions += len(evicted)
        return evicted
