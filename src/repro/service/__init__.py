"""Placement-as-a-service: a concurrent job scheduler over the flow.

The service turns the one-shot ``MCTSGuidedPlacer`` flow into a
multi-tenant system: a long-lived daemon accepts many placement jobs
(design + :class:`~repro.core.config.PlacerConfig` + seed), multiplexes
them over a bounded worker budget, reuses pre-trained artifacts across
jobs on the same problem, and exposes a metrics surface.  Everything is
file-based — submission inbox, control requests, the job journal, per-job
run dirs, results, and ``metrics.json`` all live under one service
directory — so no network stack is required and every piece survives a
daemon restart.

Layers:

- :mod:`repro.service.jobs`      — job specs, states, the durable journal
- :mod:`repro.service.warm`      — warm-artifact cache (skip pre-training)
- :mod:`repro.service.metrics`   — counters / gauges / histograms
- :mod:`repro.service.scheduler` — worker threads + per-job budgets
- :mod:`repro.service.supervisor`— heartbeats, watchdog, retry, quarantine
- :mod:`repro.service.service`   — the daemon: inbox, control, recovery
- :mod:`repro.service.fleet`     — sharded fleet: leases, work stealing
- :mod:`repro.service.chaos`     — fault-injection drill over the daemon
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
    JobStore,
    ServicePaths,
    resolve_design,
)
from repro.service.fleet import (
    FleetPaths,
    FleetShard,
    Lease,
    LeaseManager,
    fleet_status,
    write_fleet_metrics,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import JobRunContext, Scheduler
from repro.service.service import PlacementService
from repro.service.supervisor import Heartbeat, JobSupervisor, SupervisedBudget
from repro.service.warm import WarmArtifactCache

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUARANTINED",
    "QUEUED",
    "RUNNING",
    "FleetPaths",
    "FleetShard",
    "Heartbeat",
    "Job",
    "Lease",
    "LeaseManager",
    "JobRunContext",
    "JobSpec",
    "JobStore",
    "JobSupervisor",
    "PlacementService",
    "Scheduler",
    "ServiceMetrics",
    "ServicePaths",
    "SupervisedBudget",
    "WarmArtifactCache",
    "fleet_status",
    "resolve_design",
    "write_fleet_metrics",
]
