"""Resource governance: pressure detection, quotas, and safe GC.

The service can survive crashes, stalls, corruption, and shard kills —
but without this module it cannot survive *success*: run dirs, the
terminal cache, warm artifacts, journals, and the malformed-submission
quarantine all grow without bound.  :class:`ResourceGovernor` is the
layer that turns "self-healing" into "runs indefinitely":

**Monitoring** — :meth:`poll` samples the service root's disk footprint
(:func:`~repro.runtime.resources.dir_usage_bytes`), filesystem headroom,
and the process RSS on a rate-limited schedule, publishing them as
``resource_*`` gauges into ``metrics.json`` (and, through the shard
metric files, ``fleet_metrics.json``).

**Quotas + GC** — :meth:`gc` enforces the configured bounds with a
*safe* collector: terminal run dirs beyond the retention count are
summarized into the journal (``record: gc``) before deletion and
QUARANTINED run dirs are always kept (they are the triage evidence);
the warm-artifact cache evicts LRU entries down to its byte quota; the
terminal cache and the job journal are compacted via atomic rewrites
(:meth:`TerminalCache.compact` / :meth:`JobStore.compact`), fleet-safe
under the GC lease; ``inbox/.rejected/`` sidecars older than a TTL are
swept (with a ``rejected_pending`` gauge so the backlog is visible).

**Load shedding** — above ``high_water`` (fraction of the disk quota,
or of the filesystem when no quota is set, or a memory-quota breach)
admission is rejected with a structured ``RESOURCE_PRESSURE`` reason;
shedding releases below ``low_water`` (hysteresis, so admission does
not flap).  Independently, :meth:`dispatch_ok` pauses *dispatch* —
never running jobs — while remaining quota headroom cannot fit a
projected run dir; the scheduler requeues instead of dropping.

**ENOSPC degradation** — :meth:`install` registers the governor with
:mod:`repro.runtime.resources` so every guarded durable write that hits
ENOSPC notifies metrics (``resource_degradations``) and triggers
:meth:`emergency_gc` before its one retry.

All knobs are execution policy (constructor/CLI level, never part of a
config fingerprint): they change how much history the service keeps,
never what any job computes.
"""

from __future__ import annotations

import os
import shutil
import time

from repro.runtime import faults, resources
from repro.service.jobs import QUARANTINED, Job, JobStore, ServicePaths
from repro.service.metrics import ServiceMetrics
from repro.service.warm import WarmArtifactCache

#: synthetic lease id serializing fleet-wide compaction passes
GC_LEASE_ID = ".gc"


def resource_report(
    paths: ServicePaths, disk_quota_bytes: int | None = None
) -> dict:
    """Offline usage breakdown of one service directory.

    The ``repro doctor --resources`` surface: per-component byte counts,
    file tallies, and a quota verdict — computed from the filesystem
    alone, no daemon required.
    """
    components = {
        "runs": paths.runs,
        "warm": paths.warm,
        "results": paths.results,
        "inbox": paths.inbox,
    }
    breakdown = {
        name: resources.dir_usage_bytes(path)
        for name, path in components.items()
    }
    for name, path in (
        ("journal", paths.journal),
        ("terminal_cache", paths.terminal_cache),
        ("quarantine", paths.quarantine),
        ("metrics", paths.metrics),
    ):
        try:
            breakdown[name] = os.path.getsize(path)
        except OSError:
            breakdown[name] = 0
    total = resources.dir_usage_bytes(paths.root)
    try:
        run_dirs = sum(
            1 for n in os.listdir(paths.runs)
            if os.path.isdir(os.path.join(paths.runs, n))
        )
    except OSError:
        run_dirs = 0
    try:
        rejected = sum(
            1 for n in os.listdir(paths.rejected)
            if not n.endswith(".reason.json")
        )
    except OSError:
        rejected = 0
    report = {
        "root": paths.root,
        "total_bytes": total,
        "breakdown": dict(sorted(breakdown.items())),
        "run_dirs": run_dirs,
        "rejected_pending": rejected,
        "disk_free_bytes": resources.disk_free_bytes(paths.root),
        "rss_bytes": resources.process_rss_bytes(),
        "disk_quota_bytes": disk_quota_bytes,
    }
    if disk_quota_bytes:
        report["quota_used_frac"] = round(total / disk_quota_bytes, 4)
        report["over_quota"] = total > disk_quota_bytes
    return report


class ResourceGovernor:
    """Disk/memory monitor, quota collector, and load-shedding policy.

    Operates on the service's components (paths, store, metrics, warm
    cache, optional fleet lease manager) rather than the service object,
    so ``repro gc`` can run the identical collector offline.
    """

    def __init__(
        self,
        paths: ServicePaths,
        store: JobStore,
        metrics: ServiceMetrics,
        warm: WarmArtifactCache,
        *,
        disk_quota_bytes: int | None = None,
        mem_quota_bytes: int | None = None,
        high_water: float = 0.9,
        low_water: float = 0.75,
        retention_runs: int | None = None,
        rejected_ttl: float = 3600.0,
        warm_quota_bytes: int | None = None,
        terminal_cache_quota_bytes: int | None = None,
        journal_quota_bytes: int | None = None,
        rundir_projection_bytes: int = 4 << 20,
        sample_interval: float = 1.0,
        leases=None,
        clock=time.time,
    ) -> None:
        self.paths = paths
        self.store = store
        self.metrics = metrics
        self.warm = warm
        self.disk_quota_bytes = disk_quota_bytes
        self.mem_quota_bytes = mem_quota_bytes
        self.high_water = float(high_water)
        self.low_water = float(low_water)
        self.retention_runs = retention_runs
        self.rejected_ttl = float(rejected_ttl)
        self.warm_quota_bytes = warm_quota_bytes
        self.terminal_cache_quota_bytes = terminal_cache_quota_bytes
        self.journal_quota_bytes = journal_quota_bytes
        self.rundir_projection_bytes = int(rundir_projection_bytes)
        self.sample_interval = float(sample_interval)
        self.leases = leases
        self._clock = clock
        self._last_sample_ts: float | None = None
        #: latest sample (updated by :meth:`poll`/:meth:`sample`); free
        #: space is probed eagerly so the dispatch gate opens correctly
        #: even before the first poll cycle samples
        self.disk_used_bytes = 0
        self.disk_free_bytes = resources.disk_free_bytes(paths.root)
        self.rss_bytes = 0
        self.rejected_pending = 0
        #: admission hysteresis latch
        self.shedding = False
        self._mem_pressure = False
        self._hooks = None

    # -- guard registration ----------------------------------------------------
    def install(self) -> "ResourceGovernor":
        """Register this governor as the process' ENOSPC guard hooks."""
        if self._hooks is None:
            self._hooks = resources.install_guard(
                on_degradation=self._on_degradation,
                emergency_gc=self.emergency_gc,
            )
        return self

    def uninstall(self) -> None:
        if self._hooks is not None:
            resources.uninstall_guard(self._hooks)
            self._hooks = None

    def _on_degradation(self, info: dict) -> None:
        self.metrics.inc("resource_degradations")
        self.metrics.inc(f"events_{info.get('event', 'degradation')}")

    # -- sampling + pressure ---------------------------------------------------
    def sample(self) -> dict:
        """Measure disk/RSS now, update pressure state, maybe auto-GC."""
        self._last_sample_ts = self._clock()
        usage = resources.dir_usage_bytes(self.paths.root)
        free = resources.disk_free_bytes(self.paths.root)
        rss = resources.process_rss_bytes()
        if faults.should_fire("disk.pressure"):
            # synthetic quota-full sample: shedding engages without a
            # real full disk (released once real usage drops below the
            # low-water mark on a later, un-faulted sample)
            usage = max(
                usage,
                self.disk_quota_bytes
                if self.disk_quota_bytes
                else usage + free,
            )
        mem_fault = faults.should_fire("mem.pressure")
        self.disk_used_bytes = usage
        self.disk_free_bytes = free
        self.rss_bytes = rss
        self._mem_pressure = mem_fault or (
            self.mem_quota_bytes is not None
            and rss >= self.mem_quota_bytes
        )
        frac = self._disk_frac()
        if self._mem_pressure or frac >= self.high_water:
            if not self.shedding:
                self.shedding = True
                self.metrics.inc("pressure_shed_engaged")
        elif self.shedding and frac <= self.low_water:
            self.shedding = False
            self.metrics.inc("pressure_shed_released")
        try:
            self.rejected_pending = sum(
                1 for n in os.listdir(self.paths.rejected)
                if not n.endswith(".reason.json")
            )
        except OSError:
            self.rejected_pending = 0
        # quota-driven collection: keep usage under the quota while the
        # daemon is healthy, instead of waiting for an ENOSPC emergency
        if (
            self.disk_quota_bytes
            and usage > self.disk_quota_bytes * self.high_water
        ):
            self.gc()
        self.publish()
        return {
            "disk_used_bytes": self.disk_used_bytes,
            "disk_free_bytes": self.disk_free_bytes,
            "rss_bytes": self.rss_bytes,
            "shedding": self.shedding,
        }

    def _disk_frac(self) -> float:
        if self.disk_quota_bytes:
            return self.disk_used_bytes / self.disk_quota_bytes
        total = self.disk_used_bytes + self.disk_free_bytes
        return 0.0 if total <= 0 else 1.0 - self.disk_free_bytes / total

    def poll(self) -> None:
        """Rate-limited :meth:`sample` — cheap enough for every daemon
        poll cycle (the dir walk runs at most once per
        ``sample_interval``)."""
        now = self._clock()
        if (
            self._last_sample_ts is None
            or now - self._last_sample_ts >= self.sample_interval
        ):
            self.sample()

    def publish(self) -> None:
        """Export the latest sample as ``resource_*`` gauges."""
        m = self.metrics
        m.set_gauge("resource_disk_used_bytes", self.disk_used_bytes)
        m.set_gauge("resource_disk_free_bytes", self.disk_free_bytes)
        m.set_gauge("resource_disk_quota_bytes", self.disk_quota_bytes or 0)
        m.set_gauge("resource_rss_bytes", self.rss_bytes)
        m.set_gauge("resource_mem_quota_bytes", self.mem_quota_bytes or 0)
        m.set_gauge("resource_shedding", 1 if self.shedding else 0)
        m.set_gauge(
            "resource_dispatch_paused", 0 if self.dispatch_ok() else 1
        )
        m.set_gauge("rejected_pending", self.rejected_pending)

    # -- admission + dispatch policy -------------------------------------------
    def admission_blocked(self) -> str | None:
        """Reason string when new submissions must be shed (None = admit)."""
        if not self.shedding:
            return None
        if self._mem_pressure:
            return (
                f"memory pressure: rss {self.rss_bytes} >= "
                f"quota {self.mem_quota_bytes}"
            )
        return (
            f"disk pressure: {self.disk_used_bytes} bytes used, "
            f"{round(self._disk_frac() * 100, 1)}% of "
            + (
                f"quota {self.disk_quota_bytes}"
                if self.disk_quota_bytes
                else "the filesystem"
            )
            + f" (high_water {self.high_water})"
        )

    def dispatch_ok(self) -> bool:
        """False while quota headroom cannot fit a projected run dir.

        Consulted by the scheduler's dispatch gate: a closed gate
        requeues QUEUED jobs (it never touches running ones) until a GC
        pass — or the operator — restores headroom.
        """
        if self.disk_quota_bytes:
            headroom = self.disk_quota_bytes - self.disk_used_bytes
        else:
            headroom = self.disk_free_bytes
        return headroom >= self.rundir_projection_bytes

    # -- garbage collection ----------------------------------------------------
    def emergency_gc(self) -> dict:
        """The ENOSPC hook: collect as much as safely possible, now."""
        self.metrics.inc("emergency_gc_runs")
        summary = self.gc(emergency=True)
        self.sample()  # refresh headroom so dispatch/admission react
        return summary

    def gc(self, emergency: bool = False, dry_run: bool = False) -> dict:
        """One collection pass; returns a summary dict.

        Steps (each independently safe to skip): sweep expired
        ``inbox/.rejected/`` sidecars, retire terminal run dirs beyond
        the retention count (journal summary first, QUARANTINED always
        kept), evict the warm cache to its byte quota, compact the
        terminal cache, compact the job journal.  *emergency* collects
        regardless of quotas (retention drops to 0); *dry_run* reports
        what would be collected without touching anything.
        """
        summary: dict = {"emergency": emergency, "dry_run": dry_run}
        if not dry_run:
            self.metrics.inc("gc_runs")
        summary["rejected_deleted"] = self._gc_rejected(emergency, dry_run)
        deleted, freed = self._gc_run_dirs(emergency, dry_run)
        summary["run_dirs_deleted"] = deleted
        summary["run_dir_bytes_freed"] = freed
        summary["warm_evicted"] = self._gc_warm(emergency, dry_run)
        summary["terminal_cache"] = self._gc_terminal_cache(
            emergency, dry_run
        )
        summary["journal"] = self._gc_journal(emergency, dry_run)
        return summary

    def _gc_rejected(self, emergency: bool, dry_run: bool) -> int:
        """Sweep ``inbox/.rejected/`` entries older than the TTL."""
        ttl = 0.0 if emergency else self.rejected_ttl
        now = self._clock()
        deleted = 0
        try:
            names = os.listdir(self.paths.rejected)
        except OSError:
            return 0
        for name in names:
            path = os.path.join(self.paths.rejected, name)
            try:
                if now - os.path.getmtime(path) <= ttl:
                    continue
                if not dry_run:
                    os.remove(path)
            except OSError:
                continue
            if not name.endswith(".reason.json"):
                deleted += 1
        if deleted and not dry_run:
            self.metrics.inc("gc_rejected_deleted", deleted)
        return deleted

    def _gc_run_dirs(
        self, emergency: bool, dry_run: bool
    ) -> tuple[int, int]:
        """Retire terminal run dirs beyond the retention count.

        QUARANTINED dirs are never deleted — they are the forensic
        evidence ``repro doctor`` triages.  Everything a DONE job's dir
        contributed that the service still needs has already left it:
        the HPWL is journaled, the result file lives under ``results/``,
        and the pre-training artifacts were copied into the warm cache —
        so a summary record (``note_gc``) plus deletion loses nothing
        the protocol promises.
        """
        retention = 0 if emergency else self.retention_runs
        if retention is None:
            return 0, 0
        candidates: list[tuple[float, Job]] = []
        for job in self.store.jobs():
            if not job.terminal or job.state == QUARANTINED:
                continue
            run_dir = self.paths.run_dir(job.id)
            if not os.path.isdir(run_dir):
                continue
            candidates.append((job.finished_ts or job.submitted_ts, job))
        candidates.sort(key=lambda item: item[0], reverse=True)
        deleted = 0
        freed = 0
        for _, job in candidates[retention:]:
            run_dir = self.paths.run_dir(job.id)
            size = resources.dir_usage_bytes(run_dir)
            if dry_run:
                deleted += 1
                freed += size
                continue
            try:
                # Summarize first (durable trace of what GC removed) —
                # but never let a full disk block the very deletion that
                # would unblock it.
                self.store.note_gc(job, bytes_freed=size)
            except Exception:
                pass
            shutil.rmtree(run_dir, ignore_errors=True)
            deleted += 1
            freed += size
        if deleted and not dry_run:
            self.metrics.inc("gc_rundirs_deleted", deleted)
        return deleted, freed

    def _gc_warm(self, emergency: bool, dry_run: bool) -> int:
        if self.warm_quota_bytes is None:
            return 0
        if dry_run:
            over = self.warm.total_bytes() - self.warm_quota_bytes
            return 0 if over <= 0 else -1  # unknown count without acting
        evicted = self.warm.evict_lru(self.warm_quota_bytes)
        if evicted:
            self.metrics.inc("gc_warm_evicted", len(evicted))
        return len(evicted)

    def _gc_terminal_cache(self, emergency: bool, dry_run: bool) -> dict:
        path = self.paths.terminal_cache
        try:
            size = os.path.getsize(path)
        except OSError:
            return {"skipped": "absent"}
        quota = self.terminal_cache_quota_bytes
        if not emergency and (quota is None or size <= quota):
            return {"skipped": "under_quota", "bytes": size}
        if dry_run:
            return {"would_compact": True, "bytes": size}
        from repro.parallel.cache import TerminalCache

        def _compact() -> dict:
            # compact() validates each record against its *own*
            # fingerprint, so the instance fingerprint is irrelevant;
            # constructing without a path skips the (pointless here)
            # full in-memory load.
            cache = TerminalCache("", path=None)
            cache.path = path
            result = cache.compact()
            self.metrics.inc("gc_cache_compactions")
            return result

        out = self._with_gc_lease(_compact)
        return out if out is not None else {"skipped": "lease_busy"}

    def _gc_journal(self, emergency: bool, dry_run: bool) -> dict:
        try:
            size = os.path.getsize(self.store.path)
        except OSError:
            return {"skipped": "absent"}
        quota = self.journal_quota_bytes
        if not emergency and (quota is None or size <= quota):
            return {"skipped": "under_quota", "bytes": size}
        if self.leases is not None:
            # Fleet mode: peers append under job leases the GC lease does
            # not exclude, and an append racing the rewrite's rename can
            # lose a submit record.  The journal is compacted offline
            # (``repro gc`` with the shards stopped) instead.
            return {"skipped": "fleet_live", "bytes": size}
        if dry_run:
            return {"would_compact": True, "bytes": size}
        result = self.store.compact()
        self.metrics.inc("gc_journal_compactions")
        return result

    def _with_gc_lease(self, fn):
        """Run *fn* under the fleet GC lease (or directly, single-daemon).

        Returns None when a peer holds the lease — this pass simply
        skips the shared-file compaction and a later cycle retries.
        """
        if self.leases is None:
            return fn()
        if self.leases.acquire(GC_LEASE_ID) is None:
            return None
        try:
            return fn()
        finally:
            self.leases.release(GC_LEASE_ID)
