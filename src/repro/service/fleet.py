"""Sharded placement fleet: crash-safe work-stealing daemons.

A *fleet* is N :class:`~repro.service.service.PlacementService` daemons
(shards) sharing one service directory on a common filesystem.  Clients
are unchanged — they drop submissions into the same inbox and read the
same result files.  The shards coordinate through files only; there is
no coordinator process and no lock that can be held across a crash:

- **Leases** (``leases/<job_id>.lease``) are the only ownership
  mechanism.  A shard must hold a job's lease to admit it, run it, or
  journal its transitions.  A lease file carries the owning shard id, a
  monotonically increasing **fencing token**, a unique **nonce**, and a
  wall-clock **expiry** that the owner refreshes every poll cycle (the
  daemon's poll loop is the lease heartbeat).  Acquisition is an atomic
  exclusive create (tmp file + ``os.link`` — lease files are never
  torn); takeover of an *expired* lease is an atomic ``os.replace``
  with ``token + 1`` followed by a read-back: whoever's nonce survived
  the race owns the job (last-writer-wins among concurrent stealers).

- **Crash recovery is lease expiry.**  A SIGKILLed shard stops
  refreshing; once its leases expire, peers reclaim its jobs: a QUEUED
  orphan is simply enqueued, a RUNNING orphan is journaled back to
  QUEUED (``reason="lease_reclaim"``) and re-dispatched — its shared
  run dir already holds integrity-checked checkpoints, so the PR 1
  resume path replays completed stages and the whole-shard loss costs
  at most one stage of recompute, never a wrong answer.

- **Fencing makes the dual-ownership window harmless.**  Between a
  lease being stolen and the old owner noticing, both shards may run
  the same job.  That is safe by construction: the flow is
  deterministic (both compute byte-identical artifacts), every run-dir
  write is an atomic rename, and every *decision* — journal
  transitions, result files, warm-cache publication — is gated on
  :meth:`FleetShard._still_owner`.  The journal replay adds a second,
  independent guard: *first terminal wins*, so even a fenced-out
  zombie's late append cannot re-decide a finished job.  Losing a
  lease also cancels the local attempt's heartbeat, so the disowned
  attempt unwinds at its next progress poll instead of running to
  completion for nothing.

- **Shared caches.**  The warm-artifact cache (atomic rename + sha256
  manifest) and the terminal cache (single-``write``-syscall JSONL
  appends, per-entry sha256 validated on read, last-writer-wins) are
  fleet-wide: any shard's finished stage warms every peer.

- **Metrics.**  Each shard snapshots to ``shards/<shard>.json``;
  :func:`write_fleet_metrics` merges them (counters sum, gauges sum,
  histograms combine) with fleet-wide job counts into
  ``fleet_metrics.json``.

The shard-kill drill (:func:`repro.service.chaos.run_fleet_drill`)
SIGKILLs whole shards mid-fleet and gates on: every job DONE with HPWL
bit-identical to a single-daemon baseline, or QUARANTINED with a
journaled reason — never lost, duplicated, or silently corrupted.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass

from repro.runtime.errors import ResourceExhaustedError
from repro.service.jobs import (
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
    JobStore,
    ServicePaths,
    new_job_id,
    write_json_atomic,
)
from repro.service.service import PlacementService
from repro.utils.events import read_jsonl


# -- layout -----------------------------------------------------------------
@dataclass(frozen=True)
class FleetPaths(ServicePaths):
    """Service directory layout plus the fleet's coordination files."""

    @property
    def leases(self) -> str:
        return os.path.join(self.root, "leases")

    @property
    def shards(self) -> str:
        """Per-shard metrics snapshots (``shards/<shard>.json``)."""
        return os.path.join(self.root, "shards")

    @property
    def fleet_metrics(self) -> str:
        return os.path.join(self.root, "fleet_metrics.json")

    def lease_file(self, job_id: str) -> str:
        return os.path.join(self.leases, job_id + ".lease")

    def shard_metrics(self, shard: str) -> str:
        return os.path.join(self.shards, shard + ".json")

    def ensure(self) -> "FleetPaths":
        super().ensure()
        for d in (self.leases, self.shards):
            os.makedirs(d, exist_ok=True)
        return self


# -- leases -----------------------------------------------------------------
@dataclass
class Lease:
    """One job's ownership record as stored in its lease file."""

    job_id: str
    shard: str
    #: fencing token — strictly increases across ownership changes, so
    #: any two owners in a job's history are ordered
    token: int
    #: unique per-acquisition id; the read-back after a contested write
    #: compares nonces to learn who actually won
    nonce: str
    #: wall-clock expiry; the owner refreshes it every poll cycle
    expires: float

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "shard": self.shard,
            "token": self.token,
            "nonce": self.nonce,
            "expires": self.expires,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Lease":
        return cls(
            job_id=str(payload["job_id"]),
            shard=str(payload["shard"]),
            token=int(payload["token"]),
            nonce=str(payload["nonce"]),
            expires=float(payload["expires"]),
        )


class LeaseManager:
    """Lease acquisition, renewal, and theft for one shard.

    All mutation is by atomic filesystem primitives (``link`` for
    exclusive create, ``replace`` for takeover), so a crash at any
    instruction leaves either the old lease or the new one — never a
    torn file, and never a lock a peer must wait out beyond the TTL.

    *clock* is injectable so tests can expire leases without sleeping.
    """

    def __init__(
        self,
        leases_dir: str,
        shard: str,
        ttl: float = 10.0,
        clock=time.time,
    ) -> None:
        self.dir = leases_dir
        self.shard = shard
        self.ttl = float(ttl)
        self.clock = clock
        #: job id -> our live Lease (in-memory ownership view; renewal
        #: against the file is what detects losing a lease)
        self._owned: dict[str, Lease] = {}

    def _path(self, job_id: str) -> str:
        return os.path.join(self.dir, job_id + ".lease")

    def _read(self, job_id: str) -> Lease | None:
        try:
            with open(self._path(job_id)) as f:
                return Lease.from_json(json.load(f))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            # Lease writes are atomic, so damage is external (disk fault,
            # hand edit).  Treat it as an expired token-0 lease: stealable.
            return Lease(job_id, "?corrupt", 0, "", 0.0)

    def _write(self, lease: Lease) -> None:
        tmp = os.path.join(
            self.dir, f".{lease.job_id}.{self.shard}.{uuid.uuid4().hex[:6]}.tmp"
        )
        with open(tmp, "w") as f:
            json.dump(lease.to_json(), f, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._path(lease.job_id))

    # -- ownership -------------------------------------------------------------
    def owns(self, job_id: str) -> bool:
        """In-memory ownership check (the fencing fast path).

        Authoritative loss detection happens in :meth:`renew`, which
        runs every poll cycle; between renewals this view can be at most
        one cycle stale, which the journal's first-terminal-wins replay
        and the owner checks at every decision point absorb.
        """
        return job_id in self._owned

    def owned_ids(self) -> list[str]:
        return list(self._owned)

    def token(self, job_id: str) -> int | None:
        lease = self._owned.get(job_id)
        return None if lease is None else lease.token

    def acquire(self, job_id: str) -> Lease | None:
        """Try to take *job_id*'s lease; None means a live peer owns it.

        Succeeds when the lease is free, expired, corrupt, or held by
        this shard id (a previous incarnation of us — the replacement
        daemon supersedes its dead predecessor without waiting out the
        TTL; with one live daemon per shard id this is always safe).
        """
        held = self._owned.get(job_id)
        if held is not None:
            return held
        cur = self._read(job_id)
        if cur is None:
            return self._create(job_id)
        if cur.shard != self.shard and self.clock() < cur.expires:
            return None  # live peer
        return self._steal(job_id, cur)

    def _create(self, job_id: str) -> Lease | None:
        """Exclusive create via tmp + ``os.link`` (atomic, never torn)."""
        lease = Lease(
            job_id, self.shard, token=1, nonce=uuid.uuid4().hex,
            expires=self.clock() + self.ttl,
        )
        tmp = os.path.join(
            self.dir, f".{job_id}.{self.shard}.{uuid.uuid4().hex[:6]}.tmp"
        )
        with open(tmp, "w") as f:
            json.dump(lease.to_json(), f, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        try:
            os.link(tmp, self._path(job_id))
        except FileExistsError:
            return None  # lost the create race; caller may retry next cycle
        finally:
            os.unlink(tmp)
        self._owned[job_id] = lease
        return lease

    def _steal(self, job_id: str, cur: Lease) -> Lease | None:
        """Replace an expired/corrupt/own-shard lease, then read back.

        ``os.replace`` is last-writer-wins: of N concurrent stealers the
        file ends up holding exactly one nonce, and the read-back tells
        each contender whether it was theirs.  The fencing token strictly
        increases because every contender writes ``cur.token + 1`` over
        the same observed token.
        """
        lease = Lease(
            job_id, self.shard, token=cur.token + 1, nonce=uuid.uuid4().hex,
            expires=self.clock() + self.ttl,
        )
        self._write(lease)
        after = self._read(job_id)
        if after is None or after.nonce != lease.nonce:
            return None  # a peer's replace landed after ours
        self._owned[job_id] = lease
        return lease

    def renew(self, job_id: str) -> bool:
        """Refresh our lease's expiry; False means we lost it.

        Loss (the file now carries someone else's nonce — a peer stole
        an expired lease, perhaps during a long GC pause or scheduler
        starvation on our side) drops the in-memory claim immediately so
        every subsequent :meth:`owns` check fences this shard out.
        """
        held = self._owned.get(job_id)
        if held is None:
            return False
        cur = self._read(job_id)
        if cur is None or cur.nonce != held.nonce:
            del self._owned[job_id]
            return False
        held.expires = self.clock() + self.ttl
        self._write(held)
        after = self._read(job_id)
        if after is None or after.nonce != held.nonce:
            # A peer deemed us expired and replaced the file between our
            # read and write-back (or right after).  Their replace wins.
            self._owned.pop(job_id, None)
            return False
        return True

    def release(self, job_id: str) -> None:
        """Drop a lease we hold (only after its job is terminal).

        Racy-by-design but safe: by the time a lease is released the
        job's fate is sealed in the journal (first terminal wins), so
        even if a peer acquired the id after our unlink it would find a
        terminal job and do nothing.
        """
        held = self._owned.pop(job_id, None)
        if held is None:
            return
        cur = self._read(job_id)
        if cur is not None and cur.nonce == held.nonce:
            try:
                os.unlink(self._path(job_id))
            except FileNotFoundError:
                pass

    def live_leases(self) -> list[Lease]:
        """Every parseable lease currently on disk (status surface)."""
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return []
        out = []
        for name in sorted(names):
            if not name.endswith(".lease"):
                continue
            lease = self._read(name[: -len(".lease")])
            if lease is not None:
                out.append(lease)
        return out


# -- the shard daemon -------------------------------------------------------
class FleetShard(PlacementService):
    """One fleet member: a PlacementService whose every decision about a
    job is gated on holding that job's lease."""

    def __init__(
        self,
        service_dir: str,
        shard: str | None = None,
        lease_ttl: float = 10.0,
        **kwargs,
    ) -> None:
        paths = FleetPaths(service_dir).ensure()
        self.shard = shard or f"shard-{uuid.uuid4().hex[:8]}"
        self.leases = LeaseManager(paths.leases, self.shard, ttl=lease_ttl)
        super().__init__(service_dir, paths=paths, **kwargs)
        # Tag every journal append with our shard id (observability: the
        # journal shows which shard decided each transition).
        self.store.tag = {"shard": self.shard}

    # -- recovery --------------------------------------------------------------
    def _recover(self) -> None:
        """Fleet shards never blanket-requeue RUNNING jobs on start.

        The single-daemon recovery rule ("RUNNING at startup means the
        daemon died mid-job") is wrong in a fleet: a RUNNING job is most
        likely live *on a peer*.  Recovery is instead continuous — the
        reclaim scan in :meth:`poll` re-queues exactly those non-terminal
        jobs whose lease this shard can legitimately take (missing,
        expired, or left by our own dead predecessor)."""

    # -- fencing ---------------------------------------------------------------
    def _still_owner(self, job_id: str) -> bool:
        return self.leases.owns(job_id)

    def _dispatchable(self, job_id: str) -> bool:
        return super()._dispatchable(job_id) and self.leases.owns(job_id)

    # -- poll cycle ------------------------------------------------------------
    def poll(self) -> None:
        self.governor.poll()  # sample pressure, publish gauges, auto-GC
        self.store.refresh()  # fold in peers' journal appends
        self._renew_leases()
        self._release_terminal_leases()
        admitted = self._poll_inbox()
        self._poll_control()
        self.supervisor.check_stalls()
        for job_id in self.supervisor.due_retries():
            job = self.store.get(job_id)
            if job is not None and job.state == QUEUED:
                self.scheduler.enqueue(job)
        reclaimed = self._reclaim_orphans()
        for job in admitted + reclaimed:
            if job.state == QUEUED:
                self.scheduler.enqueue(job)
        self.write_metrics()

    def _renew_leases(self) -> None:
        """Refresh every held lease; losing one fences the local attempt.

        This poll-loop call *is* the lease heartbeat: a shard that stops
        polling (SIGKILL, hang) stops renewing, and its leases expire on
        their own — no cross-process cleanup required."""
        for job_id in self.leases.owned_ids():
            if self.leases.renew(job_id):
                continue
            self.metrics.inc("leases_lost")
            hb = self.supervisor.heartbeat(job_id)
            if hb is not None:
                # Unwind the disowned attempt at its next progress poll;
                # _still_owner() then drops its failure report unjournaled.
                hb.cancel(f"lease lost to a peer (job {job_id})")

    def _release_terminal_leases(self) -> None:
        for job_id in self.leases.owned_ids():
            job = self.store.get(job_id)
            if job is not None and job.terminal:
                self.leases.release(job_id)

    def _reclaim_orphans(self) -> list[Job]:
        """Adopt non-terminal jobs whose lease is takeable (work stealing).

        A RUNNING orphan — the signature of a dead shard — goes back to
        QUEUED with a journaled reason; its shared run dir still holds
        every completed stage's integrity-checked checkpoint, so the
        resumed attempt replays instead of recomputing."""
        reclaimed: list[Job] = []
        for job in self.store.jobs():
            if job.terminal or self.leases.owns(job.id):
                continue
            if self.leases.acquire(job.id) is None:
                continue  # a live peer owns it
            if job.state == RUNNING:
                self.store.transition(
                    job.id, QUEUED,
                    reason="lease_reclaim",
                    token=self.leases.token(job.id),
                )
                self.metrics.inc("jobs_reclaimed")
            reclaimed.append(self.store.get(job.id))
        return reclaimed

    # -- admission + control ---------------------------------------------------
    def _poll_inbox(self) -> list[Job]:
        """Claim-gated admission from the shared inbox.

        Every shard sees every submission; the job lease decides who
        admits it.  The winner journals the job and removes the file;
        losers leave the file alone (if the winner dies first, its lease
        expires and the next shard to claim re-admits — the journal's
        first-submit-wins rule absorbs the overlap)."""
        admitted: list[Job] = []
        try:
            names = sorted(os.listdir(self.paths.inbox))
        except FileNotFoundError:
            return admitted
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.paths.inbox, name)
            try:
                with open(path) as f:
                    payload = json.load(f)
                spec = JobSpec.from_json(payload.get("spec", {}))
                job_id = payload.get("id") or new_job_id()
                priority = int(payload.get("priority", 0))
                submitted_ts = payload.get("ts")
            except (json.JSONDecodeError, TypeError, ValueError, OSError) as exc:
                self._reject_malformed(path, name, exc)
                continue
            if self.store.get(job_id) is not None:
                self._remove_quiet(path)  # duplicate; already journaled
                continue
            if self.leases.acquire(job_id) is None:
                continue  # a peer is admitting this one
            self.metrics.inc("jobs_submitted")
            job = self._journal_admission(spec, job_id, priority, submitted_ts)
            if job.state == QUEUED:
                admitted.append(job)
            else:
                self.leases.release(job_id)  # rejected at admission
            self._remove_quiet(path)
        return admitted

    def _poll_control(self) -> None:
        """Owner-only cancel processing.

        A cancel for a job a live peer owns is left in place for that
        owner; a cancel for an unknown or terminal job is consumed (with
        the base bookkeeping)."""
        try:
            names = sorted(os.listdir(self.paths.control))
        except FileNotFoundError:
            return
        for name in names:
            if not name.startswith("cancel-") or not name.endswith(".json"):
                continue
            path = os.path.join(self.paths.control, name)
            try:
                with open(path) as f:
                    job_id = json.load(f).get("id")
            except (json.JSONDecodeError, OSError):
                continue
            job = self.store.get(job_id)
            if job is not None and not job.terminal and not self.leases.owns(job_id):
                continue  # the owning peer will consume this file
            self.cancel(job_id)
            self._remove_quiet(path)

    @staticmethod
    def _remove_quiet(path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass  # a racing peer already consumed it

    # -- daemon loop -----------------------------------------------------------
    def _clear_stop(self) -> None:
        """Leave the stop file: one shard exiting must not un-stop peers.

        The fleet launcher (``repro fleet serve`` / the drill harness)
        owns the stop file's lifecycle instead."""

    # -- metrics ---------------------------------------------------------------
    def write_metrics(self) -> dict:
        counts = self.store.counts()
        self.metrics.set_gauge("queue_depth", counts[QUEUED])
        self.metrics.set_gauge("running", counts[RUNNING])
        self.metrics.set_gauge("warm_cache_entries", len(self.warm.keys()))
        self.metrics.set_gauge(
            "pending_retries", self.supervisor.pending_retries()
        )
        self.metrics.set_gauge("leases_held", len(self.leases.owned_ids()))
        try:
            snapshot = self.metrics.write(
                self.paths.shard_metrics(self.shard),
                shard=self.shard,
                queue_depth=counts[QUEUED],
                jobs=counts,
                warm_fingerprints=self.warm.per_key(),
            )
        except ResourceExhaustedError:
            # Observability write on a dry disk: shed it, keep serving
            # (mirrors PlacementService.write_metrics).
            self.metrics.inc("metrics_writes_shed")
            return self.metrics.snapshot()
        try:
            write_fleet_metrics(self.paths, counts=counts)
        except (OSError, ResourceExhaustedError):
            pass  # aggregation is best-effort; per-shard files are canonical
        return snapshot


# -- fleet-wide metrics + status --------------------------------------------
def _merge_histograms(into: dict, add: dict) -> None:
    for name, hist in add.items():
        cur = into.get(name)
        if cur is None:
            into[name] = dict(hist)
            continue
        cur["count"] += hist["count"]
        cur["sum"] = round(cur["sum"] + hist["sum"], 6)
        cur["min"] = min(cur["min"], hist["min"])
        cur["max"] = max(cur["max"], hist["max"])
        cur["mean"] = round(cur["sum"] / cur["count"], 6) if cur["count"] else 0.0
        # Percentiles don't compose across shards; drop them rather than
        # report a number that is not a percentile of anything.
        cur.pop("p50", None)
        cur.pop("p90", None)


def write_fleet_metrics(
    paths: FleetPaths, counts: dict | None = None
) -> dict:
    """Merge every shard's metrics snapshot into ``fleet_metrics.json``.

    Counters and gauges sum across shards; histograms combine
    count/sum/min/max (cross-shard percentiles are dropped, not faked).
    Fleet-wide job counts come from the shared journal (or the caller's
    already-refreshed view).  Any shard may call this concurrently —
    the write is atomic and last-writer-wins on a fresh read of the
    same inputs.
    """
    if counts is None:
        counts = JobStore(paths.journal).load().counts()
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    warm_fingerprints: dict[str, dict] = {}
    shards: dict[str, dict] = {}
    try:
        names = sorted(os.listdir(paths.shards))
    except FileNotFoundError:
        names = []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(paths.shards, name)) as f:
                snap = json.load(f)
        except (json.JSONDecodeError, OSError):
            continue  # shard mid-replace; next aggregation catches it
        shard = snap.get("shard", name[:-5])
        shards[shard] = {
            "ts": snap.get("ts"),
            "jobs": snap.get("jobs", {}),
            "queue_depth": snap.get("queue_depth"),
        }
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        _merge_histograms(histograms, snap.get("histograms", {}))
        for key, counts_by_event in snap.get("warm_fingerprints", {}).items():
            merged = warm_fingerprints.setdefault(key, {})
            for event, value in counts_by_event.items():
                merged[event] = merged.get(event, 0) + value
    payload = {
        "ts": round(time.time(), 3),
        "n_shards": len(shards),
        "jobs": counts,
        "shards": shards,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "warm_fingerprints": dict(sorted(warm_fingerprints.items())),
    }
    write_json_atomic(paths.fleet_metrics, payload)
    return payload


def fleet_status(service_dir: str) -> dict:
    """Read-only fleet view for ``repro fleet status`` (no daemon needed)."""
    paths = FleetPaths(service_dir)
    store = JobStore(paths.journal).load()
    now = time.time()
    leases = []
    try:
        names = sorted(os.listdir(paths.leases))
    except FileNotFoundError:
        names = []
    for name in names:
        if not name.endswith(".lease"):
            continue
        try:
            with open(os.path.join(paths.leases, name)) as f:
                lease = json.load(f)
        except (json.JSONDecodeError, OSError):
            continue
        lease["expired"] = now >= float(lease.get("expires", 0.0))
        leases.append(lease)
    jobs = [
        {
            "id": j.id,
            "state": j.state,
            "shard": j.shard,
            "attempts": j.attempts,
            "hpwl": j.hpwl,
        }
        for j in store.jobs()
    ]
    metrics = None
    if os.path.exists(paths.fleet_metrics):
        with open(paths.fleet_metrics) as f:
            metrics = json.load(f)
    quarantine = read_jsonl(paths.quarantine)
    return {
        "counts": store.counts(),
        "jobs": jobs,
        "leases": leases,
        "quarantined": [q.get("id") for q in quarantine],
        "fleet_metrics": metrics,
    }
