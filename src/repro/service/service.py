"""The placement service daemon and its file-based client protocol.

Protocol (everything under one ``--service-dir``):

- **submit** — a client drops ``inbox/<ns>-<job_id>.json`` (atomic
  tmp+rename) holding the job id, spec, and priority.  The daemon admits
  inbox files in filename order (the ``<ns>`` prefix is a nanosecond
  timestamp, so admission is FIFO) and journals them; when the queue is
  at ``max_queue`` the job is journaled FAILED with a structured
  backpressure error instead — admission control, not silent loss.
- **cancel** — a client drops ``control/cancel-<job_id>.json``.  A
  QUEUED job flips to CANCELLED; a RUNNING or finished job is left
  alone and the refusal is journaled as an event in the metrics.
- **stop** — the ``control/stop`` file asks the daemon to exit after
  in-flight jobs finish.
- **results** — the daemon writes ``results/<job_id>.json`` when a job
  reaches a terminal state; ``jobs.jsonl`` carries every transition and
  ``metrics.json`` the latest metrics snapshot.

Each job runs in its own run dir under ``runs/<job_id>/`` with the full
PR 1 checkpoint/resume machinery, so killing the daemon mid-job and
restarting resumes RUNNING jobs from their checkpoints (the recovery
pass re-queues them; the executor sees the existing manifest and resumes)
without re-running completed ones.

Self-healing (PR 5): every attempt carries a heartbeat; the daemon's
poll cycle runs the :class:`~repro.service.supervisor.JobSupervisor`
watchdog (stalled attempts are cancelled, hard-hung ones force-abandoned)
and re-enqueues retries whose backoff elapsed.  Transient failures retry
with exponential backoff, poison jobs land in QUARANTINED, results are
independently verified (``repro.verify``), and a verification failure on
a run that used warm artifacts or the shared terminal cache triggers one
*cold* retry — fresh run dir, no warm injection, no shared cache — before
the job is failed for real.  Malformed inbox files older than
``reject_malformed_after`` are quarantined into ``inbox/.rejected/``
with a reason sidecar instead of being re-parsed forever.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import replace

from repro.runtime.budget import StageBudget
from repro.runtime.errors import PlacementError, ResourceExhaustedError
from repro.service.governor import ResourceGovernor
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
    JobStore,
    ServicePaths,
    new_job_id,
    write_json_atomic,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import JobRunContext, Scheduler
from repro.service.supervisor import JobSupervisor
from repro.service.warm import WarmArtifactCache


# -- client side (no daemon required) ---------------------------------------
def submit_job(
    service_dir: str,
    spec: JobSpec,
    priority: int = 0,
    job_id: str | None = None,
) -> str:
    """Drop one submission into the service inbox; returns the job id."""
    spec.validate()
    paths = ServicePaths(service_dir).ensure()
    job_id = job_id or new_job_id()
    payload = {
        "id": job_id,
        "priority": priority,
        "ts": time.time(),
        "spec": spec.to_json(),
    }
    final = os.path.join(paths.inbox, f"{time.time_ns():020d}-{job_id}.json")
    write_json_atomic(final, payload)
    return job_id


def request_cancel(service_dir: str, job_id: str) -> None:
    paths = ServicePaths(service_dir).ensure()
    write_json_atomic(
        os.path.join(paths.control, f"cancel-{job_id}.json"), {"id": job_id}
    )


def request_stop(service_dir: str) -> None:
    paths = ServicePaths(service_dir).ensure()
    write_json_atomic(paths.stop_file, {"ts": time.time()})


def read_result(service_dir: str, job_id: str) -> dict | None:
    path = ServicePaths(service_dir).result_file(job_id)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def wait_for_result(
    service_dir: str, job_id: str, timeout: float, poll: float = 0.25
) -> dict | None:
    """Poll until the job's result file appears (None on timeout)."""
    deadline = time.monotonic() + timeout
    while True:
        result = read_result(service_dir, job_id)
        if result is not None:
            return result
        if time.monotonic() >= deadline:
            return None
        time.sleep(poll)


class PlacementService:
    """The daemon: admission, scheduling, warm reuse, metrics, recovery."""

    def __init__(
        self,
        service_dir: str,
        workers: int = 1,
        max_queue: int = 64,
        poll_interval: float = 0.2,
        stall_seconds: float | None = None,
        stall_grace: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.5,
        verify_results: bool = True,
        reject_malformed_after: float = 5.0,
        paths: ServicePaths | None = None,
        inference_broker: bool = False,
        inference_max_batch: int = 64,
        inference_coalesce_us: int = 2000,
        disk_quota_bytes: int | None = None,
        mem_quota_bytes: int | None = None,
        high_water: float = 0.9,
        low_water: float = 0.75,
        retention_runs: int | None = None,
        rejected_ttl: float = 3600.0,
        warm_quota_bytes: int | None = None,
        terminal_cache_quota_bytes: int | None = None,
        journal_quota_bytes: int | None = None,
        rundir_projection_bytes: int = 4 << 20,
        resource_sample_interval: float = 1.0,
    ) -> None:
        self.paths = (paths or ServicePaths(service_dir)).ensure()
        self.store = JobStore(self.paths.journal).load()
        self.metrics = ServiceMetrics()
        self.warm = WarmArtifactCache(self.paths.warm)
        self.max_queue = max_queue
        self.poll_interval = poll_interval
        self.verify_results = verify_results
        self.reject_malformed_after = reject_malformed_after
        #: daemon-owned shared inference broker (None until ``run()``
        #: starts it): every scheduler slot's job evaluates through the
        #: same broker, so concurrent jobs coalesce into cross-job
        #: batches.  Note broker mode runs the fixed-tile forward, whose
        #: results differ from the broker-off untiled path — enable it
        #: per service directory, not per job, so warm artifacts and
        #: resumes stay internally consistent.
        self.inference_broker = None
        self._broker_enabled = bool(inference_broker)
        self._broker_opts = {
            "max_batch": inference_max_batch,
            "coalesce_us": inference_coalesce_us,
        }
        self._broker_stats_cache: dict | None = None
        self._broker_stats_ts = 0.0
        self.scheduler = Scheduler(
            self._execute, self._dispatchable, workers=workers
        )
        self.supervisor = JobSupervisor(
            self.store,
            self.metrics,
            self.paths.quarantine,
            scheduler=self.scheduler,
            finalize=self._write_result,
            stall_seconds=stall_seconds,
            stall_grace=stall_grace,
            max_retries=max_retries,
            backoff_base=backoff_base,
        )
        # Resource governance: quotas default to None (inert monitoring),
        # so a service without explicit limits behaves exactly as before.
        # A fleet shard constructs its LeaseManager before calling up, so
        # the governor compacts shared files under the fleet GC lease.
        self.governor = ResourceGovernor(
            self.paths,
            self.store,
            self.metrics,
            self.warm,
            disk_quota_bytes=disk_quota_bytes,
            mem_quota_bytes=mem_quota_bytes,
            high_water=high_water,
            low_water=low_water,
            retention_runs=retention_runs,
            rejected_ttl=rejected_ttl,
            warm_quota_bytes=warm_quota_bytes,
            terminal_cache_quota_bytes=terminal_cache_quota_bytes,
            journal_quota_bytes=journal_quota_bytes,
            rundir_projection_bytes=rundir_projection_bytes,
            sample_interval=resource_sample_interval,
            leases=getattr(self, "leases", None),
        ).install()
        # Pressure pauses *dispatch* (queued jobs requeue), never
        # running jobs; admission shedding is handled at the journal.
        self.scheduler.dispatch_gate = self.governor.dispatch_ok
        self._recover()

    # -- recovery --------------------------------------------------------------
    def _recover(self) -> None:
        """Re-queue interrupted work from the journal.

        RUNNING jobs were in flight when the previous daemon died: they
        go back to QUEUED (journaled, reason-tagged) and — because their
        run dir already holds a manifest — the executor resumes them from
        their checkpoints rather than starting over.  Jobs already in a
        terminal state are left exactly as the journal says.
        """
        for job in self.store.in_state(RUNNING):
            self.store.transition(job.id, QUEUED, reason="daemon_restart")
            self.metrics.inc("jobs_recovered")
        for job in self.store.in_state(QUEUED):
            self.scheduler.enqueue(job)

    # -- admission + control ---------------------------------------------------
    def poll(self) -> None:
        """One daemon cycle: admit inbox, apply control, supervise,
        dispatch."""
        self.governor.poll()
        admitted = self._poll_inbox()
        self._poll_control()
        self.supervisor.check_stalls()
        for job_id in self.supervisor.due_retries():
            job = self.store.get(job_id)
            if job is not None and job.state == QUEUED:
                self.scheduler.enqueue(job)
        # Dispatch after control so a cancel dropped alongside (or before)
        # a submission deterministically beats the dispatch.
        for job in admitted:
            if job.state == QUEUED:
                self.scheduler.enqueue(job)
        self.write_metrics()

    def _poll_inbox(self) -> list[Job]:
        admitted: list[Job] = []
        try:
            names = sorted(os.listdir(self.paths.inbox))
        except FileNotFoundError:
            return admitted
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.paths.inbox, name)
            try:
                with open(path) as f:
                    payload = json.load(f)
                spec = JobSpec.from_json(payload.get("spec", {}))
                job_id = payload.get("id") or new_job_id()
                priority = int(payload.get("priority", 0))
                submitted_ts = payload.get("ts")
            except (json.JSONDecodeError, TypeError, ValueError, OSError) as exc:
                # Usually a half-written submission that finishes by the
                # next cycle — but a file that *stays* unparseable would
                # be retried forever, so past the grace window it is
                # quarantined out of the inbox with a structured reason.
                self._reject_malformed(path, name, exc)
                continue
            self.metrics.inc("jobs_submitted")
            if self.store.get(job_id) is not None:
                os.remove(path)  # duplicate redelivery; already journaled
                continue
            job = self._journal_admission(
                spec, job_id, priority, submitted_ts
            )
            if job.state == QUEUED:
                admitted.append(job)
            os.remove(path)
        return admitted

    def _journal_admission(
        self, spec: JobSpec, job_id: str, priority: int, submitted_ts
    ) -> Job:
        """Journal one parsed submission: admit it QUEUED, or reject it
        FAILED with a structured backpressure error when the queue is
        full.  Shared by the single-daemon inbox poll and the fleet
        shard's claim-gated admission."""
        pressure = self.governor.admission_blocked()
        if pressure is not None:
            # Load shedding: above the high-water mark new work is
            # refused with a structured, client-visible reason instead of
            # being admitted onto a disk that cannot hold its run dir.
            # Hysteresis in the governor resumes admission below the
            # low-water mark.
            error = {
                "kind": "ResourcePressure",
                "reason": "RESOURCE_PRESSURE",
                "message": f"admission shed: {pressure}",
            }
            job = self.store.add(
                spec, job_id=job_id, priority=priority, state=FAILED,
                error=error, submitted_ts=submitted_ts,
            )
            self._write_result(job)
            self.metrics.inc("jobs_rejected")
            self.metrics.inc("jobs_rejected_pressure")
            return job
        if self.store.queue_depth() >= self.max_queue:
            error = {
                "kind": "Backpressure",
                "message": (
                    f"admission rejected: queue depth "
                    f"{self.store.queue_depth()} >= max_queue "
                    f"{self.max_queue}"
                ),
            }
            job = self.store.add(
                spec, job_id=job_id, priority=priority, state=FAILED,
                error=error, submitted_ts=submitted_ts,
            )
            self._write_result(job)
            self.metrics.inc("jobs_rejected")
        else:
            job = self.store.add(
                spec, job_id=job_id, priority=priority,
                submitted_ts=submitted_ts,
            )
            self.metrics.inc("jobs_admitted")
        return job

    def _reject_malformed(self, path: str, name: str, exc: Exception) -> None:
        """Quarantine an inbox file that outlived the half-written grace."""
        try:
            age = time.time() - os.path.getmtime(path)
        except OSError:
            return  # racing remove/rename; nothing left to quarantine
        if age <= self.reject_malformed_after:
            return  # still plausibly mid-write; retry next cycle
        os.makedirs(self.paths.rejected, exist_ok=True)
        dest = os.path.join(self.paths.rejected, name)
        try:
            os.replace(path, dest)
        except OSError:
            return
        write_json_atomic(
            dest + ".reason.json",
            {
                "name": name,
                "kind": type(exc).__name__,
                "reason": str(exc),
                "age_seconds": round(age, 3),
                "ts": time.time(),
            },
        )
        self.metrics.inc("submissions_rejected_malformed")

    def _poll_control(self) -> None:
        try:
            names = sorted(os.listdir(self.paths.control))
        except FileNotFoundError:
            return
        for name in names:
            if not name.startswith("cancel-") or not name.endswith(".json"):
                continue
            path = os.path.join(self.paths.control, name)
            try:
                with open(path) as f:
                    job_id = json.load(f).get("id")
            except (json.JSONDecodeError, OSError):
                continue
            self.cancel(job_id)
            os.remove(path)

    def cancel(self, job_id: str) -> bool:
        """Cancel a QUEUED job; refuse (journaled in metrics) otherwise."""
        job = self.store.get(job_id)
        if job is None:
            self.metrics.inc("cancel_unknown")
            return False
        if job.state != QUEUED:
            # RUNNING jobs are not preempted (the flow has no safe
            # interruption point we control from outside); terminal jobs
            # have nothing to cancel.
            self.metrics.inc("cancel_refused")
            return False
        self.store.transition(job_id, CANCELLED)
        self._write_result(self.store.get(job_id))
        self.metrics.inc("jobs_cancelled")
        return True

    def stop_requested(self) -> bool:
        return os.path.exists(self.paths.stop_file)

    # -- execution -------------------------------------------------------------
    def _dispatchable(self, job_id: str) -> bool:
        job = self.store.get(job_id)
        return job is not None and job.state == QUEUED

    def _still_owner(self, job_id: str) -> bool:
        """Fencing hook: does this daemon still own *job_id*?

        The single-daemon service owns everything it journals.  The
        fleet shard overrides this with a lease check so an attempt
        whose lease was stolen (after a stall or partition) cannot
        journal transitions or publish artifacts for a job a peer now
        owns — its late writes are dropped, counted, and harmless.
        """
        return True

    def _execute(self, job_id: str) -> None:
        """Run one job attempt; never raises (scheduler contract).

        The attempt body routes every failure it understands through the
        supervisor; this wrapper is the last line of the contract — an
        exception escaping the bookkeeping itself (e.g. the disk filling
        up while *recording* a result) is counted, and the daemon lives.
        """
        try:
            self._execute_attempt(job_id)
        except Exception:  # noqa: BLE001 — workers must survive anything
            self.metrics.inc("executor_errors")

    def _execute_attempt(self, job_id: str) -> None:
        """One attempt end to end.  Failures are routed through the
        supervisor, which decides retry / quarantine / fail."""
        job = self.store.get(job_id)
        if not self._still_owner(job.id):
            self.metrics.inc("stale_lease_drops")
            return
        run_dir = self.paths.run_dir(job.id)
        attempt = job.attempts + 1
        cold = self.supervisor.is_cold(job.id)
        if cold:
            # A verification failure implicated reused artifacts: wipe the
            # run dir so nothing from the suspect attempt survives.
            shutil.rmtree(run_dir, ignore_errors=True)
        resume = os.path.exists(os.path.join(run_dir, "manifest.json"))
        started = time.perf_counter()
        warm_hit = False
        heartbeat = self.supervisor.begin(job.id, attempt)
        try:
            try:
                name, design = job.spec.build_design()
                config = job.spec.build_config(
                    terminal_cache_path=(
                        None if cold else self.paths.terminal_cache
                    )
                )
                if self.verify_results:
                    config = replace(config, verify_results=True)
                self.store.transition(
                    job.id, RUNNING, attempt=attempt, resume=resume,
                    design=name, cold=cold,
                )
                self.write_metrics()
                ctx = JobRunContext(
                    run_dir,
                    config,
                    design,
                    resume=resume,
                    job_budget=StageBudget("job", job.spec.budget_seconds),
                    heartbeat=heartbeat,
                    inference_broker=self.inference_broker,
                )
                warm_key = self.warm.key(config, design)
                if not resume and not cold:
                    warm_hit = self.warm.inject(warm_key, ctx)
                self.metrics.inc("warm_hits" if warm_hit else "warm_misses")

                from repro.core.flow import MCTSGuidedPlacer
                from repro.runtime import faults

                # A per-job fault plan (chaos drills) is installed only
                # when present, so it never clears a plan installed
                # around the whole daemon by the process-level drill.
                fault_plan = job.spec.build_fault_plan()
                if fault_plan is not None:
                    with faults.inject(fault_plan):
                        result = MCTSGuidedPlacer(config).place(
                            design, context=ctx
                        )
                else:
                    result = MCTSGuidedPlacer(config).place(
                        design, context=ctx
                    )
            except PlacementError as exc:
                self._resolve_attempt_failure(job, attempt, started, {
                    "kind": type(exc).__name__,
                    "message": exc.message,
                    "stage": exc.stage,
                    "exit_code": exc.exit_code,
                    "details": {k: repr(v) for k, v in exc.details.items()},
                }, warm_hit=warm_hit)
                return
            except Exception as exc:  # noqa: BLE001 — jobs must not kill workers
                self._resolve_attempt_failure(
                    job, attempt, started,
                    {"kind": type(exc).__name__, "message": str(exc)},
                    warm_hit=warm_hit,
                )
                return
        finally:
            self.supervisor.end(job.id, attempt)

        if not self.supervisor.attempt_current(job.id, attempt):
            # The watchdog force-abandoned this attempt and already
            # resolved the job (it may even be running a fresh attempt);
            # this thread's late result must not clobber that state.
            self.metrics.inc("stale_attempts_dropped")
            return
        if not self._still_owner(job.id):
            # The lease was stolen mid-attempt: a peer shard now owns
            # this job and may already be re-running it from the shared
            # run dir's checkpoints.  Both attempts compute byte-identical
            # artifacts (the flow is deterministic and every run-dir
            # write is an atomic rename), so the only thing to do is
            # refuse to journal a transition the peer would also journal.
            self.metrics.inc("stale_lease_drops")
            return
        seconds = time.perf_counter() - started
        self.supervisor.clear_cold(job.id)
        try:
            # Publishing the warm entry is itself a durable write: a full
            # disk here (after the guarded write's own emergency GC +
            # retry) fails the *attempt* — retryable, supervisor-routed —
            # not the worker thread or the daemon.
            self.warm.store(warm_key, run_dir)
        except ResourceExhaustedError as exc:
            self._resolve_attempt_failure(job, attempt, started, {
                "kind": type(exc).__name__,
                "message": exc.message,
                "stage": exc.stage,
                "exit_code": exc.exit_code,
                "details": {k: repr(v) for k, v in exc.details.items()},
            }, warm_hit=warm_hit)
            return
        best = min(result.hpwl, result.search.best_terminal_wirelength)
        for stage, stage_seconds in result.stage_seconds.items():
            if stage_seconds > 0.0:
                self.metrics.observe(f"stage_seconds.{stage}", stage_seconds)
        self.metrics.observe("job_seconds", seconds)
        for event in result.events.of("terminal_cache"):
            self.metrics.inc("terminal_cache_hits", event.data["hits"])
            self.metrics.inc("terminal_cache_misses", event.data["misses"])
        self.metrics.inc("exact_evaluations", result.search.n_exact_evaluations)
        self.metrics.inc(
            "surrogate_evaluations", result.search.n_surrogate_evaluations
        )
        if result.search.surrogate_spearman is not None:
            self.metrics.observe(
                "surrogate_spearman", result.search.surrogate_spearman
            )
        self.metrics.inc("degradations", len(result.events.of("degradation")))
        if result.verification is not None:
            self.metrics.inc("jobs_verified")
        self.store.transition(
            job.id, DONE,
            hpwl=result.hpwl,
            warm_hit=warm_hit,
            seconds=round(seconds, 3),
            error=None,  # clear the last retried attempt's error
        )
        self.metrics.inc("jobs_done")
        self._write_result(
            self.store.get(job.id),
            hpwl=result.hpwl,
            best_hpwl=best,
            n_macro_groups=result.n_macro_groups,
            verified=result.verification is not None,
            stage_seconds={
                k: round(v, 6) for k, v in result.stage_seconds.items()
            },
        )
        self.write_metrics()

    def _resolve_attempt_failure(
        self,
        job: Job,
        attempt: int,
        started: float,
        error: dict,
        warm_hit: bool = False,
    ) -> None:
        """Route one attempt's failure through the supervisor."""
        seconds = round(time.perf_counter() - started, 3)
        if not self.supervisor.attempt_current(job.id, attempt):
            self.metrics.inc("stale_attempts_dropped")
            return
        if not self._still_owner(job.id):
            self.metrics.inc("stale_lease_drops")
            return
        if error.get("kind") == "VerificationError":
            self.metrics.inc("verification_failures")
            # A wrong result on a run that reused anything — warm
            # artifacts or the fleet terminal cache — gets exactly one
            # retry with all reuse disabled, in case the reused data
            # (not the job) was the poison.
            reused = warm_hit or os.path.exists(self.paths.terminal_cache)
            if reused and not self.supervisor.is_cold(job.id):
                self.supervisor.set_cold(job.id)
                self.supervisor.schedule_retry(
                    job, error, reason="verify_cold_retry", seconds=seconds
                )
                self.metrics.inc("verify_cold_retries")
                self.write_metrics()
                return
        action = self.supervisor.resolve_failure(job, error, seconds=seconds)
        if action != "retry":
            self.supervisor.clear_cold(job.id)
            self._write_result(self.store.get(job.id))
        self.write_metrics()

    def _write_result(self, job: Job, **extra) -> None:
        payload = {
            "id": job.id,
            "state": job.state,
            "spec": job.spec.to_json(),
            "priority": job.priority,
            "attempts": job.attempts,
            "warm_hit": job.warm_hit,
            "seconds": job.seconds,
            "error": job.error,
            **extra,
        }
        write_json_atomic(self.paths.result_file(job.id), payload)

    # -- metrics ---------------------------------------------------------------
    def _fold_broker_metrics(self) -> None:
        """Mirror broker-side counters into the service metrics.

        The ``stats()`` round-trip doubles as the broker heartbeat; it is
        rate-limited to once per second (``write_metrics`` is called from
        worker threads too) and a degraded/dead broker simply reports
        ``inference_broker_up = 0`` plus the parent-side lifecycle state.
        """
        broker = self.inference_broker
        if broker is None:
            return
        now = time.monotonic()
        if now - self._broker_stats_ts >= 1.0:
            self._broker_stats_ts = now
            self._broker_stats_cache = broker.stats(timeout=2.0)
        stats = self._broker_stats_cache
        self.metrics.set_gauge(
            "inference_broker_up", 0 if stats is None else 1
        )
        if stats is None:
            stats = broker.handle_stats()
        for key in (
            "queue_depth", "active_clients", "requests", "states",
            "batches", "coalesced_batches", "batch_size_mean",
            "batch_size_p50", "batch_size_p90", "batch_size_max",
            "wait_us_mean", "wait_us_p90", "wait_us_max",
            "respawns", "unknown_weights",
        ):
            if key in stats:
                self.metrics.set_gauge(f"inference_{key}", stats[key])

    def write_metrics(self) -> dict:
        counts = self.store.counts()
        self.metrics.set_gauge("queue_depth", counts[QUEUED])
        self.metrics.set_gauge("running", counts[RUNNING])
        self.metrics.set_gauge("warm_cache_entries", len(self.warm.keys()))
        self.metrics.set_gauge(
            "pending_retries", self.supervisor.pending_retries()
        )
        self._fold_broker_metrics()
        try:
            return self.metrics.write(
                self.paths.metrics,
                queue_depth=counts[QUEUED],
                jobs=counts,
                warm_fingerprints=self.warm.per_key(),
            )
        except ResourceExhaustedError:
            # The metrics snapshot is observability, not state: on a
            # disk too full even after emergency GC, shed the write and
            # keep serving — the next cycle retries.
            self.metrics.inc("metrics_writes_shed")
            return self.metrics.snapshot()

    # -- daemon loop -----------------------------------------------------------
    def run(
        self,
        drain: bool = False,
        max_seconds: float | None = None,
    ) -> dict:
        """Serve until stopped.

        *drain* exits once the inbox is empty and every job is terminal
        (the batch mode CI and tests use); otherwise the daemon serves
        until ``control/stop`` appears or *max_seconds* elapses.  Returns
        the final metrics snapshot.
        """
        started = time.monotonic()
        if self._broker_enabled and self.inference_broker is None:
            from repro.inference import InferenceBroker

            self.inference_broker = InferenceBroker(
                events=self.metrics_events(), **self._broker_opts
            ).start()
        self.scheduler.start()
        try:
            while True:
                try:
                    self.poll()
                except ResourceExhaustedError:
                    # A poll cycle's durable write ran the disk dry even
                    # after emergency GC.  The daemon stays up: shedding
                    # is already engaged (the governor sampled en route),
                    # and the next cycle retries once GC or the operator
                    # frees space.
                    self.metrics.inc("poll_cycles_shed")
                if drain and self._drained():
                    break
                if self.stop_requested():
                    break
                if (max_seconds is not None
                        and time.monotonic() - started >= max_seconds):
                    break
                time.sleep(self.poll_interval)
        finally:
            self.scheduler.stop()
            broker, self.inference_broker = self.inference_broker, None
            if broker is not None:
                broker.close()
            self._clear_stop()
        return self.write_metrics()

    def metrics_events(self):
        """Event sink for daemon-owned infrastructure (broker lifecycle):
        a counting adapter so degradations surface in metrics.json even
        though the daemon itself has no run-dir event log."""
        service = self

        class _Sink:
            def emit(self, kind: str, **data) -> None:
                service.metrics.inc(f"events_{kind}")

        return _Sink()

    def _clear_stop(self) -> None:
        """Consume the stop file on exit (fleet shards leave it in
        place so one shard's exit does not un-stop its peers)."""
        try:
            os.remove(self.paths.stop_file)
        except FileNotFoundError:
            pass

    def _drained(self) -> bool:
        if not self.scheduler.idle() or self.store.active():
            return False
        try:
            inbox_empty = not any(
                n.endswith(".json") for n in os.listdir(self.paths.inbox)
            )
        except FileNotFoundError:
            inbox_empty = True
        return inbox_empty
