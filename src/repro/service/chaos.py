"""Chaos drill: inject faults into a live service, assert self-healing.

Each scenario boots a fresh one-worker daemon in its own service dir,
installs a deterministic :class:`~repro.runtime.faults.FaultPlan`, runs
the daemon to drain, and checks hard gates:

- **no hangs** — every job reaches a terminal state before the drain's
  wall-clock cap;
- **no silent wrong results** — every DONE placement was independently
  verified in-flow (``verify_results``), and its HPWL is *bit-identical*
  to the unfaulted baseline run of the same spec;
- **bounded failure** — transiently-faulted jobs end DONE after retry;
  the deliberately poisoned job ends QUARANTINED, never FAILED-silently
  and never retried forever.

Scenarios (one per new fault site, plus the poison-path control):

=================== ========================================================
baseline            no faults; produces the reference HPWL
worker_kill         ``pool.worker_kill`` hard-kills a terminal worker
                    mid-wave → pool respawns, job DONE on attempt 1
checkpoint_corrupt  ``checkpoint.corrupt`` flips a byte of
                    ``calibration.json`` after its digest was recorded,
                    then ``trainer.kill`` fails the attempt → the retry's
                    resume detects the corruption, restarts the stage
                    cold, and finishes DONE
stage_stall         ``stall.freeze`` stops the job's heartbeat → the
                    watchdog cancels the attempt (structured
                    ``StageStallError``), the retry finishes DONE
warm_corrupt        job A populates the warm cache and ``warm.corrupt``
                    flips a byte of the entry; job B detects it before
                    injection, discards the entry, and runs cold to DONE
poison              ``trainer.kill`` on every attempt → retries exhaust
                    and the job is QUARANTINED (journalled)
=================== ========================================================

Used by ``repro chaos``, the CI ``chaos-smoke`` job, and
``benchmarks/bench_supervision.py``.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.runtime import faults
from repro.runtime.faults import Fault, FaultPlan
from repro.service.jobs import DONE, QUARANTINED, JobSpec
from repro.service.service import PlacementService, submit_job

#: small-but-real drill spec: one full flow run in well under a second
DEFAULT_SPEC = JobSpec(
    circuit="ibm01", scale=0.004, macro_scale=0.04, preset="fast", seed=3
)


def _check(checks: list, name: str, ok: bool, detail: str = "") -> bool:
    checks.append({"name": name, "ok": bool(ok), "detail": detail})
    return bool(ok)


def _run_scenario(
    root: str,
    name: str,
    plan_faults: list[Fault],
    *,
    spec: JobSpec,
    n_jobs: int = 1,
    terminal_workers: int = 1,
    stall_seconds: float | None = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    max_seconds: float = 60.0,
) -> tuple[PlacementService, list, float, FaultPlan]:
    service_dir = os.path.join(root, name)
    service = PlacementService(
        service_dir,
        workers=1,
        poll_interval=0.02,
        stall_seconds=stall_seconds,
        max_retries=max_retries,
        backoff_base=backoff_base,
    )
    job_spec = replace(spec, terminal_workers=terminal_workers)
    job_ids = [submit_job(service_dir, job_spec) for _ in range(n_jobs)]
    plan = FaultPlan(*plan_faults)
    started = time.perf_counter()
    with faults.inject(plan):
        service.run(drain=True, max_seconds=max_seconds)
    elapsed = time.perf_counter() - started
    jobs = [service.store.get(job_id) for job_id in job_ids]
    return service, jobs, elapsed, plan


def run_chaos_drill(
    root: str,
    *,
    spec: JobSpec | None = None,
    stall_seconds: float = 0.2,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    max_seconds: float = 60.0,
) -> dict:
    """Run every scenario under *root*; returns the machine-readable report.

    ``report["ok"]`` is the drill gate: True only when every scenario's
    jobs terminated (no hangs), every DONE HPWL matched the baseline
    bit-for-bit, and every fault produced exactly the designed recovery.
    """
    spec = spec if spec is not None else DEFAULT_SPEC
    os.makedirs(root, exist_ok=True)
    report: dict = {"spec": spec.to_json(), "scenarios": [], "ok": True}

    def finish(name, service, jobs, elapsed, checks, fired):
        ok = all(c["ok"] for c in checks)
        report["scenarios"].append(
            {
                "name": name,
                "ok": ok,
                "seconds": round(elapsed, 3),
                "faults_fired": fired,
                "jobs": [
                    {
                        "id": j.id,
                        "state": j.state,
                        "attempts": j.attempts,
                        "hpwl": j.hpwl,
                        "error": (j.error or {}).get("kind"),
                    }
                    for j in jobs
                ],
                "checks": checks,
            }
        )
        report["ok"] = report["ok"] and ok

    common = dict(
        spec=spec, max_retries=max_retries,
        backoff_base=backoff_base, max_seconds=max_seconds,
    )

    # -- baseline: the reference result every faulted run must reproduce
    service, jobs, elapsed, plan = _run_scenario(root, "baseline", [], **common)
    checks: list = []
    job = jobs[0]
    _check(checks, "terminal", job.terminal, job.state)
    _check(checks, "done_first_attempt",
           job.state == DONE and job.attempts == 1,
           f"state={job.state} attempts={job.attempts}")
    _check(checks, "verified",
           service.metrics.counter("jobs_verified") == 1,
           "independent verifier ran on the DONE result")
    reference_hpwl = job.hpwl
    report["reference_hpwl"] = reference_hpwl
    finish("baseline", service, jobs, elapsed, checks, plan.total_fired())
    if reference_hpwl is None:
        return report  # nothing to compare against; fail fast

    def check_done_identical(checks, job, attempts=None):
        _check(checks, "terminal", job.terminal, job.state)
        _check(checks, "done", job.state == DONE,
               f"state={job.state} error={(job.error or {}).get('kind')}")
        if attempts is not None:
            _check(checks, f"attempts_{attempts}", job.attempts == attempts,
                   f"attempts={job.attempts}")
        _check(checks, "hpwl_bit_identical", job.hpwl == reference_hpwl,
               f"{job.hpwl!r} vs baseline {reference_hpwl!r}")

    # -- worker_kill: hard worker death absorbed by the pool (no retry)
    service, jobs, elapsed, plan = _run_scenario(
        root, "worker_kill",
        [Fault("pool.worker_kill", at=1)],
        terminal_workers=2, **common,
    )
    checks = []
    _check(checks, "fault_fired", plan.total_fired("pool.worker_kill") == 1)
    # The service-level gate is outcome correctness: the dead worker must
    # cost neither the job nor the result.  Whether this tiny design's
    # single pooled task races the breakage (absorbed by respawn) or
    # completes first is executor timing; the *deterministic* respawn
    # sequence is drilled directly in tests/test_supervision.py.
    check_done_identical(checks, jobs[0], attempts=1)
    finish("worker_kill", service, jobs, elapsed, checks, plan.total_fired())

    # -- checkpoint_corrupt: bit-rot detected on resume, stage restarted
    service, jobs, elapsed, plan = _run_scenario(
        root, "checkpoint_corrupt",
        [
            # arrival 2 = calibration.json (after prototype.npz)
            Fault("checkpoint.corrupt", at=2),
            # fail the attempt a few episode waves later, forcing a
            # retry that must notice the corrupted checkpoint on resume
            Fault("trainer.kill", at=5),
        ],
        **common,
    )
    checks = []
    _check(checks, "fault_fired",
           plan.total_fired("checkpoint.corrupt") == 1
           and plan.total_fired("trainer.kill") == 1)
    check_done_identical(checks, jobs[0], attempts=2)
    _check(checks, "retried", service.metrics.counter("jobs_retried") == 1)
    finish("checkpoint_corrupt", service, jobs, elapsed, checks,
           plan.total_fired())

    # -- stage_stall: frozen heartbeat -> watchdog cancel -> retry
    service, jobs, elapsed, plan = _run_scenario(
        root, "stage_stall",
        [Fault("stall.freeze", at=1)],
        stall_seconds=stall_seconds, **common,
    )
    checks = []
    _check(checks, "fault_fired", plan.total_fired("stall.freeze") == 1)
    _check(checks, "stall_detected",
           service.metrics.counter("stalls_detected") >= 1)
    _check(checks, "stall_error_structured",
           any(
               (r.get("error") or {}).get("kind") == "StageStallError"
               for r in _journal(service)
           ),
           "journal records a StageStallError transition")
    check_done_identical(checks, jobs[0], attempts=2)
    finish("stage_stall", service, jobs, elapsed, checks, plan.total_fired())

    # -- warm_corrupt: poisoned cache entry discarded, job runs cold
    service, jobs, elapsed, plan = _run_scenario(
        root, "warm_corrupt",
        [Fault("warm.corrupt", at=1)],
        n_jobs=2, **common,
    )
    checks = []
    _check(checks, "fault_fired", plan.total_fired("warm.corrupt") == 1)
    _check(checks, "entry_discarded", service.warm.corruptions == 1,
           f"corruptions={service.warm.corruptions}")
    _check(checks, "no_warm_hit", not jobs[1].warm_hit,
           "corrupt entry must not be injected")
    for job in jobs:
        check_done_identical(checks, job, attempts=1)
    finish("warm_corrupt", service, jobs, elapsed, checks, plan.total_fired())

    # -- poison: every attempt fails -> quarantine, never an infinite loop
    service, jobs, elapsed, plan = _run_scenario(
        root, "poison",
        [Fault("trainer.kill", at=1, count=None)],
        **common,
    )
    checks = []
    job = jobs[0]
    _check(checks, "terminal", job.terminal, job.state)
    _check(checks, "quarantined", job.state == QUARANTINED, job.state)
    _check(checks, "attempts_exhausted", job.attempts == max_retries + 1,
           f"attempts={job.attempts}")
    _check(checks, "journalled",
           len(service.supervisor.quarantined()) == 1,
           "quarantine.jsonl has exactly one record")
    finish("poison", service, jobs, elapsed, checks, plan.total_fired())

    report["total_seconds"] = round(
        sum(s["seconds"] for s in report["scenarios"]), 3
    )
    return report


def _journal(service: PlacementService) -> list[dict]:
    from repro.utils.events import read_jsonl

    return read_jsonl(service.store.path)


def format_report(report: dict) -> str:
    """Human-readable drill summary (the ``repro chaos`` output)."""
    lines = [
        f"chaos drill: spec={report['spec']['circuit']} "
        f"preset={report['spec']['preset']} seed={report['spec']['seed']}",
        f"reference hpwl: {report.get('reference_hpwl')!r}",
    ]
    for scenario in report["scenarios"]:
        mark = "PASS" if scenario["ok"] else "FAIL"
        lines.append(
            f"  [{mark}] {scenario['name']:<20s} "
            f"{scenario['seconds']:6.2f}s  "
            f"jobs=" + ",".join(
                f"{j['state']}(a{j['attempts']})" for j in scenario["jobs"]
            )
        )
        for check in scenario["checks"]:
            if not check["ok"]:
                lines.append(
                    f"         FAILED check {check['name']}: {check['detail']}"
                )
    lines.append(
        f"result: {'OK' if report['ok'] else 'FAILED'} "
        f"({report.get('total_seconds', 0.0)}s total)"
    )
    return "\n".join(lines)
