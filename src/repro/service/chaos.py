"""Chaos drill: inject faults into a live service, assert self-healing.

Each scenario boots a fresh one-worker daemon in its own service dir,
installs a deterministic :class:`~repro.runtime.faults.FaultPlan`, runs
the daemon to drain, and checks hard gates:

- **no hangs** — every job reaches a terminal state before the drain's
  wall-clock cap;
- **no silent wrong results** — every DONE placement was independently
  verified in-flow (``verify_results``), and its HPWL is *bit-identical*
  to the unfaulted baseline run of the same spec;
- **bounded failure** — transiently-faulted jobs end DONE after retry;
  the deliberately poisoned job ends QUARANTINED, never FAILED-silently
  and never retried forever.

Scenarios (one per new fault site, plus the poison-path control):

=================== ========================================================
baseline            no faults; produces the reference HPWL
worker_kill         ``pool.worker_kill`` hard-kills a terminal worker
                    mid-wave → pool respawns, job DONE on attempt 1
checkpoint_corrupt  ``checkpoint.corrupt`` flips a byte of
                    ``calibration.json`` after its digest was recorded,
                    then ``trainer.kill`` fails the attempt → the retry's
                    resume detects the corruption, restarts the stage
                    cold, and finishes DONE
stage_stall         ``stall.freeze`` stops the job's heartbeat → the
                    watchdog cancels the attempt (structured
                    ``StageStallError``), the retry finishes DONE
warm_corrupt        job A populates the warm cache and ``warm.corrupt``
                    flips a byte of the entry; job B detects it before
                    injection, discards the entry, and runs cold to DONE
poison              ``trainer.kill`` on every attempt → retries exhaust
                    and the job is QUARANTINED (journalled)
broker_baseline     broker-on reference run (the shared inference broker
                    serves every leaf evaluation; fixed-tile numerics)
broker_kill         ``inference.worker_kill`` hard-kills the broker on
                    every eval arrival → bounded respawn exhausts,
                    clients degrade to in-process tiled evaluation; the
                    job ends DONE with the broker-baseline HPWL
=================== ========================================================

Used by ``repro chaos``, the CI ``chaos-smoke`` job, and
``benchmarks/bench_supervision.py``.

:func:`run_fleet_drill` is the multi-process escalation: it boots a
real sharded fleet (:mod:`repro.service.fleet`), SIGKILLs whole shard
processes while jobs are in flight, and gates on every job ending DONE
with an HPWL bit-identical to a single-daemon baseline or QUARANTINED
with a journaled reason — never lost, duplicated, or silently
corrupted.  Used by ``repro chaos --fleet`` and the CI ``fleet-smoke``
job.

:func:`run_governed_drill` is the resource-pressure escalation: the
same fleet is squeezed into a synthetic disk quota sized *below* what
an ungoverned run writes (plus injected ``disk.enospc`` faults), so it
can only finish if the resource governor's GC, load shedding, and
ENOSPC degradation all work — and it gates on every answer staying
bit-identical while they do.  Used by ``repro chaos --governed`` and
``benchmarks/bench_governor.py`` (CI ``gc-smoke``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import replace

from repro.runtime import faults
from repro.runtime.faults import Fault, FaultPlan
from repro.service.jobs import (
    DONE,
    QUARANTINED,
    TERMINAL_STATES,
    JobSpec,
    JobStore,
)
from repro.service.service import PlacementService, submit_job

#: small-but-real drill spec: one full flow run in well under a second
DEFAULT_SPEC = JobSpec(
    circuit="ibm01", scale=0.004, macro_scale=0.04, preset="fast", seed=3
)


def _check(checks: list, name: str, ok: bool, detail: str = "") -> bool:
    checks.append({"name": name, "ok": bool(ok), "detail": detail})
    return bool(ok)


def _run_scenario(
    root: str,
    name: str,
    plan_faults: list[Fault],
    *,
    spec: JobSpec,
    n_jobs: int = 1,
    terminal_workers: int = 1,
    stall_seconds: float | None = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    max_seconds: float = 60.0,
    inference_broker: bool = False,
) -> tuple[PlacementService, list, float, FaultPlan]:
    service_dir = os.path.join(root, name)
    service = PlacementService(
        service_dir,
        workers=1,
        poll_interval=0.02,
        stall_seconds=stall_seconds,
        max_retries=max_retries,
        backoff_base=backoff_base,
        inference_broker=inference_broker,
    )
    # A scenario that asks for a real pool (worker_kill) must opt out of
    # the adaptive cpu-count clamp — a 1-core CI host would otherwise
    # fall back in-process and the pool fault site would never arm.
    job_spec = replace(
        spec,
        terminal_workers=terminal_workers,
        terminal_pool_clamp=terminal_workers <= 1,
    )
    job_ids = [submit_job(service_dir, job_spec) for _ in range(n_jobs)]
    plan = FaultPlan(*plan_faults)
    started = time.perf_counter()
    with faults.inject(plan):
        service.run(drain=True, max_seconds=max_seconds)
    elapsed = time.perf_counter() - started
    jobs = [service.store.get(job_id) for job_id in job_ids]
    return service, jobs, elapsed, plan


def run_chaos_drill(
    root: str,
    *,
    spec: JobSpec | None = None,
    stall_seconds: float = 0.2,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    max_seconds: float = 60.0,
) -> dict:
    """Run every scenario under *root*; returns the machine-readable report.

    ``report["ok"]`` is the drill gate: True only when every scenario's
    jobs terminated (no hangs), every DONE HPWL matched the baseline
    bit-for-bit, and every fault produced exactly the designed recovery.
    """
    spec = spec if spec is not None else DEFAULT_SPEC
    os.makedirs(root, exist_ok=True)
    report: dict = {"spec": spec.to_json(), "scenarios": [], "ok": True}

    def finish(name, service, jobs, elapsed, checks, fired):
        ok = all(c["ok"] for c in checks)
        report["scenarios"].append(
            {
                "name": name,
                "ok": ok,
                "seconds": round(elapsed, 3),
                "faults_fired": fired,
                "jobs": [
                    {
                        "id": j.id,
                        "state": j.state,
                        "attempts": j.attempts,
                        "hpwl": j.hpwl,
                        "error": (j.error or {}).get("kind"),
                    }
                    for j in jobs
                ],
                "checks": checks,
            }
        )
        report["ok"] = report["ok"] and ok

    common = dict(
        spec=spec, max_retries=max_retries,
        backoff_base=backoff_base, max_seconds=max_seconds,
    )

    # -- baseline: the reference result every faulted run must reproduce
    service, jobs, elapsed, plan = _run_scenario(root, "baseline", [], **common)
    checks: list = []
    job = jobs[0]
    _check(checks, "terminal", job.terminal, job.state)
    _check(checks, "done_first_attempt",
           job.state == DONE and job.attempts == 1,
           f"state={job.state} attempts={job.attempts}")
    _check(checks, "verified",
           service.metrics.counter("jobs_verified") == 1,
           "independent verifier ran on the DONE result")
    reference_hpwl = job.hpwl
    report["reference_hpwl"] = reference_hpwl
    finish("baseline", service, jobs, elapsed, checks, plan.total_fired())
    if reference_hpwl is None:
        return report  # nothing to compare against; fail fast

    def check_done_identical(checks, job, attempts=None):
        _check(checks, "terminal", job.terminal, job.state)
        _check(checks, "done", job.state == DONE,
               f"state={job.state} error={(job.error or {}).get('kind')}")
        if attempts is not None:
            _check(checks, f"attempts_{attempts}", job.attempts == attempts,
                   f"attempts={job.attempts}")
        _check(checks, "hpwl_bit_identical", job.hpwl == reference_hpwl,
               f"{job.hpwl!r} vs baseline {reference_hpwl!r}")

    # -- worker_kill: hard worker death absorbed by the pool (no retry)
    service, jobs, elapsed, plan = _run_scenario(
        root, "worker_kill",
        [Fault("pool.worker_kill", at=1)],
        terminal_workers=2, **common,
    )
    checks = []
    _check(checks, "fault_fired", plan.total_fired("pool.worker_kill") == 1)
    # The service-level gate is outcome correctness: the dead worker must
    # cost neither the job nor the result.  Whether this tiny design's
    # single pooled task races the breakage (absorbed by respawn) or
    # completes first is executor timing; the *deterministic* respawn
    # sequence is drilled directly in tests/test_supervision.py.
    check_done_identical(checks, jobs[0], attempts=1)
    finish("worker_kill", service, jobs, elapsed, checks, plan.total_fired())

    # -- checkpoint_corrupt: bit-rot detected on resume, stage restarted
    service, jobs, elapsed, plan = _run_scenario(
        root, "checkpoint_corrupt",
        [
            # arrival 2 = calibration.json (after prototype.npz)
            Fault("checkpoint.corrupt", at=2),
            # fail the attempt a few episode waves later, forcing a
            # retry that must notice the corrupted checkpoint on resume
            Fault("trainer.kill", at=5),
        ],
        **common,
    )
    checks = []
    _check(checks, "fault_fired",
           plan.total_fired("checkpoint.corrupt") == 1
           and plan.total_fired("trainer.kill") == 1)
    check_done_identical(checks, jobs[0], attempts=2)
    _check(checks, "retried", service.metrics.counter("jobs_retried") == 1)
    finish("checkpoint_corrupt", service, jobs, elapsed, checks,
           plan.total_fired())

    # -- stage_stall: frozen heartbeat -> watchdog cancel -> retry
    service, jobs, elapsed, plan = _run_scenario(
        root, "stage_stall",
        [Fault("stall.freeze", at=1)],
        stall_seconds=stall_seconds, **common,
    )
    checks = []
    _check(checks, "fault_fired", plan.total_fired("stall.freeze") == 1)
    _check(checks, "stall_detected",
           service.metrics.counter("stalls_detected") >= 1)
    _check(checks, "stall_error_structured",
           any(
               (r.get("error") or {}).get("kind") == "StageStallError"
               for r in _journal(service)
           ),
           "journal records a StageStallError transition")
    check_done_identical(checks, jobs[0], attempts=2)
    finish("stage_stall", service, jobs, elapsed, checks, plan.total_fired())

    # -- warm_corrupt: poisoned cache entry discarded, job runs cold
    service, jobs, elapsed, plan = _run_scenario(
        root, "warm_corrupt",
        [Fault("warm.corrupt", at=1)],
        n_jobs=2, **common,
    )
    checks = []
    _check(checks, "fault_fired", plan.total_fired("warm.corrupt") == 1)
    _check(checks, "entry_discarded", service.warm.corruptions == 1,
           f"corruptions={service.warm.corruptions}")
    _check(checks, "no_warm_hit", not jobs[1].warm_hit,
           "corrupt entry must not be injected")
    for job in jobs:
        check_done_identical(checks, job, attempts=1)
    finish("warm_corrupt", service, jobs, elapsed, checks, plan.total_fired())

    # -- poison: every attempt fails -> quarantine, never an infinite loop
    service, jobs, elapsed, plan = _run_scenario(
        root, "poison",
        [Fault("trainer.kill", at=1, count=None)],
        **common,
    )
    checks = []
    job = jobs[0]
    _check(checks, "terminal", job.terminal, job.state)
    _check(checks, "quarantined", job.state == QUARANTINED, job.state)
    _check(checks, "attempts_exhausted", job.attempts == max_retries + 1,
           f"attempts={job.attempts}")
    _check(checks, "journalled",
           len(service.supervisor.quarantined()) == 1,
           "quarantine.jsonl has exactly one record")
    finish("poison", service, jobs, elapsed, checks, plan.total_fired())

    # -- broker_baseline: broker-on reference run.  Broker mode runs the
    # fixed-tile forward, whose results legitimately differ from the
    # broker-off default above — the kill drill therefore compares
    # against this broker-on baseline, not the global reference.
    service, jobs, elapsed, plan = _run_scenario(
        root, "broker_baseline", [], inference_broker=True, **common,
    )
    checks = []
    job = jobs[0]
    _check(checks, "terminal", job.terminal, job.state)
    _check(checks, "done_first_attempt",
           job.state == DONE and job.attempts == 1,
           f"state={job.state} attempts={job.attempts}")
    broker_reference = job.hpwl
    report["broker_reference_hpwl"] = broker_reference
    finish("broker_baseline", service, jobs, elapsed, checks,
           plan.total_fired())

    # -- broker_kill: every broker eval arrival hard-kills the broker
    # process; the bounded respawn budget exhausts and the clients
    # degrade to the bitwise-identical in-process tiled path — the job
    # still ends DONE on attempt 1 with the broker-baseline HPWL.
    service, jobs, elapsed, plan = _run_scenario(
        root, "broker_kill",
        [Fault("inference.worker_kill", at=1, count=None)],
        inference_broker=True, **common,
    )
    checks = []
    job = jobs[0]
    _check(checks, "fault_fired",
           plan.total_fired("inference.worker_kill") >= 1)
    _check(checks, "terminal", job.terminal, job.state)
    _check(checks, "done_first_attempt",
           job.state == DONE and job.attempts == 1,
           f"state={job.state} attempts={job.attempts}")
    _check(checks, "hpwl_matches_broker_baseline",
           broker_reference is not None and job.hpwl == broker_reference,
           f"{job.hpwl!r} vs broker baseline {broker_reference!r}")
    _check(checks, "degradation_observed",
           service.metrics.counter("events_degradation") >= 1,
           "broker-loss degradation surfaced in the service metrics")
    finish("broker_kill", service, jobs, elapsed, checks, plan.total_fired())

    report["total_seconds"] = round(
        sum(s["seconds"] for s in report["scenarios"]), 3
    )
    return report


def _journal(service: PlacementService) -> list[dict]:
    from repro.utils.events import read_jsonl

    return read_jsonl(service.store.path)


# -- fleet shard-kill drill ---------------------------------------------------
def _spawn_shard(
    fleet_dir: str,
    shard: str,
    *,
    lease_ttl: float,
    poll_interval: float,
    max_seconds: float,
    extra_args: list[str] | None = None,
) -> subprocess.Popen:
    """Launch one shard daemon process (drain mode) against *fleet_dir*."""
    src = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    cmd = [
        sys.executable, "-m", "repro", "fleet", "shard",
        "--service-dir", fleet_dir,
        "--shard", shard,
        "--lease-ttl", str(lease_ttl),
        "--poll-interval", str(poll_interval),
        "--backoff-base", "0.05",
        "--drain",
        "--max-seconds", str(max_seconds),
        *(extra_args or []),
    ]
    return subprocess.Popen(
        cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def run_fleet_drill(
    root: str,
    *,
    spec: JobSpec | None = None,
    n_shards: int = 3,
    n_jobs: int = 6,
    n_kills: int = 2,
    lease_ttl: float = 1.5,
    poll_interval: float = 0.05,
    max_seconds: float = 150.0,
    respawn: bool = True,
) -> dict:
    """Shard-kill drill: SIGKILL whole shards mid-fleet, gate on outcomes.

    Phase 1 runs every job through a single one-worker daemon — the
    reference HPWL per job.  Phase 2 submits the same mix (plus one
    deliberately poisoned job) to a shared fleet dir, boots *n_shards*
    shard processes, and SIGKILLs *n_kills* of them while work is in
    flight (optionally respawning each victim under the same shard id,
    which exercises the dead-predecessor lease takeover).  The gate:

    - every submitted job reaches a terminal state (nothing lost, no
      hang);
    - every non-poison job is DONE with HPWL **bit-identical** to its
      single-daemon reference (whole-shard loss never changes an
      answer);
    - the poison job is QUARANTINED with a journaled reason;
    - the raw shared journal carries **exactly one** terminal record per
      job (no double-completion, even in the append history);
    - ``fleet_metrics.json`` aggregates every shard that reported.
    """
    from repro.service.fleet import FleetPaths

    spec = spec if spec is not None else DEFAULT_SPEC
    os.makedirs(root, exist_ok=True)
    seeds = [spec.seed + i for i in range(n_jobs)]
    n_kills = max(0, min(n_kills, n_shards - 1))  # always leave a survivor
    checks: list = []
    report: dict = {
        "spec": spec.to_json(),
        "n_shards": n_shards,
        "n_jobs": n_jobs,
        "n_kills": n_kills,
        "lease_ttl": lease_ttl,
        "checks": checks,
    }
    started = time.perf_counter()

    # -- phase 1: single-daemon reference ------------------------------------
    baseline_dir = os.path.join(root, "baseline")
    baseline = PlacementService(
        baseline_dir, workers=1, poll_interval=0.02, backoff_base=0.05,
    )
    ref_ids = {
        seed: submit_job(baseline_dir, replace(spec, seed=seed))
        for seed in seeds
    }
    baseline.run(drain=True, max_seconds=max_seconds)
    reference = {
        seed: baseline.store.get(job_id).hpwl
        for seed, job_id in ref_ids.items()
    }
    _check(
        checks, "baseline_all_done",
        all(
            baseline.store.get(j).state == DONE and reference[s] is not None
            for s, j in ref_ids.items()
        ),
        f"reference={reference}",
    )
    report["reference"] = {str(s): h for s, h in reference.items()}
    if not checks[-1]["ok"]:
        report["ok"] = False
        return report

    # -- phase 2: the fleet under fire ---------------------------------------
    fleet_dir = os.path.join(root, "fleet")
    paths = FleetPaths(fleet_dir).ensure()
    job_ids = {
        submit_job(fleet_dir, replace(spec, seed=seed)): seed
        for seed in seeds
    }
    poison_id = submit_job(
        fleet_dir,
        replace(
            spec,
            seed=spec.seed + n_jobs,
            faults=(("trainer.kill", 1, None),),
        ),
    )
    total = len(job_ids) + 1

    procs: dict[str, subprocess.Popen] = {}
    for i in range(n_shards):
        name = f"shard-{i}"
        procs[name] = _spawn_shard(
            fleet_dir, name,
            lease_ttl=lease_ttl, poll_interval=poll_interval,
            max_seconds=max_seconds,
        )

    store = JobStore(paths.journal)
    kills: list[dict] = []
    deadline = time.monotonic() + max_seconds
    last_kill = 0.0
    try:
        while time.monotonic() < deadline:
            store.load()
            counts = store.counts()
            n_terminal = sum(counts[s] for s in TERMINAL_STATES)
            if n_terminal >= total:
                break
            # Kill once work is demonstrably in flight, spaced so the
            # fleet has absorbed the previous loss before the next.
            in_flight = counts["RUNNING"] > 0 or n_terminal > len(kills)
            if (
                len(kills) < n_kills
                and in_flight
                and time.monotonic() - last_kill >= 2.0 * poll_interval
            ):
                victim = f"shard-{len(kills)}"
                proc = procs.get(victim)
                if proc is not None and proc.poll() is None:
                    proc.kill()  # SIGKILL: no cleanup, no lease release
                    proc.wait()
                    kills.append(
                        {"shard": victim, "terminal_before": n_terminal}
                    )
                    last_kill = time.monotonic()
                    if respawn:
                        # Same shard id: the replacement supersedes its
                        # dead predecessor's leases without waiting TTL.
                        procs[victim] = _spawn_shard(
                            fleet_dir, victim,
                            lease_ttl=lease_ttl,
                            poll_interval=poll_interval,
                            max_seconds=max_seconds,
                        )
            time.sleep(5 * poll_interval)
        for proc in procs.values():
            try:
                proc.wait(timeout=max(1.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                pass
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    # -- gates ----------------------------------------------------------------
    store.load()
    jobs = {job_id: store.get(job_id) for job_id in [*job_ids, poison_id]}
    report["kills"] = kills
    report["jobs"] = [
        {
            "id": j.id,
            "seed": j.spec.seed,
            "state": j.state if j else "MISSING",
            "attempts": j.attempts,
            "hpwl": j.hpwl,
            "shard": j.shard,
        }
        for j in jobs.values() if j is not None
    ]
    _check(checks, "kills_executed", len(kills) == n_kills,
           f"{len(kills)}/{n_kills}")
    _check(
        checks, "no_job_lost",
        all(j is not None for j in jobs.values()),
        "every submitted id is in the journal",
    )
    _check(
        checks, "all_terminal",
        all(j is not None and j.terminal for j in jobs.values()),
        ",".join(f"{i}={j.state if j else 'MISSING'}"
                 for i, j in jobs.items() if j is None or not j.terminal),
    )
    for job_id, seed in job_ids.items():
        job = jobs[job_id]
        if job is None:
            continue
        _check(
            checks, f"seed{seed}_done_identical",
            job.state == DONE and job.hpwl == reference[seed],
            f"state={job.state} hpwl={job.hpwl!r} "
            f"vs baseline {reference[seed]!r}",
        )
    poison = jobs[poison_id]
    _check(
        checks, "poison_quarantined",
        poison is not None and poison.state == QUARANTINED,
        poison.state if poison else "MISSING",
    )
    from repro.utils.events import read_jsonl

    quarantine = read_jsonl(paths.quarantine)
    _check(
        checks, "poison_journaled",
        any(q.get("id") == poison_id and q.get("error") for q in quarantine),
        "quarantine.jsonl records the poison job with its error",
    )
    terminal_records: dict[str, int] = {}
    for record in read_jsonl(paths.journal):
        if (
            record.get("record") == "state"
            and record.get("state") in TERMINAL_STATES
        ):
            rid = record.get("id")
            terminal_records[rid] = terminal_records.get(rid, 0) + 1
    _check(
        checks, "exactly_one_terminal_record",
        all(terminal_records.get(job_id, 0) == 1 for job_id in jobs)
        and set(terminal_records) <= set(jobs),
        f"terminal record counts: {terminal_records}",
    )
    fleet_metrics = None
    if os.path.exists(paths.fleet_metrics):
        import json as _json

        with open(paths.fleet_metrics) as f:
            fleet_metrics = _json.load(f)
    _check(
        checks, "fleet_metrics_aggregated",
        fleet_metrics is not None and fleet_metrics.get("n_shards", 0) >= 1,
        f"n_shards={None if fleet_metrics is None else fleet_metrics.get('n_shards')}",
    )
    report["reclaims"] = (
        (fleet_metrics or {}).get("counters", {}).get("jobs_reclaimed", 0)
    )
    report["seconds"] = round(time.perf_counter() - started, 3)
    report["ok"] = all(c["ok"] for c in checks)
    return report


def format_fleet_report(report: dict) -> str:
    """Human-readable fleet-drill summary (``repro chaos --fleet``)."""
    lines = [
        f"fleet drill: shards={report['n_shards']} "
        f"jobs={report['n_jobs']}+1 poison  kills={report['n_kills']} "
        f"lease_ttl={report['lease_ttl']}s",
    ]
    for kill in report.get("kills", []):
        lines.append(
            f"  SIGKILL {kill['shard']} "
            f"(terminal jobs before: {kill['terminal_before']})"
        )
    for job in report.get("jobs", []):
        lines.append(
            f"  {job['id']}: {job['state']} a{job['attempts']} "
            f"hpwl={job['hpwl']!r} shard={job['shard']}"
        )
    lines.append(f"  reclaimed RUNNING orphans: {report.get('reclaims', 0)}")
    for check in report.get("checks", []):
        if not check["ok"]:
            lines.append(f"  FAILED check {check['name']}: {check['detail']}")
    lines.append(
        f"result: {'OK' if report.get('ok') else 'FAILED'} "
        f"({report.get('seconds', 0.0)}s total)"
    )
    return "\n".join(lines)


# -- governed (tight-quota) drill ---------------------------------------------
def run_governed_drill(
    root: str,
    *,
    spec: JobSpec | None = None,
    n_shards: int = 3,
    n_jobs: int = 4,
    lease_ttl: float = 1.5,
    poll_interval: float = 0.05,
    max_seconds: float = 150.0,
    quota_frac: float = 0.8,
    high_water: float = 0.85,
    low_water: float = 0.6,
) -> dict:
    """Resource-pressure drill: a fleet inside a tight synthetic quota.

    Phase 1 runs every job through an ungoverned single daemon — the
    per-seed reference HPWL and, as a byproduct, the drill's sizing
    probe: the baseline service dir's total footprint is what *n_jobs*
    cost when nothing is ever collected.  Phase 2 re-runs the same mix
    on an *n_shards* fleet whose disk quota is ``quota_frac`` of that
    footprint — impossible to finish without garbage collection — with
    ``retention_runs=1`` and two ENOSPC-faulted jobs on top: one whose
    first guarded write fails once (in-write degradation: emergency GC +
    retry, job DONE), and one poisoned with ENOSPC on every write
    (attempt retries exhaust, job QUARANTINED).  The gate:

    - every job terminal; every non-poison job DONE with HPWL
      **bit-identical** to its ungoverned reference (GC and degradation
      never change an answer);
    - the ENOSPC-poisoned job QUARANTINED with a structured
      ``ResourceExhaustedError`` — never a dead daemon;
    - every shard process exits 0 (zero daemon deaths);
    - the fleet dir's final footprint is within the quota, and GC runs
      plus ENOSPC degradations actually happened (the drill cannot pass
      vacuously).
    """
    from repro.runtime.resources import dir_usage_bytes
    from repro.service.fleet import FleetPaths

    spec = spec if spec is not None else DEFAULT_SPEC
    os.makedirs(root, exist_ok=True)
    seeds = [spec.seed + i for i in range(n_jobs)]
    checks: list = []
    report: dict = {
        "spec": spec.to_json(),
        "n_shards": n_shards,
        "n_jobs": n_jobs,
        "checks": checks,
    }
    started = time.perf_counter()

    # -- phase 1: ungoverned reference + sizing probe -------------------------
    baseline_dir = os.path.join(root, "baseline")
    baseline = PlacementService(
        baseline_dir, workers=1, poll_interval=0.02, backoff_base=0.05,
    )
    ref_ids = {
        seed: submit_job(baseline_dir, replace(spec, seed=seed))
        for seed in seeds
    }
    baseline.run(drain=True, max_seconds=max_seconds)
    baseline.governor.uninstall()
    reference = {
        seed: baseline.store.get(job_id).hpwl
        for seed, job_id in ref_ids.items()
    }
    _check(
        checks, "baseline_all_done",
        all(
            baseline.store.get(j).state == DONE and reference[s] is not None
            for s, j in ref_ids.items()
        ),
        f"reference={reference}",
    )
    report["reference"] = {str(s): h for s, h in reference.items()}
    if not checks[-1]["ok"]:
        report["ok"] = False
        return report
    baseline_bytes = dir_usage_bytes(baseline_dir)
    quota = max(1, int(baseline_bytes * quota_frac))
    # Dispatch projection = one run dir's cost.  Deliberately *not*
    # baseline_bytes / n_jobs: the baseline total includes the warm
    # cache and results, which are a fixed floor the fleet pays once —
    # projecting them per-job would keep the dispatch gate shut even
    # after GC restored all the headroom a run actually needs.
    per_run = max(
        1, dir_usage_bytes(baseline.paths.runs) // max(1, n_jobs)
    )
    report["baseline_bytes"] = baseline_bytes
    report["disk_quota_bytes"] = quota

    # -- phase 2: governed fleet under the quota ------------------------------
    fleet_dir = os.path.join(root, "fleet")
    paths = FleetPaths(fleet_dir).ensure()
    job_ids = {
        submit_job(fleet_dir, replace(spec, seed=seed)): seed
        for seed in seeds
    }
    # One transient ENOSPC (first guarded write fails once; the guard's
    # emergency GC + retry absorb it) — must end DONE bit-identical.
    transient_seed = seeds[0]
    transient_id = submit_job(
        fleet_dir,
        replace(spec, seed=transient_seed,
                faults=(("disk.enospc", 1, 1),)),
    )
    job_ids[transient_id] = transient_seed
    # One persistent ENOSPC (every write fails, even after GC) — the
    # attempts fail with ResourceExhaustedError, retries exhaust, and
    # the job is QUARANTINED while the shard lives on.
    poison_id = submit_job(
        fleet_dir,
        replace(spec, seed=spec.seed + n_jobs,
                faults=(("disk.enospc", 1, None),)),
    )
    total = len(job_ids) + 1

    governed_args = [
        "--disk-quota-bytes", str(quota),
        "--retention-runs", "1",
        "--high-water", str(high_water),
        "--low-water", str(low_water),
        "--rundir-projection-bytes", str(per_run),
        "--resource-sample-interval", str(poll_interval),
    ]
    procs: dict[str, subprocess.Popen] = {}
    for i in range(n_shards):
        name = f"shard-{i}"
        procs[name] = _spawn_shard(
            fleet_dir, name,
            lease_ttl=lease_ttl, poll_interval=poll_interval,
            max_seconds=max_seconds, extra_args=governed_args,
        )

    store = JobStore(paths.journal)
    deadline = time.monotonic() + max_seconds
    while time.monotonic() < deadline:
        store.load()
        counts = store.counts()
        if sum(counts[s] for s in TERMINAL_STATES) >= total:
            break
        time.sleep(5 * poll_interval)
    for proc in procs.values():
        try:
            # Shards self-exit at their own --max-seconds; grant a grace
            # window past the watcher deadline so a shard that is merely
            # finishing its drain is not miscounted as a daemon death.
            proc.wait(timeout=max(10.0, deadline - time.monotonic() + 10.0))
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # -- gates ----------------------------------------------------------------
    store.load()
    jobs = {job_id: store.get(job_id) for job_id in [*job_ids, poison_id]}
    report["jobs"] = [
        {
            "id": j.id,
            "seed": j.spec.seed,
            "state": j.state,
            "attempts": j.attempts,
            "hpwl": j.hpwl,
            "shard": j.shard,
            "error": (j.error or {}).get("kind"),
        }
        for j in jobs.values() if j is not None
    ]
    _check(
        checks, "no_job_lost",
        all(j is not None for j in jobs.values()),
        "every submitted id is in the journal",
    )
    _check(
        checks, "all_terminal",
        all(j is not None and j.terminal for j in jobs.values()),
        ",".join(f"{i}={j.state if j else 'MISSING'}"
                 for i, j in jobs.items() if j is None or not j.terminal),
    )
    for job_id, seed in job_ids.items():
        job = jobs[job_id]
        if job is None:
            continue
        label = "transient_enospc" if job_id == transient_id else f"seed{seed}"
        _check(
            checks, f"{label}_done_identical",
            job.state == DONE and job.hpwl == reference[seed],
            f"state={job.state} hpwl={job.hpwl!r} "
            f"vs baseline {reference[seed]!r}",
        )
    poison = jobs[poison_id]
    _check(
        checks, "enospc_poison_quarantined",
        poison is not None and poison.state == QUARANTINED
        and (poison.error or {}).get("kind") == "ResourceExhaustedError",
        f"state={poison.state if poison else 'MISSING'} "
        f"error={(poison.error or {}).get('kind') if poison else None}",
    )
    exit_codes = {name: proc.returncode for name, proc in procs.items()}
    report["shard_exit_codes"] = exit_codes
    _check(
        checks, "zero_shard_deaths",
        all(code == 0 for code in exit_codes.values()),
        f"exit codes: {exit_codes}",
    )
    final_bytes = dir_usage_bytes(fleet_dir)
    report["final_bytes"] = final_bytes
    _check(
        checks, "within_quota",
        final_bytes <= quota,
        f"{final_bytes} <= {quota} "
        f"(ungoverned baseline was {baseline_bytes})",
    )
    fleet_counters = {}
    if os.path.exists(paths.fleet_metrics):
        import json as _json

        with open(paths.fleet_metrics) as f:
            fleet_counters = _json.load(f).get("counters", {})
    report["gc_runs"] = fleet_counters.get("gc_runs", 0)
    report["emergency_gc_runs"] = fleet_counters.get("emergency_gc_runs", 0)
    report["resource_degradations"] = fleet_counters.get(
        "resource_degradations", 0
    )
    _check(
        checks, "gc_actually_ran",
        report["gc_runs"] >= 1,
        f"gc_runs={report['gc_runs']}",
    )
    _check(
        checks, "enospc_degradation_observed",
        report["resource_degradations"] >= 1,
        f"resource_degradations={report['resource_degradations']}",
    )
    report["seconds"] = round(time.perf_counter() - started, 3)
    report["ok"] = all(c["ok"] for c in checks)
    return report


def format_governed_report(report: dict) -> str:
    """Human-readable governed-drill summary (``repro chaos --governed``)."""
    lines = [
        f"governed drill: shards={report['n_shards']} "
        f"jobs={report['n_jobs']}+2 enospc  "
        f"quota={report.get('disk_quota_bytes')}B "
        f"(ungoverned baseline {report.get('baseline_bytes')}B)",
    ]
    for job in report.get("jobs", []):
        lines.append(
            f"  {job['id']}: {job['state']} a{job['attempts']} "
            f"hpwl={job['hpwl']!r}"
            + (f" error={job['error']}" if job.get("error") else "")
        )
    lines.append(
        f"  final footprint: {report.get('final_bytes')}B  "
        f"gc_runs={report.get('gc_runs')} "
        f"emergency={report.get('emergency_gc_runs')} "
        f"degradations={report.get('resource_degradations')}"
    )
    for check in report.get("checks", []):
        if not check["ok"]:
            lines.append(f"  FAILED check {check['name']}: {check['detail']}")
    lines.append(
        f"result: {'OK' if report.get('ok') else 'FAILED'} "
        f"({report.get('seconds', 0.0)}s total)"
    )
    return "\n".join(lines)


def format_report(report: dict) -> str:
    """Human-readable drill summary (the ``repro chaos`` output)."""
    lines = [
        f"chaos drill: spec={report['spec']['circuit']} "
        f"preset={report['spec']['preset']} seed={report['spec']['seed']}",
        f"reference hpwl: {report.get('reference_hpwl')!r}",
    ]
    for scenario in report["scenarios"]:
        mark = "PASS" if scenario["ok"] else "FAIL"
        lines.append(
            f"  [{mark}] {scenario['name']:<20s} "
            f"{scenario['seconds']:6.2f}s  "
            f"jobs=" + ",".join(
                f"{j['state']}(a{j['attempts']})" for j in scenario["jobs"]
            )
        )
        for check in scenario["checks"]:
            if not check["ok"]:
                lines.append(
                    f"         FAILED check {check['name']}: {check['detail']}"
                )
    lines.append(
        f"result: {'OK' if report['ok'] else 'FAILED'} "
        f"({report.get('total_seconds', 0.0)}s total)"
    )
    return "\n".join(lines)
