"""Job model, durable journal, and the service directory layout.

A *job* is one placement request: a design source (suite circuit or
Bookshelf ``.aux``), a :class:`~repro.core.config.PlacerConfig` preset
with a seed, a priority, and an optional wall-clock budget.  Jobs move
through the state machine::

    QUEUED -> RUNNING -> DONE | FAILED | CANCELLED | QUARANTINED
    RUNNING -> QUEUED (retry with backoff while attempts <= max_retries)

QUARANTINED is the poison-job terminal state: a transiently-failing job
that exhausted its retry budget (see
:class:`~repro.service.supervisor.JobSupervisor`), journalled separately
in ``<service_dir>/quarantine.jsonl`` for offline triage.

Every transition is appended to ``<service_dir>/jobs.jsonl`` — the
journal is the single source of truth, replayed on daemon start the same
way :class:`~repro.runtime.checkpoint.RunDir` replays a run manifest.  A
torn trailing line (daemon killed mid-append) is tolerated exactly like
the event log and terminal cache (:func:`repro.utils.events.read_jsonl`).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import asdict, dataclass, replace

from repro.runtime.errors import UsageError
from repro.utils.events import read_jsonl

#: job lifecycle states
QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
QUARANTINED = "QUARANTINED"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, QUARANTINED)
#: states a job never leaves
TERMINAL_STATES = (DONE, FAILED, CANCELLED, QUARANTINED)


def new_job_id() -> str:
    return "job-" + uuid.uuid4().hex[:12]


def resolve_design(
    circuit: str | None = None,
    aux: str | None = None,
    scale: float = 0.01,
    macro_scale: float = 0.08,
):
    """Build the design a job (or a CLI invocation) asks for.

    Shared by ``repro place``/``compare`` and the service scheduler so a
    job's design is constructed exactly like the single-shot CLI's —
    which is what makes service HPWLs comparable to ``repro place`` runs.
    """
    from repro.netlist.bookshelf import read_aux
    from repro.netlist.suites import (
        ICCAD04_STATS,
        INDUSTRIAL_STATS,
        make_iccad04_circuit,
        make_industrial_circuit,
    )

    if aux:
        design = read_aux(aux)
        return design.name, design
    if circuit in ICCAD04_STATS:
        return circuit, make_iccad04_circuit(
            circuit, scale=scale, macro_scale=macro_scale
        ).design
    if circuit in INDUSTRIAL_STATS:
        return circuit, make_industrial_circuit(
            circuit, scale=scale / 5.0, macro_scale=max(macro_scale * 5, 0.3)
        ).design
    raise UsageError(
        f"unknown circuit {circuit!r}; see 'python -m repro suites'",
        circuit=circuit,
    )


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to reconstruct one placement job's inputs."""

    circuit: str | None = None
    aux: str | None = None
    scale: float = 0.01
    macro_scale: float = 0.08
    preset: str = "fast"
    seed: int = 0
    #: worker processes for terminal evaluation inside this job (execution
    #: knob; results are bitwise-identical for every count)
    terminal_workers: int = 1
    #: whole-job wall-clock allowance; stages see the remaining budget
    #: through :class:`repro.service.scheduler.JobRunContext` (None = no cap)
    budget_seconds: float | None = None

    def validate(self) -> None:
        if not self.circuit and not self.aux:
            raise UsageError("job spec needs a circuit name or an aux path")
        if self.preset not in ("fast", "benchmark", "paper"):
            raise UsageError(
                f"unknown preset {self.preset!r}; choose from "
                "['benchmark', 'fast', 'paper']",
                preset=self.preset,
            )

    def build_design(self):
        return resolve_design(
            circuit=self.circuit,
            aux=self.aux,
            scale=self.scale,
            macro_scale=self.macro_scale,
        )

    def build_config(self, terminal_cache_path: str | None = None):
        from repro.core.config import PlacerConfig

        self.validate()
        if self.preset == "paper":
            config = replace(PlacerConfig.paper(), seed=self.seed)
        else:
            config = getattr(PlacerConfig, self.preset)(seed=self.seed)
        return replace(
            config,
            terminal_workers=self.terminal_workers,
            terminal_cache_path=terminal_cache_path,
        )

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "JobSpec":
        known = {k: payload[k] for k in cls.__dataclass_fields__ if k in payload}
        return cls(**known)


@dataclass
class Job:
    """One job's live state, rebuilt from the journal on load."""

    id: str
    spec: JobSpec
    priority: int = 0
    #: admission order; ties in priority dispatch FIFO on this
    seq: int = 0
    state: str = QUEUED
    submitted_ts: float = 0.0
    finished_ts: float | None = None
    attempts: int = 0
    error: dict | None = None
    warm_hit: bool = False
    hpwl: float | None = None
    seconds: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass(frozen=True)
class ServicePaths:
    """File layout of one service directory."""

    root: str

    @property
    def inbox(self) -> str:
        return os.path.join(self.root, "inbox")

    @property
    def control(self) -> str:
        return os.path.join(self.root, "control")

    @property
    def runs(self) -> str:
        return os.path.join(self.root, "runs")

    @property
    def results(self) -> str:
        return os.path.join(self.root, "results")

    @property
    def warm(self) -> str:
        return os.path.join(self.root, "warm")

    @property
    def journal(self) -> str:
        return os.path.join(self.root, "jobs.jsonl")

    @property
    def metrics(self) -> str:
        return os.path.join(self.root, "metrics.json")

    @property
    def terminal_cache(self) -> str:
        """One fleet-wide terminal cache file; entries are keyed by an
        environment fingerprint, so jobs on different designs coexist."""
        return os.path.join(self.root, "terminal_cache.jsonl")

    @property
    def rejected(self) -> str:
        """Malformed-submission quarantine: files the inbox poller could
        never parse are moved here (with a ``.reason.json`` sidecar)
        instead of being re-parsed forever."""
        return os.path.join(self.inbox, ".rejected")

    @property
    def quarantine(self) -> str:
        """JSONL journal of poison jobs (transient failures that
        exhausted their retry budget)."""
        return os.path.join(self.root, "quarantine.jsonl")

    @property
    def stop_file(self) -> str:
        return os.path.join(self.control, "stop")

    def run_dir(self, job_id: str) -> str:
        return os.path.join(self.runs, job_id)

    def result_file(self, job_id: str) -> str:
        return os.path.join(self.results, job_id + ".json")

    def ensure(self) -> "ServicePaths":
        for d in (self.root, self.inbox, self.control, self.runs,
                  self.results, self.warm):
            os.makedirs(d, exist_ok=True)
        return self


def write_json_atomic(path: str, payload: dict) -> None:
    """tmp-file + ``os.replace`` write, the run-manifest convention."""
    tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class JobStore:
    """In-memory job table backed by the append-only JSONL journal.

    Thread-safe: the daemon's poll loop and every scheduler worker
    transition jobs concurrently.  ``load()`` replays the journal, so a
    restarted daemon (or a read-only CLI like ``repro status``) sees the
    exact pre-crash state; a torn tail line is skipped, which at worst
    forgets the very last transition — never corrupts earlier ones.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0

    # -- journal ---------------------------------------------------------------
    def _append(self, record: dict) -> None:
        with open(self.path, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def load(self) -> "JobStore":
        with self._lock:
            self._jobs.clear()
            self._seq = 0
            for record in read_jsonl(self.path):
                kind = record.get("record")
                if kind == "submit":
                    try:
                        job = Job(
                            id=record["id"],
                            spec=JobSpec.from_json(record.get("spec", {})),
                            priority=int(record.get("priority", 0)),
                            seq=int(record.get("seq", 0)),
                            state=record.get("state", QUEUED),
                            submitted_ts=float(record.get("ts", 0.0)),
                            error=record.get("error"),
                        )
                    except (KeyError, TypeError, ValueError):
                        continue
                    self._jobs[job.id] = job
                    self._seq = max(self._seq, job.seq)
                elif kind == "state":
                    job = self._jobs.get(record.get("id"))
                    if job is None or record.get("state") not in STATES:
                        continue
                    self._apply(job, record)
        return self

    @staticmethod
    def _apply(job: Job, record: dict) -> None:
        job.state = record["state"]
        if job.state == RUNNING:
            job.attempts = int(record.get("attempt", job.attempts + 1))
        if "error" in record:
            job.error = record["error"]
        if "warm_hit" in record:
            job.warm_hit = bool(record["warm_hit"])
        if "hpwl" in record:
            job.hpwl = record["hpwl"]
        if "seconds" in record:
            job.seconds = record["seconds"]
        if job.terminal:
            job.finished_ts = float(record.get("ts", 0.0))

    # -- mutations -------------------------------------------------------------
    def add(
        self,
        spec: JobSpec,
        job_id: str | None = None,
        priority: int = 0,
        state: str = QUEUED,
        error: dict | None = None,
        submitted_ts: float | None = None,
    ) -> Job:
        """Admit one job (or record its rejection when *state* is FAILED)."""
        with self._lock:
            self._seq += 1
            job = Job(
                id=job_id or new_job_id(),
                spec=spec,
                priority=priority,
                seq=self._seq,
                state=state,
                submitted_ts=(
                    time.time() if submitted_ts is None else submitted_ts
                ),
                error=error,
            )
            if job.id in self._jobs:
                raise UsageError(f"duplicate job id {job.id!r}")
            self._jobs[job.id] = job
            self._append(
                {
                    "record": "submit",
                    "id": job.id,
                    "ts": job.submitted_ts,
                    "seq": job.seq,
                    "priority": job.priority,
                    "state": job.state,
                    "spec": job.spec.to_json(),
                    **({"error": error} if error else {}),
                }
            )
        return job

    def transition(self, job_id: str, state: str, **extra) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            record = {
                "record": "state",
                "id": job_id,
                "state": state,
                "ts": time.time(),
                **extra,
            }
            self._apply(job, record)
            self._append(record)
            return job

    # -- queries ---------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def in_state(self, state: str) -> list[Job]:
        with self._lock:
            return sorted(
                (j for j in self._jobs.values() if j.state == state),
                key=lambda j: (-j.priority, j.seq),
            )

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out

    def queue_depth(self) -> int:
        return self.counts()[QUEUED]

    def active(self) -> bool:
        counts = self.counts()
        return counts[QUEUED] > 0 or counts[RUNNING] > 0
