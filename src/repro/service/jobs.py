"""Job model, durable journal, and the service directory layout.

A *job* is one placement request: a design source (suite circuit or
Bookshelf ``.aux``), a :class:`~repro.core.config.PlacerConfig` preset
with a seed, a priority, and an optional wall-clock budget.  Jobs move
through the state machine::

    QUEUED -> RUNNING -> DONE | FAILED | CANCELLED | QUARANTINED
    RUNNING -> QUEUED (retry with backoff while attempts <= max_retries)

QUARANTINED is the poison-job terminal state: a transiently-failing job
that exhausted its retry budget (see
:class:`~repro.service.supervisor.JobSupervisor`), journalled separately
in ``<service_dir>/quarantine.jsonl`` for offline triage.

Every transition is appended to ``<service_dir>/jobs.jsonl`` — the
journal is the single source of truth, replayed on daemon start the same
way :class:`~repro.runtime.checkpoint.RunDir` replays a run manifest.  A
torn trailing line (daemon killed mid-append) is tolerated exactly like
the event log and terminal cache (:func:`repro.utils.events.read_jsonl`).

The journal supports **multiple concurrent writer processes** (a fleet
of shard daemons sharing one directory, :mod:`repro.service.fleet`):

- every append is a single ``write`` syscall on an ``O_APPEND``
  descriptor (:func:`repro.utils.events.append_jsonl`), so records from
  different shards interleave whole, never byte-wise;
- :meth:`JobStore.refresh` tails the journal incrementally, folding in
  peers' records without re-reading the file — a shard's in-memory
  table converges to the union of every writer's appends;
- replay is *first-submit-wins* per job id and *first-terminal-wins*
  per job: once a job reaches a terminal state, later state records for
  it (a fenced-out zombie shard's stale report) are counted and
  dropped, which makes double-completion structurally impossible in the
  replayed state.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import asdict, dataclass, replace

from repro.runtime.errors import UsageError
from repro.utils.events import append_jsonl, read_jsonl

#: job lifecycle states
QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
QUARANTINED = "QUARANTINED"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, QUARANTINED)
#: states a job never leaves
TERMINAL_STATES = (DONE, FAILED, CANCELLED, QUARANTINED)


def new_job_id() -> str:
    return "job-" + uuid.uuid4().hex[:12]


def resolve_design(
    circuit: str | None = None,
    aux: str | None = None,
    scale: float = 0.01,
    macro_scale: float = 0.08,
):
    """Build the design a job (or a CLI invocation) asks for.

    Shared by ``repro place``/``compare`` and the service scheduler so a
    job's design is constructed exactly like the single-shot CLI's —
    which is what makes service HPWLs comparable to ``repro place`` runs.
    """
    from repro.netlist.bookshelf import read_aux
    from repro.netlist.suites import (
        ICCAD04_STATS,
        INDUSTRIAL_STATS,
        make_iccad04_circuit,
        make_industrial_circuit,
    )

    if aux:
        design = read_aux(aux)
        return design.name, design
    if circuit in ICCAD04_STATS:
        return circuit, make_iccad04_circuit(
            circuit, scale=scale, macro_scale=macro_scale
        ).design
    if circuit in INDUSTRIAL_STATS:
        return circuit, make_industrial_circuit(
            circuit, scale=scale / 5.0, macro_scale=max(macro_scale * 5, 0.3)
        ).design
    raise UsageError(
        f"unknown circuit {circuit!r}; see 'python -m repro suites'",
        circuit=circuit,
    )


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to reconstruct one placement job's inputs."""

    circuit: str | None = None
    aux: str | None = None
    scale: float = 0.01
    macro_scale: float = 0.08
    preset: str = "fast"
    seed: int = 0
    #: worker processes for terminal evaluation inside this job (execution
    #: knob; results are bitwise-identical for every count)
    terminal_workers: int = 1
    #: clamp the terminal pool to the host's cores (see
    #: :class:`~repro.core.config.PlacerConfig.terminal_pool_clamp`);
    #: fault drills that need a real pool on a 1-core CI host opt out
    terminal_pool_clamp: bool = True
    #: whole-job wall-clock allowance; stages see the remaining budget
    #: through :class:`repro.service.scheduler.JobRunContext` (None = no cap)
    budget_seconds: float | None = None
    #: deterministic faults injected into every attempt of *this job
    #: only*: ``((site, at, count), ...)`` triples (count ``None`` =
    #: forever) building a :class:`~repro.runtime.faults.FaultPlan`
    #: around the flow call.  A chaos-drill facility — it lets a fleet
    #: drill poison one job in a mix without touching the shard
    #: processes — meaningful on single-worker daemons (the plan is
    #: process-global while the attempt runs).
    faults: tuple | list | None = None
    #: dotted-path config overrides applied on top of the preset:
    #: ``((\"mcts.c_puct\", 2.5), ...)`` pairs, routed through
    #: :func:`repro.core.config.apply_overrides` so the same validation
    #: and coercion rules cover study sweep points and ``repro submit
    #: --set``.  Applied *before* the terminal execution knobs, so a
    #: spec can never alias them.
    overrides: tuple | list | None = None

    def validate(self) -> None:
        if not self.circuit and not self.aux:
            raise UsageError("job spec needs a circuit name or an aux path")
        if self.preset not in ("fast", "benchmark", "paper"):
            raise UsageError(
                f"unknown preset {self.preset!r}; choose from "
                "['benchmark', 'fast', 'paper']",
                preset=self.preset,
            )
        for item in self.faults or ():
            if not isinstance(item, (list, tuple)) or not (1 <= len(item) <= 3):
                raise UsageError(
                    "job faults must be (site, at?, count?) triples",
                    faults=self.faults,
                )
        for item in self.overrides or ():
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not isinstance(item[0], str)
            ):
                raise UsageError(
                    "job overrides must be (knob_path, value) pairs",
                    overrides=self.overrides,
                )

    def build_design(self):
        return resolve_design(
            circuit=self.circuit,
            aux=self.aux,
            scale=self.scale,
            macro_scale=self.macro_scale,
        )

    def build_config(self, terminal_cache_path: str | None = None):
        from repro.core.config import PlacerConfig, apply_overrides

        self.validate()
        if self.preset == "paper":
            config = replace(PlacerConfig.paper(), seed=self.seed)
        else:
            config = getattr(PlacerConfig, self.preset)(seed=self.seed)
        if self.overrides:
            config = apply_overrides(config, self.overrides)
        return replace(
            config,
            terminal_workers=self.terminal_workers,
            terminal_pool_clamp=self.terminal_pool_clamp,
            terminal_cache_path=terminal_cache_path,
        )

    def build_fault_plan(self):
        """The per-job :class:`~repro.runtime.faults.FaultPlan` (or None)."""
        if not self.faults:
            return None
        from repro.runtime.faults import Fault, FaultPlan

        built = []
        for item in self.faults:
            site, at, count = (tuple(item) + (1, 1))[:3]
            built.append(
                Fault(
                    str(site),
                    at=int(at),
                    count=None if count is None else int(count),
                )
            )
        return FaultPlan(*built)

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "JobSpec":
        known = {k: payload[k] for k in cls.__dataclass_fields__ if k in payload}
        if known.get("overrides"):
            # JSON round-trips tuples as lists; renormalize so replayed
            # specs compare equal to freshly built ones.
            known["overrides"] = tuple(
                tuple(pair) if isinstance(pair, (list, tuple)) else pair
                for pair in known["overrides"]
            )
        return cls(**known)


@dataclass
class Job:
    """One job's live state, rebuilt from the journal on load."""

    id: str
    spec: JobSpec
    priority: int = 0
    #: admission order; ties in priority dispatch FIFO on this
    seq: int = 0
    state: str = QUEUED
    submitted_ts: float = 0.0
    finished_ts: float | None = None
    attempts: int = 0
    error: dict | None = None
    warm_hit: bool = False
    hpwl: float | None = None
    seconds: float | None = None
    #: fleet shard that wrote the job's latest transition (None outside
    #: fleet mode); purely observational
    shard: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict:
        """Machine-readable snapshot for ``repro status --json`` pollers."""
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "seq": self.seq,
            "attempts": self.attempts,
            "submitted_ts": self.submitted_ts,
            "finished_ts": self.finished_ts,
            "warm_hit": self.warm_hit,
            "hpwl": self.hpwl,
            "seconds": self.seconds,
            "shard": self.shard,
            "error": self.error,
            "spec": self.spec.to_json(),
        }


@dataclass(frozen=True)
class ServicePaths:
    """File layout of one service directory."""

    root: str

    @property
    def inbox(self) -> str:
        return os.path.join(self.root, "inbox")

    @property
    def control(self) -> str:
        return os.path.join(self.root, "control")

    @property
    def runs(self) -> str:
        return os.path.join(self.root, "runs")

    @property
    def results(self) -> str:
        return os.path.join(self.root, "results")

    @property
    def warm(self) -> str:
        return os.path.join(self.root, "warm")

    @property
    def journal(self) -> str:
        return os.path.join(self.root, "jobs.jsonl")

    @property
    def metrics(self) -> str:
        return os.path.join(self.root, "metrics.json")

    @property
    def terminal_cache(self) -> str:
        """One fleet-wide terminal cache file; entries are keyed by an
        environment fingerprint, so jobs on different designs coexist."""
        return os.path.join(self.root, "terminal_cache.jsonl")

    @property
    def rejected(self) -> str:
        """Malformed-submission quarantine: files the inbox poller could
        never parse are moved here (with a ``.reason.json`` sidecar)
        instead of being re-parsed forever."""
        return os.path.join(self.inbox, ".rejected")

    @property
    def quarantine(self) -> str:
        """JSONL journal of poison jobs (transient failures that
        exhausted their retry budget)."""
        return os.path.join(self.root, "quarantine.jsonl")

    @property
    def stop_file(self) -> str:
        return os.path.join(self.control, "stop")

    def run_dir(self, job_id: str) -> str:
        return os.path.join(self.runs, job_id)

    def result_file(self, job_id: str) -> str:
        return os.path.join(self.results, job_id + ".json")

    def ensure(self) -> "ServicePaths":
        for d in (self.root, self.inbox, self.control, self.runs,
                  self.results, self.warm):
            os.makedirs(d, exist_ok=True)
        return self


def write_json_atomic(path: str, payload: dict) -> None:
    """tmp-file + ``os.replace`` write, the run-manifest convention.

    ENOSPC-guarded (:func:`repro.runtime.resources.guarded_write`): a
    full disk degrades — emergency GC, one retry — before failing the
    attempt with a retryable ``ResourceExhaustedError``.
    """
    from repro.runtime.resources import guarded_write

    def _write() -> None:
        tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp"
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    guarded_write(f"json:{os.path.basename(path)}", _write)


class JobStore:
    """In-memory job table backed by the append-only JSONL journal.

    Thread-safe: the daemon's poll loop and every scheduler worker
    transition jobs concurrently.  ``load()`` replays the journal, so a
    restarted daemon (or a read-only CLI like ``repro status``) sees the
    exact pre-crash state; a torn tail line is skipped, which at worst
    forgets the very last transition — never corrupts earlier ones.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        #: byte offset up to which the journal has been folded in; refresh
        #: resumes tailing here (only ever advanced past complete lines)
        self._offset = 0
        #: records dropped by the first-terminal-wins replay rule — a
        #: nonzero count means a fenced-out writer tried to re-decide a
        #: finished job (or replayed its own record, which is benign)
        self.stale_records = 0
        #: extra keys merged into every record this store writes (a fleet
        #: shard tags its appends with its shard id)
        self.tag: dict = {}

    # -- journal ---------------------------------------------------------------
    def _append(self, record: dict) -> None:
        # Single-syscall atomic append: fleet shards share this journal.
        append_jsonl(self.path, {**self.tag, **record}, fsync=True)

    def load(self) -> "JobStore":
        """Replay the whole journal from the top (daemon start, CLI)."""
        with self._lock:
            self._jobs.clear()
            self._seq = 0
            self._offset = 0
            self.stale_records = 0
            self._tail()
        return self

    def refresh(self) -> "JobStore":
        """Fold in records appended since the last load/refresh.

        Tails the journal from the saved byte offset, so concurrent
        writers' records (and this store's own, which re-apply as no-ops
        under the replay rules) converge into the in-memory table without
        re-reading the file.  Only newline-terminated lines advance the
        offset — a torn tail is re-examined on the next refresh, by which
        time the writer's atomic append has completed.
        """
        with self._lock:
            self._tail()
        return self

    def _tail(self) -> None:
        try:
            f = open(self.path, "rb")
        except FileNotFoundError:
            return
        with f:
            f.seek(0, os.SEEK_END)
            if f.tell() < self._offset:
                # The journal shrank under us: a peer (or an offline
                # ``repro gc``) compacted it into a snapshot + tail.
                # Replay from the top — the first-submit-wins /
                # first-terminal-wins rules make re-application of
                # already-known records a counted no-op.
                self._offset = 0
            f.seek(self._offset)
            for line in f:
                if not line.endswith(b"\n"):
                    break  # in-flight append; retry next refresh
                self._offset = f.tell()
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # damaged line (skipped, like read_jsonl)
                if isinstance(record, dict):
                    self._apply_record(record)

    def _apply_record(self, record: dict) -> None:
        kind = record.get("record")
        if kind == "submit":
            if record.get("id") in self._jobs:
                # First submit wins: a re-read of our own append, or a
                # redundant re-admission raced by a peer.
                self.stale_records += 1
                return
            try:
                job = Job(
                    id=record["id"],
                    spec=JobSpec.from_json(record.get("spec", {})),
                    priority=int(record.get("priority", 0)),
                    seq=int(record.get("seq", 0)),
                    state=record.get("state", QUEUED),
                    submitted_ts=float(record.get("ts", 0.0)),
                    error=record.get("error"),
                    shard=record.get("shard"),
                )
            except (KeyError, TypeError, ValueError):
                return
            self._jobs[job.id] = job
            self._seq = max(self._seq, job.seq)
        elif kind == "state":
            job = self._jobs.get(record.get("id"))
            if job is None or record.get("state") not in STATES:
                return
            if job.terminal:
                # First terminal wins: a finished job's fate is sealed.
                # Anything after — a zombie shard's late report, or this
                # store re-reading its own terminal append — is dropped,
                # so double-completion cannot exist in replayed state.
                self.stale_records += 1
                return
            self._apply(job, record)
        elif kind == "snapshot":
            # A compaction fold: whole jobs (usually terminal) written as
            # one line in place of their submit+state history.  Replay
            # rules match the incremental ones: an unknown job is taken
            # whole; a known non-terminal job may be sealed by a terminal
            # snapshot entry; a known terminal job is never re-decided.
            for payload in record.get("jobs", ()):
                if not isinstance(payload, dict):
                    continue
                if payload.get("state") not in STATES:
                    continue
                try:
                    job = Job(
                        id=payload["id"],
                        spec=JobSpec.from_json(payload.get("spec", {})),
                        priority=int(payload.get("priority", 0)),
                        seq=int(payload.get("seq", 0)),
                        state=payload["state"],
                        submitted_ts=float(payload.get("ts", 0.0)),
                        finished_ts=payload.get("finished_ts"),
                        attempts=int(payload.get("attempts", 0)),
                        error=payload.get("error"),
                        warm_hit=bool(payload.get("warm_hit", False)),
                        hpwl=payload.get("hpwl"),
                        seconds=payload.get("seconds"),
                        shard=payload.get("shard"),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                existing = self._jobs.get(job.id)
                if existing is None:
                    self._jobs[job.id] = job
                elif not existing.terminal and job.terminal:
                    self._jobs[job.id] = job
                else:
                    self.stale_records += 1
                self._seq = max(self._seq, job.seq)
            try:
                self._seq = max(self._seq, int(record.get("seq", 0)))
            except (TypeError, ValueError):
                pass

    @staticmethod
    def _apply(job: Job, record: dict) -> None:
        job.state = record["state"]
        if job.state == RUNNING:
            job.attempts = int(record.get("attempt", job.attempts + 1))
        if "error" in record:
            job.error = record["error"]
        if "warm_hit" in record:
            job.warm_hit = bool(record["warm_hit"])
        if "hpwl" in record:
            job.hpwl = record["hpwl"]
        if "seconds" in record:
            job.seconds = record["seconds"]
        if "shard" in record:
            job.shard = record["shard"]
        if job.terminal:
            job.finished_ts = float(record.get("ts", 0.0))

    # -- mutations -------------------------------------------------------------
    def add(
        self,
        spec: JobSpec,
        job_id: str | None = None,
        priority: int = 0,
        state: str = QUEUED,
        error: dict | None = None,
        submitted_ts: float | None = None,
    ) -> Job:
        """Admit one job (or record its rejection when *state* is FAILED)."""
        with self._lock:
            self._seq += 1
            job = Job(
                id=job_id or new_job_id(),
                spec=spec,
                priority=priority,
                seq=self._seq,
                state=state,
                submitted_ts=(
                    time.time() if submitted_ts is None else submitted_ts
                ),
                error=error,
            )
            if job.id in self._jobs:
                raise UsageError(f"duplicate job id {job.id!r}")
            self._jobs[job.id] = job
            self._append(
                {
                    "record": "submit",
                    "id": job.id,
                    "ts": job.submitted_ts,
                    "seq": job.seq,
                    "priority": job.priority,
                    "state": job.state,
                    "spec": job.spec.to_json(),
                    **({"error": error} if error else {}),
                }
            )
        return job

    def transition(self, job_id: str, state: str, **extra) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            if job.terminal:
                # First terminal wins, live edition: once a job finished
                # (possibly decided by a peer shard and folded in via
                # refresh), nothing re-decides it — the attempted record
                # is neither applied nor journaled.
                self.stale_records += 1
                return job
            record = {
                "record": "state",
                "id": job_id,
                "state": state,
                "ts": time.time(),
                **extra,
            }
            self._apply(job, record)
            self._append(record)
            return job

    # -- compaction ------------------------------------------------------------
    @staticmethod
    def _snapshot_job(job: Job) -> dict:
        return {
            "id": job.id,
            "priority": job.priority,
            "seq": job.seq,
            "state": job.state,
            "ts": job.submitted_ts,
            "finished_ts": job.finished_ts,
            "attempts": job.attempts,
            "error": job.error,
            "warm_hit": job.warm_hit,
            "hpwl": job.hpwl,
            "seconds": job.seconds,
            "shard": job.shard,
            "spec": job.spec.to_json(),
        }

    def compact(self) -> dict:
        """Fold terminal replay state into one snapshot line + a live tail.

        A month of jobs replays as one ``snapshot`` record (terminal jobs,
        whose state is sticky and can never change again) followed by
        regenerated submit/state lines for the still-live jobs — instead
        of a million-line history.  The rewrite lands via tmp +
        ``os.replace`` and the reload path keeps its torn-tail tolerance
        unchanged.  Concurrent *readers* detect the shrink (see
        :meth:`_tail`) and replay from the top, which the replay rules
        make idempotent; concurrent **writers** must be excluded by the
        caller (the governor compacts under the fleet GC lease with no
        live shard leases, or offline via ``repro gc``) — an append racing
        the rename could otherwise be lost.

        Returns ``{"before_bytes", "after_bytes", "jobs_folded",
        "jobs_live"}``.
        """
        with self._lock:
            self._tail()  # fold any records appended since the last poll
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
            terminal = [j for j in jobs if j.terminal]
            live = [j for j in jobs if not j.terminal]
            lines = [
                json.dumps(
                    {
                        **self.tag,
                        "record": "snapshot",
                        "ts": time.time(),
                        "seq": self._seq,
                        "jobs": [self._snapshot_job(j) for j in terminal],
                    },
                    sort_keys=True,
                )
            ]
            for job in live:
                lines.append(json.dumps(
                    {
                        **self.tag,
                        "record": "submit",
                        "id": job.id,
                        "ts": job.submitted_ts,
                        "seq": job.seq,
                        "priority": job.priority,
                        "state": QUEUED,
                        "spec": job.spec.to_json(),
                    },
                    sort_keys=True,
                ))
                if job.state != QUEUED or job.attempts or job.error:
                    record = {
                        **self.tag,
                        "record": "state",
                        "id": job.id,
                        "state": job.state,
                        "ts": job.submitted_ts,
                        "attempt": job.attempts,
                    }
                    if job.error is not None:
                        record["error"] = job.error
                    if job.warm_hit:
                        record["warm_hit"] = True
                    if job.shard is not None:
                        record["shard"] = job.shard
                    lines.append(json.dumps(record, sort_keys=True))
            before_bytes = 0
            if os.path.exists(self.path):
                before_bytes = os.path.getsize(self.path)
            from repro.runtime.resources import guarded_write

            def _rewrite() -> None:
                tmp = f"{self.path}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp"
                with open(tmp, "w") as f:
                    f.write("".join(line + "\n" for line in lines))
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, self.path)

            guarded_write("compact:jobs.jsonl", _rewrite)
            self._offset = os.path.getsize(self.path)
            return {
                "before_bytes": before_bytes,
                "after_bytes": self._offset,
                "jobs_folded": len(terminal),
                "jobs_live": len(live),
            }

    def note_gc(self, job: Job, **info) -> None:
        """Journal a GC summary for *job* before its run dir is deleted.

        The record kind (``gc``) is ignored by replay — the job's
        terminal state is already journaled — but it preserves a durable
        trace (id, final state, hpwl, reclaimed bytes) of what the
        retention policy removed and when.
        """
        with self._lock:
            self._append(
                {
                    "record": "gc",
                    "id": job.id,
                    "ts": time.time(),
                    "state": job.state,
                    "hpwl": job.hpwl,
                    "attempts": job.attempts,
                    **info,
                }
            )

    # -- queries ---------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def in_state(self, state: str) -> list[Job]:
        with self._lock:
            return sorted(
                (j for j in self._jobs.values() if j.state == state),
                key=lambda j: (-j.priority, j.seq),
            )

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out

    def queue_depth(self) -> int:
        return self.counts()[QUEUED]

    def active(self) -> bool:
        counts = self.counts()
        return counts[QUEUED] > 0 or counts[RUNNING] > 0
