"""Worker scheduling and per-job budgets.

The :class:`Scheduler` multiplexes admitted jobs over a bounded pool of
worker threads — priority first, FIFO within a priority (the dispatch key
is ``(-priority, seq)``).  Workers re-check a job's state at dispatch
time, so a job cancelled while queued is simply skipped.  A job that
raises — structured :class:`~repro.runtime.errors.PlacementError`,
budget exhaustion, anything — is contained by its executor: the worker
records the failure and moves on to the next job; siblings and the
daemon never see the exception.

Supervision hooks (PR 5):

- A job id may be re-enqueued after its attempt finished (retry with
  backoff): the dedup set is released at dispatch, not at completion.
- :meth:`Scheduler.abandon` lets the watchdog give up on a hung attempt
  *without* killing its thread (Python can't): the attempt's slot is
  released for :meth:`idle` accounting and a **replacement worker
  thread** is spawned so capacity survives.  When the stuck thread
  eventually returns, it consumes its own abandon ticket and exits.

:class:`JobRunContext` extends the PR 1 :class:`RunContext` with a
*job-level* wall-clock budget: every stage budget the flow requests is
clipped to the job's remaining allowance (reusing
:class:`~repro.runtime.budget.StageBudget` unchanged), so anytime stages
stop early and hard stages raise ``StageTimeoutError`` once the job is
out of time — which the executor turns into a FAILED job.  When a
:class:`~repro.service.supervisor.Heartbeat` is attached, the context
also wires the two progress streams that feed it: every event-log
emission beats, and every budget poll goes through
:class:`~repro.service.supervisor.SupervisedBudget` (which beats, and
raises ``StageStallError`` once the watchdog cancels the attempt).
"""

from __future__ import annotations

import queue
import threading

from repro.runtime.budget import StageBudget
from repro.runtime.harness import RunContext


class JobRunContext(RunContext):
    """RunContext whose stage budgets are clipped by a whole-job budget."""

    def __init__(
        self,
        run_dir: str | None,
        config,
        design,
        resume: bool = False,
        job_budget: StageBudget | None = None,
        heartbeat=None,
        inference_broker=None,
    ) -> None:
        super().__init__(run_dir, config, design, resume=resume)
        self.job_budget = job_budget
        self.heartbeat = heartbeat
        # One daemon-owned broker serves every scheduler slot.
        self.inference_broker = inference_broker
        if heartbeat is not None:
            self.events.listener = heartbeat.beat_event

    def budget(self, stage: str) -> StageBudget:
        base = super().budget(stage)
        job = self.job_budget
        if job is not None and job.seconds is not None:
            remaining = max(0.0, job.remaining())
            if base.seconds is None or remaining < base.seconds:
                base = StageBudget(stage, remaining)
        if self.heartbeat is not None:
            from repro.service.supervisor import SupervisedBudget

            return SupervisedBudget(base, self.heartbeat)
        return base


class Scheduler:
    """Dispatches queued jobs to a bounded pool of worker threads.

    Args:
        execute: callable invoked with a job id; owns all state
            transitions and must not raise (the service's executor
            converts failures into FAILED transitions).
        should_run: callable returning True when the job id is still
            dispatchable (i.e. QUEUED) — the cancel-while-queued check.
        workers: thread count; the bounded capacity every job shares.
    """

    def __init__(self, execute, should_run, workers: int = 1) -> None:
        self.execute = execute
        self.should_run = should_run
        #: optional callable polled before each dispatch: while it
        #: returns False the dequeued job is requeued (not dropped — the
        #: ``should_run`` check is for jobs that must *never* run, this
        #: gate is for jobs that must run *later*).  The resource
        #: governor pauses dispatch through this when disk headroom
        #: cannot fit a projected run dir; running jobs are untouched.
        self.dispatch_gate = None
        self.workers = max(1, int(workers))
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._inflight = 0
        self._lock = threading.Lock()
        self._enqueued: set[str] = set()
        #: monotonic attempt-dispatch counter; each dequeue gets a ticket
        self._next_ticket = 0
        #: job id -> ticket of the attempt currently holding a worker
        self._running: dict[str, int] = {}
        #: tickets the watchdog force-abandoned; their (stuck) threads
        #: consume them on eventual return
        self._abandoned: set[int] = set()

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for i in range(self.workers):
            self._spawn_worker(i)

    def _spawn_worker(self, index: int) -> None:
        t = threading.Thread(
            target=self._worker, name=f"repro-worker-{index}", daemon=True
        )
        t.start()
        self._threads.append(t)

    def stop(self, timeout: float | None = None) -> None:
        """Stop dispatching and wait for in-flight jobs to finish.

        Abandoned (hung) attempts may never return; their daemon threads
        are joined with a bounded *timeout* (default 1s each when any
        abandon ticket is outstanding) and otherwise left to die with the
        process.
        """
        self._stop.set()
        with self._lock:
            if timeout is None and self._abandoned:
                timeout = 1.0
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()

    # -- dispatch --------------------------------------------------------------
    def enqueue(self, job) -> bool:
        """Queue *job* for dispatch (idempotent per queued job id).

        The dedup set is released when the job is *dequeued*, so a
        retried job can be enqueued again after its failed attempt —
        while still collapsing duplicate enqueues of a waiting job.
        """
        with self._lock:
            if job.id in self._enqueued:
                return False
            self._enqueued.add(job.id)
        self._queue.put((-job.priority, job.seq, job.id))
        return True

    def abandon(self, job_id: str) -> bool:
        """Release the slot of *job_id*'s running attempt (hung thread).

        The stuck thread is not killed — it keeps its own ticket and
        exits when (if) it ever returns.  A replacement worker thread is
        spawned so the pool keeps its capacity.
        """
        with self._lock:
            ticket = self._running.pop(job_id, None)
            if ticket is None:
                return False
            self._abandoned.add(ticket)
            index = len(self._threads)
        self._spawn_worker(index)
        return True

    def idle(self) -> bool:
        with self._lock:
            return (
                self._queue.empty()
                and self._inflight - len(self._abandoned) <= 0
            )

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            gate = self.dispatch_gate
            if gate is not None and not gate():
                # Dispatch paused (resource pressure): the job goes back
                # to the queue intact — it stays enqueued/deduped and
                # runs once the governor reopens the gate.
                self._queue.put(item)
                self._queue.task_done()
                self._stop.wait(0.05)
                continue
            _, _, job_id = item
            with self._lock:
                self._inflight += 1
                self._next_ticket += 1
                ticket = self._next_ticket
                self._running[job_id] = ticket
                self._enqueued.discard(job_id)
            abandoned = False
            try:
                if self.should_run(job_id):
                    self.execute(job_id)
            finally:
                with self._lock:
                    self._inflight -= 1
                    if self._running.get(job_id) == ticket:
                        del self._running[job_id]
                    elif ticket in self._abandoned:
                        # the watchdog gave up on this attempt and spawned
                        # a replacement thread; consume the ticket and exit
                        self._abandoned.discard(ticket)
                        abandoned = True
                self._queue.task_done()
            if abandoned:
                return
