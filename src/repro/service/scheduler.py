"""Worker scheduling and per-job budgets.

The :class:`Scheduler` multiplexes admitted jobs over a bounded pool of
worker threads — priority first, FIFO within a priority (the dispatch key
is ``(-priority, seq)``).  Workers re-check a job's state at dispatch
time, so a job cancelled while queued is simply skipped.  A job that
raises — structured :class:`~repro.runtime.errors.PlacementError`,
budget exhaustion, anything — is contained by its executor: the worker
records the failure and moves on to the next job; siblings and the
daemon never see the exception.

:class:`JobRunContext` extends the PR 1 :class:`RunContext` with a
*job-level* wall-clock budget: every stage budget the flow requests is
clipped to the job's remaining allowance (reusing
:class:`~repro.runtime.budget.StageBudget` unchanged), so anytime stages
stop early and hard stages raise ``StageTimeoutError`` once the job is
out of time — which the executor turns into a FAILED job.
"""

from __future__ import annotations

import queue
import threading

from repro.runtime.budget import StageBudget
from repro.runtime.harness import RunContext


class JobRunContext(RunContext):
    """RunContext whose stage budgets are clipped by a whole-job budget."""

    def __init__(
        self,
        run_dir: str | None,
        config,
        design,
        resume: bool = False,
        job_budget: StageBudget | None = None,
    ) -> None:
        super().__init__(run_dir, config, design, resume=resume)
        self.job_budget = job_budget

    def budget(self, stage: str) -> StageBudget:
        base = super().budget(stage)
        job = self.job_budget
        if job is None or job.seconds is None:
            return base
        remaining = max(0.0, job.remaining())
        if base.seconds is None or remaining < base.seconds:
            return StageBudget(stage, remaining)
        return base


class Scheduler:
    """Dispatches queued jobs to a bounded pool of worker threads.

    Args:
        execute: callable invoked with a job id; owns all state
            transitions and must not raise (the service's executor
            converts failures into FAILED transitions).
        should_run: callable returning True when the job id is still
            dispatchable (i.e. QUEUED) — the cancel-while-queued check.
        workers: thread count; the bounded capacity every job shares.
    """

    def __init__(self, execute, should_run, workers: int = 1) -> None:
        self.execute = execute
        self.should_run = should_run
        self.workers = max(1, int(workers))
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._inflight = 0
        self._lock = threading.Lock()
        self._enqueued: set[str] = set()

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self) -> None:
        """Stop dispatching and wait for in-flight jobs to finish."""
        self._stop.set()
        for t in self._threads:
            t.join()
        self._threads.clear()

    # -- dispatch --------------------------------------------------------------
    def enqueue(self, job) -> bool:
        """Queue *job* for dispatch (idempotent per job id)."""
        with self._lock:
            if job.id in self._enqueued:
                return False
            self._enqueued.add(job.id)
        self._queue.put((-job.priority, job.seq, job.id))
        return True

    def idle(self) -> bool:
        with self._lock:
            return self._queue.empty() and self._inflight == 0

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                _, _, job_id = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            with self._lock:
                self._inflight += 1
            try:
                if self.should_run(job_id):
                    self.execute(job_id)
            finally:
                with self._lock:
                    self._inflight -= 1
                self._queue.task_done()
