"""Service metrics: counters, gauges, and latency histograms.

One :class:`ServiceMetrics` instance lives in the daemon; every poll
cycle snapshots it to ``<service_dir>/metrics.json`` (atomic write), and
``repro status`` prints from that file — the metrics surface works
across processes without any RPC.

Histograms keep exact count/sum/min/max plus a bounded window of recent
observations for percentiles; with fewer than ``window`` observations
the percentiles are exact.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.service.jobs import write_json_atomic


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted list."""
    rank = max(0, min(len(values) - 1, round(q * (len(values) - 1))))
    return values[rank]


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "window")

    def __init__(self, window: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.window.append(value)

    def snapshot(self) -> dict:
        recent = sorted(self.window)
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "mean": round(self.sum / self.count, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "p50": round(_percentile(recent, 0.50), 6),
            "p90": round(_percentile(recent, 0.90), 6),
        }


class ServiceMetrics:
    """Thread-safe counters / gauges / histograms with JSON snapshots."""

    def __init__(self, window: int = 512) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram(self._window)
            hist.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, default: float = 0) -> float:
        """Last value set for gauge *name* (the governor's ``resource_*``
        family and ``rejected_pending`` read back through this)."""
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._histograms.items())
                    if hist.count
                },
            }

    def write(self, path: str, **top_level) -> dict:
        """Snapshot to *path* (atomic); *top_level* keys merge in above
        the counters/gauges/histograms sections."""
        payload = {"ts": round(time.time(), 3), **top_level, **self.snapshot()}
        write_json_atomic(path, payload)
        return payload
