"""Weight (de)serialization for checkpointing agents.

Checkpoints matter to the Fig. 5 experiment: MCTS is launched from agents
captured at successive training stages.  Weights are stored as an ``.npz``
archive keyed ``p{i}`` in :meth:`Layer.parameters` order; batch-norm running
statistics are included when the object exposes them via ``bn_state()``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2D, Layer


def _batchnorms(layer: Layer) -> list[BatchNorm2D]:
    found: list[BatchNorm2D] = []
    if isinstance(layer, BatchNorm2D):
        found.append(layer)
    for child in layer.children():
        found.extend(_batchnorms(child))
    return found


def save_params(layer: Layer, path: str) -> None:
    """Write all parameters and BN running stats of *layer* to *path* (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for i, p in enumerate(layer.parameters()):
        arrays[f"p{i}"] = p.data
    for j, bn in enumerate(_batchnorms(layer)):
        arrays[f"bn{j}_mean"] = bn.running_mean
        arrays[f"bn{j}_var"] = bn.running_var
    np.savez(path, **arrays)


def load_params(layer: Layer, path: str) -> None:
    """Restore parameters saved by :func:`save_params` (shapes must match).

    Checkpoints are dtype-portable: arrays saved from a float64 network
    load into a float32 one and vice versa — values are cast into each
    parameter's existing buffer, so the live network keeps the precision
    it was constructed with (see :mod:`repro.nn.dtype`).
    """
    with np.load(path) as data:
        for i, p in enumerate(layer.parameters()):
            arr = data[f"p{i}"]
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: saved {arr.shape}, "
                    f"expected {p.data.shape}"
                )
            p.data[...] = arr
        for j, bn in enumerate(_batchnorms(layer)):
            bn.running_mean[...] = data[f"bn{j}_mean"]
            bn.running_var[...] = data[f"bn{j}_var"]


def optimizer_state(opt) -> dict:
    """Snapshot an optimizer's moment estimates for checkpoint/resume.

    Supports the Adam/SGD classes of :mod:`repro.nn.optim`; returns deep
    copies so later steps cannot mutate a stored snapshot.
    """
    state: dict = {}
    if hasattr(opt, "_m"):
        state["m"] = [m.copy() for m in opt._m]
        state["v"] = [v.copy() for v in opt._v]
        state["t"] = opt._t
    if hasattr(opt, "_velocity"):
        state["velocity"] = [v.copy() for v in opt._velocity]
    return state


def restore_optimizer(opt, state: dict) -> None:
    """Restore a snapshot from :func:`optimizer_state` (same topology)."""
    if "m" in state:
        for dst, src in zip(opt._m, state["m"]):
            dst[...] = src
        for dst, src in zip(opt._v, state["v"]):
            dst[...] = src
        opt._t = state["t"]
    if "velocity" in state:
        for dst, src in zip(opt._velocity, state["velocity"]):
            dst[...] = src


def copy_params(src: Layer, dst: Layer) -> None:
    """Copy parameters and BN stats from *src* into *dst* (same topology)."""
    src_params = src.parameters()
    dst_params = dst.parameters()
    if len(src_params) != len(dst_params):
        raise ValueError("layer topologies differ")
    for ps, pd in zip(src_params, dst_params):
        pd.data[...] = ps.data
    for bs, bd in zip(_batchnorms(src), _batchnorms(dst)):
        bd.running_mean[...] = bs.running_mean
        bd.running_var[...] = bs.running_var
