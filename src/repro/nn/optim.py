"""Optimizers (Adam, SGD) and gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


def clip_gradients(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most *max_norm*.

    Returns the pre-clip norm (useful for training diagnostics).  The
    squared norm accumulates in float64 regardless of the parameter dtype,
    so float32 networks report the same diagnostics a float64 run would.
    """
    total = 0.0
    for p in params:
        total += float((p.grad.astype(np.float64, copy=False) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        """Apply one (momentum-)SGD update to every parameter."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba) with bias correction.

    Moment estimates are allocated with ``zeros_like`` and therefore follow
    each parameter's dtype — a float32 network carries float32 optimizer
    state (and checkpoints restore across dtypes by casting on assignment).
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected Adam update to every parameter."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()
