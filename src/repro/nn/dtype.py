"""Global numeric-precision policy for the nn substrate.

Every :class:`~repro.nn.layers.Parameter` (and the batch-norm running
statistics) is allocated in the *default dtype* configured here — float32
unless changed.  float32 halves memory traffic and roughly doubles the
throughput of the im2col matmuls that dominate inference; the accuracy
impact on this workload is negligible because the policy is renormalized
by a masked softmax and the value head feeds a reward on the order of 1
(see docs/architecture.md, "Performance").

Loss/advantage arithmetic and gradient-norm accumulation stay in float64
regardless of the parameter dtype, and checkpoints saved under one dtype
load under any other (values are cast on assignment).

Code that needs full double precision — e.g. numerical gradient checks —
switches temporarily::

    with default_dtype("float64"):
        net = PolicyValueNet(config)
"""

from __future__ import annotations

import contextlib

import numpy as np

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))
_default = np.dtype(np.float32)


def get_default_dtype() -> np.dtype:
    """The dtype newly-constructed parameters and buffers use."""
    return _default


def set_default_dtype(dtype: str | type | np.dtype) -> None:
    """Set the process-wide default parameter dtype (float32 or float64)."""
    global _default
    d = np.dtype(dtype)
    if d not in _ALLOWED:
        raise ValueError(f"unsupported parameter dtype {d}; use float32 or float64")
    _default = d


def resolve_dtype(dtype: str | type | np.dtype | None) -> np.dtype:
    """*dtype* itself (validated), or the current default when ``None``."""
    if dtype is None:
        return _default
    d = np.dtype(dtype)
    if d not in _ALLOWED:
        raise ValueError(f"unsupported parameter dtype {d}; use float32 or float64")
    return d


@contextlib.contextmanager
def default_dtype(dtype: str | type | np.dtype):
    """Temporarily switch the default dtype (restored on exit)."""
    previous = get_default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
