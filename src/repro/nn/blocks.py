"""Residual blocks (the ResBlock / ResTower of Fig. 2 and Table I).

ResBlock: Conv3×3+BN → ReLU → Conv3×3+BN, added to the skip connection,
followed by a ReLU — the AlphaGo-Zero-style block the paper adopts.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2D, Conv2D, Layer, Parameter, ReLU
from repro.utils.rng import ensure_rng


class ResBlock(Layer):
    """Conv-BN-ReLU-Conv-BN + identity skip, final ReLU."""

    def __init__(
        self, channels: int, rng: int | np.random.Generator | None = None
    ) -> None:
        g = ensure_rng(rng)
        self.conv1 = Conv2D(channels, channels, kernel=3, rng=g)
        self.bn1 = BatchNorm2D(channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(channels, channels, kernel=3, rng=g)
        self.bn2 = BatchNorm2D(channels)
        self.relu_out = ReLU()

    def children(self) -> list[Layer]:
        return [self.conv1, self.bn1, self.relu1, self.conv2, self.bn2, self.relu_out]

    def parameters(self) -> list[Parameter]:
        return [p for c in self.children() for p in c.parameters()]

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.bn1(self.conv1(x))
        y = self.relu1(y)
        y = self.bn2(self.conv2(y))
        return self.relu_out(y + x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        d = self.relu_out.backward(dy)
        d_branch = self.bn2.backward(d)
        d_branch = self.conv2.backward(d_branch)
        d_branch = self.relu1.backward(d_branch)
        d_branch = self.bn1.backward(d_branch)
        d_branch = self.conv1.backward(d_branch)
        return d_branch + d  # skip path


class ResTower(Layer):
    """A stack of *n_blocks* residual blocks (paper: 10 × ResBlock)."""

    def __init__(
        self,
        channels: int,
        n_blocks: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        g = ensure_rng(rng)
        self.blocks = [ResBlock(channels, rng=g) for _ in range(n_blocks)]

    def children(self) -> list[Layer]:
        return list(self.blocks)

    def parameters(self) -> list[Parameter]:
        return [p for b in self.blocks for p in b.parameters()]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for block in self.blocks:
            x = block(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for block in reversed(self.blocks):
            dy = block.backward(dy)
        return dy
