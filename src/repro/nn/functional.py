"""Stateless tensor operations: im2col/col2im, softmax, losses."""

from __future__ import annotations

import numpy as np


def im2col(
    x: np.ndarray, kernel: int, pad: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Unfold NCHW input into convolution columns (stride 1).

    Returns shape (N, C·k·k, H·W): each output column holds the receptive
    field of one spatial position, so convolution becomes a single matmul.

    *out* optionally supplies a reusable scratch array of the exact return
    shape and dtype (a previous return value): the unfold writes into it
    instead of allocating, which is what makes repeated same-shape
    inference calls allocation-free.  A mismatched *out* is ignored.
    """
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    shape = (n, c * kernel * kernel, h * w)
    if out is not None and out.shape == shape and out.dtype == x.dtype:
        cols = out.reshape(n, c, kernel, kernel, h, w)
    else:
        cols = np.empty((n, c, kernel, kernel, h, w), dtype=x.dtype)
    # Gather k*k shifted views; stride-1 same-size output.
    for i in range(kernel):
        for j in range(kernel):
            cols[:, :, i, j] = xp[:, :, i : i + h, j : j + w]
    return cols.reshape(*shape)


def col2im(cols: np.ndarray, x_shape: tuple, kernel: int, pad: int) -> np.ndarray:
    """Adjoint of :func:`im2col` — scatter-adds columns back to NCHW."""
    n, c, h, w = x_shape
    cols = cols.reshape(n, c, kernel, kernel, h, w)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kernel):
        for j in range(kernel):
            xp[:, :, i : i + h, j : j + w] += cols[:, :, i, j]
    if pad == 0:
        return xp
    return xp[:, :, pad : pad + h, pad : pad + w]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def masked_softmax(logits: np.ndarray, mask: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax restricted to positive-mask entries, renormalized.

    This realizes the paper's policy head: the FC output is "multiplied by
    available placing area s_a" before the softmax, so grids with zero
    availability receive zero probability.  If *every* entry is masked out
    the distribution falls back to uniform (the environment treats that as
    "place anywhere and accept the overflow").
    """
    p = softmax(logits, axis=axis) * mask
    total = p.sum(axis=axis, keepdims=True)
    uniform = np.ones_like(p) / p.shape[axis]
    return np.where(total > 0, p / np.where(total > 0, total, 1.0), uniform)
