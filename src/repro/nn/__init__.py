"""Pure-numpy deep-learning substrate.

The paper trains its agent with PyTorch on a Tesla T4; this environment has
neither, so the network machinery of Fig. 2 / Table I is implemented from
scratch on numpy: Conv2D (im2col), BatchNorm2D, ReLU, Linear, residual
blocks, manual backpropagation, and the Adam optimizer.  The math is
identical to the framework versions — only the scale differs (channel
count, tower depth and grid size are configurable; paper-scale settings
remain constructible).

Layout convention is NCHW throughout.
"""

from repro.nn.dtype import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    Layer,
    Linear,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.blocks import ResBlock, ResTower
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.serialization import load_params, save_params

__all__ = [
    "Adam",
    "BatchNorm2D",
    "Conv2D",
    "Flatten",
    "Layer",
    "Linear",
    "Parameter",
    "ReLU",
    "ResBlock",
    "ResTower",
    "SGD",
    "Sequential",
    "clip_gradients",
    "default_dtype",
    "get_default_dtype",
    "load_params",
    "resolve_dtype",
    "save_params",
    "set_default_dtype",
]
