"""Trainable layers with manual backpropagation (NCHW).

Every layer caches what its backward pass needs during ``forward`` and
accumulates parameter gradients into :class:`Parameter.grad` during
``backward`` (call :meth:`Layer.zero_grad` between optimizer steps).
Shapes follow the paper's Table I blocks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import resolve_dtype
from repro.nn.functional import col2im, im2col
from repro.utils.rng import ensure_rng


class Parameter:
    """A trainable array plus its accumulated gradient.

    Allocated in the library's default dtype (float32 unless
    :func:`repro.nn.dtype.set_default_dtype` says otherwise); pass *dtype*
    to pin a specific precision.
    """

    def __init__(
        self,
        data: np.ndarray,
        name: str = "",
        dtype: str | type | np.dtype | None = None,
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=resolve_dtype(dtype))
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Layer:
    """Base class: forward/backward plus parameter enumeration."""

    training: bool = True

    def parameters(self) -> list[Parameter]:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> None:
        self.training = mode
        for child in self.children():
            child.train(mode)

    def eval(self) -> None:
        self.train(False)

    def children(self) -> list["Layer"]:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv2D(Layer):
    """Stride-1, 'same'-padded 2-D convolution (the only kind Table I uses)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if kernel % 2 != 1:
            raise ValueError("same-padding requires an odd kernel")
        g = ensure_rng(rng)
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)  # He init (ReLU networks)
        self.kernel = kernel
        self.pad = kernel // 2
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            g.normal(0.0, scale, size=(out_channels, fan_in)), name="conv.weight"
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias") if bias else None
        self._cache: tuple | None = None
        #: inference-only im2col scratch, keyed by (input shape, dtype).
        #: Reused only in eval mode: training keeps a fresh cols array per
        #: forward because ``backward`` reads it after later forwards may
        #: have run, and batch shapes vary update-to-update.
        self._scratch: dict[tuple, np.ndarray] = {}

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        if self.training:
            cols = im2col(x, self.kernel, self.pad)  # (N, C*k*k, H*W)
        else:
            key = (x.shape, x.dtype.str)
            cols = im2col(x, self.kernel, self.pad, out=self._scratch.get(key))
            self._scratch[key] = cols
        # (O, F) @ (N, F, S) broadcasts to one BLAS gemm per sample — far
        # faster than an un-optimized einsum, and each sample's result is
        # independent of what else is in the batch.
        y = np.matmul(self.weight.data, cols)  # (N, O, S)
        if self.bias is not None:
            y += self.bias.data[None, :, None]
        self._cache = (x.shape, cols)
        return y.reshape(n, self.out_channels, h, w)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_shape, cols = self._cache
        n, _, h, w = x_shape
        dy2 = dy.reshape(n, self.out_channels, h * w)
        self.weight.grad += np.matmul(dy2, cols.transpose(0, 2, 1)).sum(axis=0)
        if self.bias is not None:
            self.bias.grad += dy2.sum(axis=(0, 2))
        dcols = np.matmul(self.weight.data.T, dy2)
        return col2im(dcols, x_shape, self.kernel, self.pad)


class BatchNorm2D(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels), name="bn.gamma")
        self.beta = Parameter(np.zeros(channels), name="bn.beta")
        self.running_mean = np.zeros(channels, dtype=self.gamma.data.dtype)
        self.running_var = np.ones(channels, dtype=self.gamma.data.dtype)
        self._cache: tuple | None = None

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            # Moments accumulate in float64 (stable for large N·H·W even
            # under float32 activations), then drop back to the layer dtype.
            mean = x.mean(axis=(0, 2, 3), dtype=np.float64).astype(x.dtype)
            var = x.var(axis=(0, 2, 3), dtype=np.float64).astype(x.dtype)
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return self.gamma.data[None, :, None, None] * x_hat + self.beta.data[
            None, :, None, None
        ]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_hat, inv_std, shape = self._cache
        n, _, h, w = shape
        m = n * h * w
        self.gamma.grad += (dy * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += dy.sum(axis=(0, 2, 3))
        if not self.training:
            return dy * (self.gamma.data * inv_std)[None, :, None, None]
        dxhat = dy * self.gamma.data[None, :, None, None]
        term1 = dxhat
        term2 = dxhat.mean(axis=(0, 2, 3), keepdims=True)
        term3 = x_hat * (dxhat * x_hat).sum(axis=(0, 2, 3), keepdims=True) / m
        return (term1 - term2 - term3) * inv_std[None, :, None, None]


class ReLU(Layer):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._mask


class Linear(Layer):
    """Fully connected layer over the trailing dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        g = ensure_rng(rng)
        scale = np.sqrt(2.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            g.normal(0.0, scale, size=(out_features, in_features)), name="fc.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="fc.bias")
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.data.T + self.bias.data

    def backward(self, dy: np.ndarray) -> np.ndarray:
        self.weight.grad += dy.T @ self._x
        self.bias.grad += dy.sum(axis=0)
        return dy @ self.weight.data


class Flatten(Layer):
    """(N, C, H, W) -> (N, C·H·W)."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._shape)


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def children(self) -> list[Layer]:
        return self.layers

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy
