"""Netlist coarsening (Sec. II-A): macro groups and cell groups.

The paper reduces both RL and MCTS complexity by transforming macro
*placement* into macro-group *allocation*: macros are clustered with the
score Γ (Eq. 1) and cells with φ (Eq. 2), both greedy highest-score-pair
merges that stop when a group would exceed one grid cell or the best score
falls below the threshold ν.
"""

from repro.coarsen.groups import Group, GroupKind
from repro.coarsen.scores import GammaParams, PhiParams, gamma_score, phi_score
from repro.coarsen.cluster import cluster_macros, cluster_cells
from repro.coarsen.coarse import CoarseNetlist, CoarseNet, coarsen_design

__all__ = [
    "CoarseNet",
    "CoarseNetlist",
    "GammaParams",
    "Group",
    "GroupKind",
    "PhiParams",
    "cluster_cells",
    "cluster_macros",
    "coarsen_design",
    "gamma_score",
    "phi_score",
]
