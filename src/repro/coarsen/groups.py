"""Group bookkeeping shared by macro and cell clustering."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.netlist.hierarchy import common_prefix
from repro.netlist.model import Node


class GroupKind(enum.Enum):
    MACRO = "macro"
    CELL = "cell"
    FIXED = "fixed"  # preplaced macros and I/O pads — never merged


@dataclass
class Group:
    """A cluster of netlist nodes treated as one allocation unit.

    ``cx``/``cy`` is the area-weighted centroid in the *initial* (prototype)
    placement — the ΔD term of both scores measures distances between these
    centroids.  ``hierarchy`` is the common hierarchy prefix of all members,
    which is what H(g_i, g_j) compares after merges.
    """

    gid: int
    kind: GroupKind
    members: list[str] = field(default_factory=list)
    area: float = 0.0
    cx: float = 0.0
    cy: float = 0.0
    hierarchy: str = ""
    #: bounding box of member rectangles in the initial placement,
    #: (x_min, y_min, x_max, y_max); used to derive the group's shape.
    bbox: tuple[float, float, float, float] | None = None

    @classmethod
    def of_node(cls, gid: int, node: Node, kind: GroupKind) -> "Group":
        return cls(
            gid=gid,
            kind=kind,
            members=[node.name],
            area=node.area,
            cx=node.cx,
            cy=node.cy,
            hierarchy=node.hierarchy,
            bbox=(node.x, node.y, node.x + node.width, node.y + node.height),
        )

    def merged_with(self, other: "Group", gid: int) -> "Group":
        """A new group combining *self* and *other* (inputs untouched)."""
        area = self.area + other.area
        if area > 0:
            cx = (self.cx * self.area + other.cx * other.area) / area
            cy = (self.cy * self.area + other.cy * other.area) / area
        else:
            cx, cy = self.cx, self.cy
        boxes = [b for b in (self.bbox, other.bbox) if b is not None]
        bbox = None
        if boxes:
            bbox = (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
        return Group(
            gid=gid,
            kind=self.kind,
            members=self.members + other.members,
            area=area,
            cx=cx,
            cy=cy,
            hierarchy=common_prefix(self.hierarchy, other.hierarchy),
            bbox=bbox,
        )

    def shape(self, max_aspect: float = 2.0) -> tuple[float, float]:
        """(width, height) of the group's representative rectangle.

        The rectangle has the group's total area; its aspect ratio follows
        the members' bounding box in the prototype placement, clamped to
        ``[1/max_aspect, max_aspect]``.  This is the shape the RL state's
        s_m matrix and the legalizer use for multi-grid groups.
        """
        if self.area <= 0:
            return 0.0, 0.0
        aspect = 1.0
        if self.bbox is not None:
            bw = self.bbox[2] - self.bbox[0]
            bh = self.bbox[3] - self.bbox[1]
            if bw > 0 and bh > 0:
                aspect = bw / bh
        aspect = min(max(aspect, 1.0 / max_aspect), max_aspect)
        h = (self.area / aspect) ** 0.5
        return aspect * h, h
