"""Coarsened netlist construction (Sec. II-A).

After clustering, the design is represented by:

- **macro groups** — the RL/MCTS allocation units, sorted in non-increasing
  area order (the paper's list M: "macro groups with larger areas ... are
  given higher priority");
- **cell groups** — movable mass used by the quadratic legalization steps;
- **fixed groups** — preplaced macros and I/O pads, one group each (they are
  connectivity anchors, never allocation decisions);
- **coarse nets** — original nets projected onto groups, with nets that
  collapse onto the same group set merged into one weighted net.

The coarse netlist is itself exposed as a :class:`repro.netlist.model.Netlist`
(:meth:`CoarseNetlist.as_netlist`) so the quadratic engine and HPWL code run
on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coarsen.cluster import cluster_cells, cluster_macros, singleton_groups
from repro.coarsen.groups import Group, GroupKind
from repro.coarsen.scores import GammaParams, PhiParams
from repro.grid.plan import GridPlan
from repro.netlist.model import (
    Cell,
    Design,
    Macro,
    Net,
    Netlist,
    Pin,
)


@dataclass(frozen=True)
class CoarseNet:
    """A net over group indices.

    ``groups`` holds indices into :attr:`CoarseNetlist.all_groups`; ``weight``
    accumulates the weights of every original net that projected onto this
    exact group set.
    """

    groups: tuple[int, ...]
    weight: float


@dataclass
class CoarseNetlist:
    """The paper's coarsened problem instance."""

    design: Design
    plan: GridPlan
    macro_groups: list[Group] = field(default_factory=list)
    cell_groups: list[Group] = field(default_factory=list)
    fixed_groups: list[Group] = field(default_factory=list)
    coarse_nets: list[CoarseNet] = field(default_factory=list)

    @property
    def all_groups(self) -> list[Group]:
        """Canonical group ordering: macro groups, cell groups, fixed groups."""
        return self.macro_groups + self.cell_groups + self.fixed_groups

    @property
    def n_macro_groups(self) -> int:
        return len(self.macro_groups)

    def group_span(self, index: int) -> tuple[int, int]:
        """(rows, cols) grid footprint of macro group *index* — dim(s_m)."""
        w, h = self.macro_groups[index].shape()
        return self.plan.span(w, h)

    # -- coarse netlist as a Netlist -----------------------------------------
    def group_node_name(self, index: int) -> str:
        n_mg = len(self.macro_groups)
        n_cg = len(self.cell_groups)
        if index < n_mg:
            return f"mg{index}"
        if index < n_mg + n_cg:
            return f"cg{index - n_mg}"
        return f"fx{index - n_mg - n_cg}"

    def as_netlist(self) -> Netlist:
        """Materialize groups and coarse nets as a plain :class:`Netlist`.

        Macro groups become movable :class:`Macro` nodes with their
        representative rectangle; cell groups become :class:`Cell` nodes
        (square of equivalent area); fixed groups become fixed macros at
        their original centroid.  Pins sit at node centers (offsets are a
        sub-group detail the coarse model abandons).
        """
        nl = Netlist(name=f"{self.design.name}::coarse")
        for i, g in enumerate(self.all_groups):
            name = self.group_node_name(i)
            if g.kind is GroupKind.MACRO:
                w, h = g.shape()
                node = Macro(name, w, h, hierarchy=g.hierarchy)
            elif g.kind is GroupKind.CELL:
                side = g.area**0.5
                node = Cell(name, side, side, hierarchy=g.hierarchy)
            else:
                side = max(g.area, 1e-9) ** 0.5
                node = Macro(name, side, side, fixed=True, hierarchy=g.hierarchy)
            node.move_center_to(g.cx, g.cy)
            nl.add_node(node)
        for j, cnet in enumerate(self.coarse_nets):
            net = Net(
                name=f"cn{j}",
                pins=[Pin(node=self.group_node_name(gi)) for gi in cnet.groups],
                weight=cnet.weight,
            )
            nl.add_net(net)
        return nl

    # -- canonical start state -------------------------------------------------
    def capture_canonical(self) -> None:
        """Snapshot the current node positions and group geometry.

        The snapshot is the *canonical start* of every terminal evaluation:
        :meth:`restore_canonical` rewinds to it before each legalization, so
        ``evaluate_assignment`` is a pure function of the assignment —
        bitwise-identical HPWL regardless of what was evaluated before
        (which is what makes results cacheable and worker-pool evaluation
        equivalent to in-process evaluation).
        """
        self._canonical = (
            {node.name: (node.x, node.y) for node in self.design.netlist},
            [(g.cx, g.cy, g.bbox) for g in self.all_groups],
        )

    def restore_canonical(self) -> None:
        """Rewind node positions and group geometry to the canonical start.

        Captures the snapshot lazily on the first call, so a coarse netlist
        built without :func:`coarsen_design` still gets purity from its
        first legalization onward.
        """
        canonical = getattr(self, "_canonical", None)
        if canonical is None:
            self.capture_canonical()
            return
        positions, groups = canonical
        nl = self.design.netlist
        for name, (x, y) in positions.items():
            node = nl[name]
            node.x = x
            node.y = y
        for g, (cx, cy, bbox) in zip(self.all_groups, groups):
            g.cx = cx
            g.cy = cy
            g.bbox = bbox

    # -- decomposition ---------------------------------------------------------
    def scatter_macro_group(
        self, index: int, cx: float, cy: float
    ) -> None:
        """Move macro group *index*'s member macros rigidly to center (cx, cy).

        Members keep their relative offsets from the group centroid in the
        prototype placement; exact legalization happens later
        (:mod:`repro.legalize`).
        """
        g = self.macro_groups[index]
        for name in g.members:
            node = self.design.netlist[name]
            node.move_center_to(cx + (node.cx - g.cx), cy + (node.cy - g.cy))
        shift_x = cx - g.cx
        shift_y = cy - g.cy
        g.cx, g.cy = cx, cy
        if g.bbox is not None:
            g.bbox = (
                g.bbox[0] + shift_x,
                g.bbox[1] + shift_y,
                g.bbox[2] + shift_x,
                g.bbox[3] + shift_y,
            )


def _project_nets(
    nets: list[Net], group_index_of_node: dict[str, int]
) -> list[CoarseNet]:
    merged: dict[tuple[int, ...], float] = {}
    for net in nets:
        gids = tuple(
            sorted(
                {
                    group_index_of_node[p.node]
                    for p in net.pins
                    if p.node in group_index_of_node
                }
            )
        )
        if len(gids) < 2:
            continue
        merged[gids] = merged.get(gids, 0.0) + net.weight
    return [CoarseNet(groups=g, weight=w) for g, w in sorted(merged.items())]


def coarsen_design(
    design: Design,
    plan: GridPlan,
    gamma: GammaParams = GammaParams(),
    phi: PhiParams = PhiParams(),
    k_spatial: int = 6,
) -> CoarseNetlist:
    """Cluster *design* into a :class:`CoarseNetlist` over *plan*.

    The design is expected to carry an initial prototype placement (the ΔD
    terms measure distances in it) — run
    :class:`repro.gp.MixedSizePlacer` first, as the paper runs [23].
    Macro groups are returned sorted by non-increasing area (Algorithm 1's
    ordering of M).
    """
    nl = design.netlist
    max_area = plan.cell_area

    macro_groups = cluster_macros(nl, max_area, gamma, k_spatial)
    cell_groups = cluster_cells(nl, max_area, phi, k_spatial)
    fixed_groups = singleton_groups(
        list(nl.preplaced_macros) + list(nl.pads), GroupKind.FIXED
    )

    macro_groups.sort(key=lambda g: -g.area)

    coarse = CoarseNetlist(
        design=design,
        plan=plan,
        macro_groups=macro_groups,
        cell_groups=cell_groups,
        fixed_groups=fixed_groups,
    )
    group_index_of_node: dict[str, int] = {}
    for i, g in enumerate(coarse.all_groups):
        for name in g.members:
            group_index_of_node[name] = i
    coarse.coarse_nets = _project_nets(nl.nets, group_index_of_node)
    coarse.capture_canonical()
    return coarse
