"""Greedy highest-score-pair clustering (Sec. II-A).

Both macro and cell grouping follow the same loop: repeatedly merge the pair
of groups with the highest score, subject to

- the merged group's area must not exceed one grid cell (``max_area``), and
- the best available score must stay above the threshold ν.

The engine uses a lazy max-heap over candidate pairs.  Scoring *every* pair
is O(n²) and prohibitive for cell grouping at full scale, so candidates are
restricted to (a) net-connected pairs and (b) each group's spatial
k-nearest neighbours in the prototype placement — the two terms through
which Eq. 1/Eq. 2 can actually produce large scores (connectivity w and
inverse distance 1/ΔD).  The same restriction is used by practical
clustering implementations; it is exact for the top-score pair whenever
that pair is connected or spatially adjacent.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import numpy as np
from scipy.spatial import cKDTree

from repro.coarsen.groups import Group, GroupKind
from repro.coarsen.scores import (
    GammaParams,
    PhiParams,
    gamma_score,
    phi_score,
)
from repro.netlist.model import Net, Netlist, Node

#: Nets above this degree contribute no clustering connectivity (standard
#: practice: giant nets carry no locality signal and cost O(d²) pairs).
CONNECTIVITY_DEGREE_CAP = 64


class _Connectivity:
    """Pairwise net-weight between groups, maintained across merges."""

    def __init__(self) -> None:
        self._adj: dict[int, dict[int, float]] = {}

    def add(self, a: int, b: int, w: float) -> None:
        if a == b:
            return
        self._adj.setdefault(a, {})[b] = self._adj.setdefault(a, {}).get(b, 0.0) + w
        self._adj.setdefault(b, {})[a] = self._adj.setdefault(b, {}).get(a, 0.0) + w

    def weight(self, a: int, b: int) -> float:
        return self._adj.get(a, {}).get(b, 0.0)

    def neighbors(self, a: int) -> dict[int, float]:
        return self._adj.get(a, {})

    def merge(self, a: int, b: int, c: int) -> None:
        """Fold groups *a* and *b* into the new group id *c*."""
        combined: dict[int, float] = {}
        for src in (a, b):
            for n, w in self._adj.pop(src, {}).items():
                if n in (a, b):
                    continue
                combined[n] = combined.get(n, 0.0) + w
        for n, w in combined.items():
            adj_n = self._adj.get(n)
            if adj_n is not None:
                adj_n.pop(a, None)
                adj_n.pop(b, None)
                adj_n[c] = w
        self._adj[c] = combined


def _build_connectivity(
    nets: list[Net], group_of_node: dict[str, int]
) -> _Connectivity:
    conn = _Connectivity()
    for net in nets:
        gids = sorted(
            {group_of_node[p.node] for p in net.pins if p.node in group_of_node}
        )
        if len(gids) < 2 or len(gids) > CONNECTIVITY_DEGREE_CAP:
            continue
        for a, b in itertools.combinations(gids, 2):
            conn.add(a, b, net.weight)
    return conn


def greedy_cluster(
    seeds: list[Group],
    nets: list[Net],
    score_fn: Callable[[Group, Group, float], float],
    max_area: float,
    threshold: float,
    k_spatial: int = 6,
) -> list[Group]:
    """Run the greedy merge loop and return the surviving groups.

    *seeds* are single-node groups; *score_fn(gi, gj, w)* evaluates the
    clustering score given the current connectivity weight *w*.
    """
    groups: dict[int, Group] = {g.gid: g for g in seeds}
    next_gid = max(groups, default=-1) + 1
    group_of_node = {name: g.gid for g in seeds for name in g.members}
    conn = _Connectivity()
    if nets:
        conn = _build_connectivity(nets, group_of_node)

    heap: list[tuple[float, int, int]] = []  # (-score, gid_a, gid_b)

    def push_pair(a: int, b: int) -> None:
        ga, gb = groups.get(a), groups.get(b)
        if ga is None or gb is None:
            return
        if ga.area + gb.area > max_area:
            return
        s = score_fn(ga, gb, conn.weight(a, b))
        if s >= threshold:
            heapq.heappush(heap, (-s, a, b))

    def spatial_neighbors(gid: int, k: int) -> list[int]:
        active = [g for g in groups.values() if g.gid != gid]
        if not active:
            return []
        pts = np.array([[g.cx, g.cy] for g in active])
        tree = cKDTree(pts)
        g = groups[gid]
        k_eff = min(k, len(active))
        _, idx = tree.query([g.cx, g.cy], k=k_eff)
        idx = np.atleast_1d(idx)
        return [active[int(i)].gid for i in idx]

    # Seed the heap: connected pairs + k-nearest spatial pairs.
    for gid in list(groups):
        for nb in conn.neighbors(gid):
            if gid < nb:
                push_pair(gid, nb)
    if k_spatial > 0 and len(groups) > 1:
        pts = np.array([[g.cx, g.cy] for g in groups.values()])
        gids = list(groups)
        tree = cKDTree(pts)
        k_eff = min(k_spatial + 1, len(gids))
        _, nbrs = tree.query(pts, k=k_eff)
        nbrs = np.atleast_2d(nbrs)
        for i, row in enumerate(nbrs):
            for j in np.atleast_1d(row):
                a, b = gids[i], gids[int(j)]
                if a < b:
                    push_pair(a, b)

    while heap:
        neg_s, a, b = heapq.heappop(heap)
        ga, gb = groups.get(a), groups.get(b)
        if ga is None or gb is None:
            continue  # stale entry
        # Re-validate the score (connectivity may have changed since push).
        s = score_fn(ga, gb, conn.weight(a, b))
        if s < threshold or ga.area + gb.area > max_area:
            continue
        if s < -neg_s - 1e-12:
            # Score decayed; re-push with the fresh value.
            heapq.heappush(heap, (-s, a, b))
            continue

        merged = ga.merged_with(gb, next_gid)
        next_gid += 1
        del groups[a], groups[b]
        groups[merged.gid] = merged
        conn.merge(a, b, merged.gid)

        for nb in conn.neighbors(merged.gid):
            lo, hi = min(merged.gid, nb), max(merged.gid, nb)
            push_pair(lo, hi)
        if k_spatial > 0:
            for nb in spatial_neighbors(merged.gid, k_spatial):
                lo, hi = min(merged.gid, nb), max(merged.gid, nb)
                push_pair(lo, hi)

    return sorted(groups.values(), key=lambda g: g.gid)


def cluster_macros(
    netlist: Netlist,
    max_area: float,
    params: GammaParams = GammaParams(),
    k_spatial: int = 6,
) -> list[Group]:
    """Group movable macros with the Γ score (Eq. 1).

    Each macro starts as its own group; preplaced macros are excluded (they
    are not allocation decisions).  ``max_area`` is one grid cell's area.
    """
    seeds = [
        Group.of_node(i, m, GroupKind.MACRO)
        for i, m in enumerate(netlist.movable_macros)
    ]
    score = lambda gi, gj, w: gamma_score(gi, gj, w, params)  # noqa: E731
    return greedy_cluster(
        seeds, netlist.nets, score, max_area, params.threshold, k_spatial
    )


def cluster_cells(
    netlist: Netlist,
    max_area: float,
    params: PhiParams = PhiParams(),
    k_spatial: int = 6,
) -> list[Group]:
    """Group standard cells with the φ score (Eq. 2)."""
    seeds = [
        Group.of_node(i, c, GroupKind.CELL) for i, c in enumerate(netlist.cells)
    ]
    score = lambda gi, gj, w: phi_score(gi, gj, w, params)  # noqa: E731
    return greedy_cluster(
        seeds, netlist.nets, score, max_area, params.threshold, k_spatial
    )


def singleton_groups(nodes: list[Node], kind: GroupKind, start_gid: int = 0) -> list[Group]:
    """One group per node (used for pads and preplaced macros)."""
    return [Group.of_node(start_gid + i, n, kind) for i, n in enumerate(nodes)]
