"""Clustering score functions Γ (Eq. 1) and φ (Eq. 2).

Γ(g_i, g_j) = 1/ΔD + δ·H + ε·w + κ/(ΔA + 1)   — macro groups
φ(g_i, g_j) = 1/ΔD + ϱ·w/(A_i + A_j)           — cell groups

where ΔD is the centroid distance in the initial placement, H the common
hierarchy-prefix depth, w the total weight of nets spanning both groups,
and ΔA the area difference.  Default parameters are the paper's:
δ=0.001, ε=0.0003, κ=1, ϱ=1, threshold ν=0.001.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.coarsen.groups import Group
from repro.netlist.hierarchy import common_prefix_depth

#: Guards 1/ΔD when two groups share a centroid in the prototype placement.
MIN_DISTANCE = 1e-6


@dataclass(frozen=True)
class GammaParams:
    """User parameters of Eq. 1 (paper defaults)."""

    delta: float = 0.001
    epsilon: float = 0.0003
    kappa: float = 1.0
    threshold: float = 0.001  # ν


@dataclass(frozen=True)
class PhiParams:
    """User parameters of Eq. 2 (paper defaults)."""

    rho: float = 1.0
    threshold: float = 0.001  # ν (same stop rule as macro grouping)


def centroid_distance(gi: Group, gj: Group) -> float:
    """ΔD: Euclidean centroid distance, floored to avoid division by zero."""
    d = math.hypot(gi.cx - gj.cx, gi.cy - gj.cy)
    return max(d, MIN_DISTANCE)


def gamma_score(
    gi: Group, gj: Group, connectivity: float, params: GammaParams = GammaParams()
) -> float:
    """Γ(g_i, g_j) of Eq. 1.  *connectivity* is w(g_i, g_j)."""
    delta_d = centroid_distance(gi, gj)
    h = common_prefix_depth(gi.hierarchy, gj.hierarchy)
    delta_a = abs(gi.area - gj.area)
    return (
        1.0 / delta_d
        + params.delta * h
        + params.epsilon * connectivity
        + params.kappa / (delta_a + 1.0)
    )


def phi_score(
    gi: Group, gj: Group, connectivity: float, params: PhiParams = PhiParams()
) -> float:
    """φ(g_i, g_j) of Eq. 2.  *connectivity* is w(g_i, g_j)."""
    delta_d = centroid_distance(gi, gj)
    denom = gi.area + gj.area
    conn_term = params.rho * connectivity / denom if denom > 0 else 0.0
    return 1.0 / delta_d + conn_term
