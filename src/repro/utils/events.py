"""Structured JSONL event log.

Every noteworthy runtime occurrence — stage transitions, checkpoints,
degradations, divergence rollbacks, budget exhaustion — is recorded as
one :class:`Event` and, when the log is backed by a file, appended as a
single JSON line so a crashed run leaves a complete, machine-readable
trace.  The in-memory list always exists, so library code can emit
unconditionally and tests can assert on what happened without a run dir.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field


def append_jsonl(path: str, record: dict, fsync: bool = False) -> None:
    """Append *record* as one JSONL line in a single ``write`` syscall.

    This is the repo-wide convention for journals that may have
    **concurrent writers in different processes** (the fleet-shared job
    journal, terminal cache, and quarantine journal): the line is encoded
    first and handed to one ``os.write`` on an ``O_APPEND`` descriptor,
    which POSIX serializes against other appends to the same file — two
    processes appending concurrently can interleave *records* but never
    *bytes within a record*.  Buffered ``f.write`` gives no such
    guarantee (the stdlib may split one line across flushes).  A partial
    write (ENOSPC, signal) leaves at worst a torn tail line, which
    :func:`read_jsonl` already skips.

    Appends are routed through the ENOSPC guard
    (:func:`repro.runtime.resources.guarded_write`): a full disk emits a
    degradation, triggers an emergency GC pass, and retries once before
    failing the *attempt* with a retryable
    :class:`~repro.runtime.errors.ResourceExhaustedError`.  A partial
    append cut short by ENOSPC leaves a torn tail line, which every
    reader already skips — the retried append then lands whole.
    """
    from repro.runtime.resources import guarded_write

    data = (json.dumps(record, sort_keys=True) + "\n").encode()

    def _append() -> None:
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            written = os.write(fd, data)
            while written < len(data):  # pathological; finish the tail
                written += os.write(fd, data[written:])
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    guarded_write(f"append:{os.path.basename(path)}", _append)


def read_jsonl(path: str) -> list[dict]:
    """Parse a JSONL file into dicts, tolerating damaged lines.

    This is the repo-wide convention for append-only JSONL state (event
    logs, the terminal cache, the service job journal): a process killed
    mid-append leaves a torn trailing line, which is skipped rather than
    raised on — everything written before the crash stays readable.
    Non-dict records (a bare number or string that happens to parse) are
    skipped for the same reason.
    """
    records: list[dict] = []
    if not os.path.exists(path):
        return records
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn line from a kill mid-write
            if isinstance(record, dict):
                records.append(record)
    return records


@dataclass
class Event:
    """One structured occurrence."""

    name: str
    stage: str | None = None
    ts: float = 0.0
    data: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        record = {"ts": round(self.ts, 6), "event": self.name}
        if self.stage is not None:
            record["stage"] = self.stage
        record.update(self.data)
        return record


class EventLog:
    """Append-only event sink, optionally mirrored to a JSONL file.

    An optional ``listener`` callable is invoked with every event after
    it is recorded — the service supervisor uses this as a progress
    heartbeat.  Listeners observe; they must not raise.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.events: list[Event] = []
        self.listener = None

    def emit(self, name: str, stage: str | None = None, **data) -> Event:
        """Record (and persist, if file-backed) one event."""
        event = Event(name=name, stage=stage, ts=time.time(), data=data)
        self.events.append(event)
        if self.path is not None:
            append_jsonl(self.path, event.to_json(), fsync=True)
        if self.listener is not None:
            self.listener(event)
        return event

    def of(self, name: str) -> list[Event]:
        """All recorded events called *name*."""
        return [e for e in self.events if e.name == name]

    def count(self, name: str) -> int:
        return len(self.of(name))

    @staticmethod
    def read(path: str) -> list[dict]:
        """Parse a JSONL event file back into dicts (tolerates a torn tail
        line, which a kill mid-write can leave behind)."""
        return read_jsonl(path)
