"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (benchmark generation, RL
exploration, MCTS tie-breaking, simulated evolution, ...) accepts either a
seed or a :class:`numpy.random.Generator`.  Routing everything through these
helpers keeps experiments reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, or
    an existing generator (returned unchanged so state is shared with the
    caller).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator or None, got {type(rng)!r}")


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators.

    Used when an experiment fans out into parallel arms (e.g. one RL run per
    reward-function variant) and each arm must be deterministic regardless of
    how much entropy the others consume.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
