"""Shared utilities: deterministic RNG handling, timing, and light logging."""

from repro.utils.events import Event, EventLog
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Stopwatch, timed

__all__ = ["Event", "EventLog", "ensure_rng", "spawn_rng", "Stopwatch", "timed"]
