"""Host metadata for benchmark reports.

Throughput numbers are meaningless without knowing what they were
measured on; every ``BENCH_*.json`` embeds this snapshot so reports
pulled from different CI runners (or laptops) can be compared honestly.
"""

from __future__ import annotations

import os
import platform
import sys


def host_metadata() -> dict:
    """Machine facts that contextualize wall-clock measurements."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "executable": sys.executable,
    }
