"""Wall-clock timing helpers used by the runtime experiments (Table IV)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates named wall-clock intervals.

    The placement flow records how long each stage takes (preprocessing, RL
    pre-training, MCTS, legalization, cell placement) so the Table IV
    benchmark can report the MCTS stage in isolation.
    """

    totals: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self, name: str) -> float:
        """Seconds accumulated under *name* (0.0 if never measured)."""
        return self.totals.get(name, 0.0)

    def overall(self) -> float:
        """Sum of all measured intervals."""
        return sum(self.totals.values())


@contextmanager
def timed():
    """Yield a zero-arg callable that returns elapsed seconds so far."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
