"""repro — MCTS-guided macro placement with a pre-trained RL agent.

Reproduction of "Effective Macro Placement for Very Large Scale Designs
Using MCTS Guided by Pre-trained RL" (Lin, Lee, Lin — DATE 2025).

Quickstart::

    from repro import MCTSGuidedPlacer, PlacerConfig
    from repro.netlist.suites import make_iccad04_circuit

    entry = make_iccad04_circuit("ibm01")
    result = MCTSGuidedPlacer(PlacerConfig.fast()).place(entry.design)
    print(result.hpwl)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import FlowResult, MCTSGuidedPlacer, PlacerConfig
from repro.netlist import Design, Netlist, PlacementRegion, hpwl

__version__ = "1.0.0"

__all__ = [
    "Design",
    "FlowResult",
    "MCTSGuidedPlacer",
    "Netlist",
    "PlacementRegion",
    "PlacerConfig",
    "hpwl",
    "__version__",
]
