"""Algorithm 1 — the complete placement flow.

Stages (each timed on the result's :class:`~repro.utils.timer.Stopwatch`,
which is how the Table IV runtime benchmark isolates the MCTS stage):

1. ``prototype``     — analytical mixed-size prototype placement ([23]).
2. ``preprocess``    — grid partition + netlist coarsening (Sec. II-A).
3. ``calibration``   — 50 (configurable) random episodes fitting Eq. 9.
4. ``rl_training``   — Actor-Critic pre-training (Sec. III).
5. ``mcts``          — agent-guided search (Sec. IV).
6. ``final``         — legalization + cell placement of the committed
   assignment (already part of the MCTS terminal evaluation; re-run so the
   design object carries the final coordinates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agent.actorcritic import ActorCriticTrainer, TrainingHistory
from repro.agent.network import PolicyValueNet
from repro.agent.reward import NormalizedReward, calibrate_reward
from repro.coarsen.coarse import CoarseNetlist, coarsen_design
from repro.core.config import PlacerConfig
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.mcts.search import MCTSPlacer, SearchResult
from repro.netlist.model import Design
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


@dataclass
class FlowResult:
    """Everything a flow run produced."""

    hpwl: float
    assignment: list[int]
    history: TrainingHistory
    search: SearchResult
    reward_fn: NormalizedReward
    coarse: CoarseNetlist
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    #: HPWL after row-based cell legalization (None unless
    #: ``PlacerConfig.legalize_cells``); ``cell_legalization`` carries the
    #: pass statistics.
    legal_hpwl: float | None = None
    cell_legalization: object | None = None

    @property
    def mcts_runtime(self) -> float:
        """Seconds spent in the MCTS stage (the Table IV quantity)."""
        return self.stopwatch.total("mcts")

    @property
    def n_macro_groups(self) -> int:
        return self.coarse.n_macro_groups


class MCTSGuidedPlacer:
    """The paper's placer: RL pre-training followed by one MCTS pass."""

    def __init__(self, config: PlacerConfig = PlacerConfig()) -> None:
        self.config = config

    # -- stages ----------------------------------------------------------------
    def preprocess(self, design: Design, stopwatch: Stopwatch) -> CoarseNetlist:
        """Prototype placement + grid partition + coarsening."""
        cfg = self.config
        with stopwatch.measure("prototype"):
            MixedSizePlacer(n_iterations=cfg.prototype_iterations).place(design)
        with stopwatch.measure("preprocess"):
            plan = GridPlan(design.region, zeta=cfg.zeta)
            coarse = coarsen_design(
                design, plan, gamma=cfg.gamma_params, phi=cfg.phi_params
            )
        return coarse

    def build_environment(self, coarse: CoarseNetlist) -> MacroGroupPlacementEnv:
        return MacroGroupPlacementEnv(
            coarse, cell_place_iters=self.config.cell_place_iterations
        )

    def pretrain(
        self,
        env: MacroGroupPlacementEnv,
        stopwatch: Stopwatch,
    ) -> tuple[PolicyValueNet, NormalizedReward, TrainingHistory, ActorCriticTrainer]:
        """Calibrate Eq. 9 and run Actor-Critic training."""
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        with stopwatch.measure("calibration"):
            reward_fn, _samples = calibrate_reward(
                lambda g: env.play_random_episode(g).wirelength,
                alpha=cfg.alpha,
                n_episodes=cfg.calibration_episodes,
                rng=rng,
            )
        network = PolicyValueNet(cfg.network)
        trainer = ActorCriticTrainer(
            env,
            network,
            reward_fn,
            lr=cfg.learning_rate,
            update_every=cfg.update_every,
            entropy_coef=cfg.entropy_coef,
            epochs_per_update=cfg.epochs_per_update,
            rng=rng,
        )
        with stopwatch.measure("rl_training"):
            history = trainer.train(
                cfg.episodes, checkpoint_every=cfg.checkpoint_every
            )
        return network, reward_fn, history, trainer

    def optimize(
        self,
        env: MacroGroupPlacementEnv,
        network: PolicyValueNet,
        reward_fn: NormalizedReward,
        stopwatch: Stopwatch,
    ) -> SearchResult:
        """The single post-training MCTS pass."""
        placer = MCTSPlacer(env, network, reward_fn, self.config.mcts)
        with stopwatch.measure("mcts"):
            return placer.run()

    # -- entry point ---------------------------------------------------------------
    def place(self, design: Design) -> FlowResult:
        """Run the full flow on *design* (mutates its node positions)."""
        stopwatch = Stopwatch()
        coarse = self.preprocess(design, stopwatch)
        env = self.build_environment(coarse)
        network, reward_fn, history, _trainer = self.pretrain(env, stopwatch)
        search = self.optimize(env, network, reward_fn, stopwatch)
        with stopwatch.measure("final"):
            hpwl = env.evaluate_assignment(search.assignment)
        legal_hpwl = None
        cell_result = None
        if self.config.legalize_cells:
            from repro.legalize.cells import legalize_cells
            from repro.netlist.hpwl import FlatNetlist

            with stopwatch.measure("cell_legalization"):
                cell_result = legalize_cells(design)
                legal_hpwl = FlatNetlist(design.netlist).total_hpwl()
        return FlowResult(
            hpwl=hpwl,
            assignment=search.assignment,
            history=history,
            search=search,
            reward_fn=reward_fn,
            coarse=coarse,
            stopwatch=stopwatch,
            legal_hpwl=legal_hpwl,
            cell_legalization=cell_result,
        )
