"""Algorithm 1 — the complete placement flow.

Stages (each timed on the result's :class:`~repro.utils.timer.Stopwatch`,
which is how the Table IV runtime benchmark isolates the MCTS stage):

1. ``prototype``     — analytical mixed-size prototype placement ([23]).
2. ``preprocess``    — grid partition + netlist coarsening (Sec. II-A).
3. ``calibration``   — 50 (configurable) random episodes fitting Eq. 9.
4. ``rl_training``   — Actor-Critic pre-training (Sec. III).
5. ``mcts``          — agent-guided search (Sec. IV).
6. ``final``         — legalization + cell placement of the committed
   assignment (already part of the MCTS terminal evaluation; re-run so the
   design object carries the final coordinates).

Fault tolerance (:mod:`repro.runtime`): when ``place`` is given a
``run_dir`` every stage persists its outputs plus a JSON manifest there,
RL training snapshots its full state every ``checkpoint_every`` episodes
and MCTS after every committed move, and ``resume=True`` skips completed
stages and restores their artifacts — an interrupted run continues
bit-for-bit.  Stage budgets, solver fallbacks, and the divergence
watchdog degrade gracefully instead of crashing, recording structured
events in the run's JSONL log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agent.actorcritic import ActorCriticTrainer, TrainingHistory
from repro.agent.network import PolicyValueNet
from repro.agent.reward import NormalizedReward, calibrate_reward
from repro.coarsen.coarse import CoarseNetlist, coarsen_design
from repro.core.config import PlacerConfig
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.gp.mixed_size import MixedSizePlacer
from repro.grid.plan import GridPlan
from repro.legalize.pipeline import IncrementalMacroLegalizer, MacroLegalizer
from repro.mcts.search import MCTSPlacer, SearchResult
from repro.netlist.model import Design
from repro.parallel import (
    TerminalCache,
    TerminalEvaluationPool,
    environment_fingerprint,
)
from repro.runtime.errors import CalibrationError
from repro.runtime.harness import RunContext
from repro.utils.events import EventLog
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


@dataclass
class FlowResult:
    """Everything a flow run produced."""

    hpwl: float
    assignment: list[int]
    history: TrainingHistory
    search: SearchResult
    reward_fn: NormalizedReward
    coarse: CoarseNetlist
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    #: HPWL after row-based cell legalization (None unless
    #: ``PlacerConfig.legalize_cells``); ``cell_legalization`` carries the
    #: pass statistics.
    legal_hpwl: float | None = None
    cell_legalization: object | None = None
    #: structured event log of the run (degradations, checkpoints,
    #: rollbacks, budget exhaustion, stage transitions)
    events: EventLog | None = None
    #: independent verification report (None unless
    #: ``PlacerConfig.verify_results``); the flow raises
    #: :class:`VerificationError` before returning a failing one
    verification: object | None = None

    #: canonical order of the per-stage wall-clock breakdown
    STAGE_ORDER = (
        "prototype", "preprocess", "calibration", "rl_training", "mcts",
        "final", "cell_legalization", "verify",
    )

    @property
    def mcts_runtime(self) -> float:
        """Seconds spent in the MCTS stage (the Table IV quantity)."""
        return self.stopwatch.total("mcts")

    @property
    def n_macro_groups(self) -> int:
        return self.coarse.n_macro_groups

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall-clock breakdown in :attr:`STAGE_ORDER`.

        Sourced from the run's :class:`Stopwatch`; stages that never ran
        (skipped on resume, optional cell legalization) report 0.0.  The
        service metrics histograms consume exactly this mapping.
        """
        return {
            stage: self.stopwatch.total(stage) for stage in self.STAGE_ORDER
        }


class MCTSGuidedPlacer:
    """The paper's placer: RL pre-training followed by one MCTS pass."""

    def __init__(self, config: PlacerConfig = PlacerConfig()) -> None:
        self.config = config
        self._events = EventLog()

    # -- stages ----------------------------------------------------------------
    def preprocess(self, design: Design, stopwatch: Stopwatch) -> CoarseNetlist:
        """Prototype placement + grid partition + coarsening."""
        cfg = self.config
        with stopwatch.measure("prototype"):
            MixedSizePlacer(n_iterations=cfg.prototype_iterations).place(design)
        with stopwatch.measure("preprocess"):
            coarse = self._coarsen(design)
        return coarse

    def _coarsen(self, design: Design) -> CoarseNetlist:
        cfg = self.config
        plan = GridPlan(design.region, zeta=cfg.zeta)
        return coarsen_design(
            design, plan, gamma=cfg.gamma_params, phi=cfg.phi_params
        )

    def build_environment(self, coarse: CoarseNetlist) -> MacroGroupPlacementEnv:
        legalizer_cls = (
            IncrementalMacroLegalizer
            if self.config.incremental_legalizer
            else MacroLegalizer
        )
        return MacroGroupPlacementEnv(
            coarse,
            legalizer=legalizer_cls(events=self._events),
            cell_place_iters=self.config.cell_place_iterations,
        )

    def pretrain(
        self,
        env: MacroGroupPlacementEnv,
        stopwatch: Stopwatch,
    ) -> tuple[PolicyValueNet, NormalizedReward, TrainingHistory, ActorCriticTrainer]:
        """Calibrate Eq. 9 and run Actor-Critic training.

        The non-checkpointed convenience path; :meth:`place` runs the same
        two stages through the resumable harness.
        """
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        with stopwatch.measure("calibration"):
            reward_fn, _samples = self._calibrate(env, rng)
        network = PolicyValueNet(cfg.network)
        trainer = self._build_trainer(env, network, reward_fn, rng)
        with stopwatch.measure("rl_training"):
            history = trainer.train(
                cfg.episodes, checkpoint_every=cfg.checkpoint_every
            )
        return network, reward_fn, history, trainer

    def _calibrate(self, env, rng) -> tuple[NormalizedReward, list[float]]:
        cfg = self.config
        reward_fn, samples = calibrate_reward(
            lambda g: env.play_random_episode(g).wirelength,
            alpha=cfg.alpha,
            n_episodes=cfg.calibration_episodes,
            rng=rng,
        )
        stats = (reward_fn.w_max, reward_fn.w_min, reward_fn.w_avg)
        if not all(np.isfinite(s) for s in stats):
            raise CalibrationError(
                "random-play calibration produced non-finite wirelength "
                "statistics (Eq. 9 undefined)",
                stage="calibration",
                w_max=reward_fn.w_max,
                w_min=reward_fn.w_min,
                w_avg=reward_fn.w_avg,
            )
        return reward_fn, samples

    def _build_trainer(
        self, env, network, reward_fn, rng, budget=None, terminal_pool=None,
        inference=None,
    ) -> ActorCriticTrainer:
        cfg = self.config
        return ActorCriticTrainer(
            env,
            network,
            reward_fn,
            lr=cfg.learning_rate,
            update_every=cfg.update_every,
            entropy_coef=cfg.entropy_coef,
            epochs_per_update=cfg.epochs_per_update,
            rng=rng,
            events=self._events,
            budget=budget,
            max_divergence_rollbacks=cfg.max_divergence_rollbacks,
            max_episode_failures=cfg.max_episode_failures,
            n_envs=cfg.rollout_envs,
            terminal_pool=terminal_pool,
            inference=inference,
        )

    def optimize(
        self,
        env: MacroGroupPlacementEnv,
        network: PolicyValueNet,
        reward_fn: NormalizedReward,
        stopwatch: Stopwatch,
    ) -> SearchResult:
        """The single post-training MCTS pass."""
        placer = MCTSPlacer(
            env, network, reward_fn, self.config.mcts, events=self._events
        )
        with stopwatch.measure("mcts"):
            return placer.run()

    # -- entry point ---------------------------------------------------------------
    def place(
        self,
        design: Design,
        run_dir: str | None = None,
        resume: bool | None = None,
        faults=None,
        context: RunContext | None = None,
    ) -> FlowResult:
        """Run the full flow on *design* (mutates its node positions).

        *run_dir* (or ``config.run_dir``) makes the run durable: stage
        artifacts, intra-stage snapshots, the JSON manifest, and the JSONL
        event log are persisted there.  With *resume* (or
        ``config.resume``), stages the run dir already completed are
        skipped and their artifacts restored, continuing an interrupted
        run deterministically.  *faults* optionally installs a
        :class:`repro.runtime.faults.FaultPlan` for the duration of the
        run (testing hook).

        *context* hands in an externally owned, pre-built
        :class:`RunContext` instead — the placement service uses this to
        attach per-job budgets and pre-injected warm artifacts; when
        given, *run_dir*/*resume*/*faults* must be left unset (the
        context already owns them).
        """
        cfg = self.config
        if context is not None:
            if run_dir is not None or resume is not None or faults is not None:
                raise ValueError(
                    "place(context=...) excludes run_dir/resume/faults — "
                    "the injected RunContext already owns them"
                )
            ctx = context
        else:
            ctx = RunContext(
                run_dir if run_dir is not None else cfg.run_dir,
                cfg,
                design,
                resume=cfg.resume if resume is None else resume,
                fault_plan=faults,
            )
        self._events = ctx.events
        with ctx.activate_faults():
            return self._run(design, ctx)

    def _run(self, design: Design, ctx: RunContext) -> FlowResult:
        cfg = self.config
        events = ctx.events
        stopwatch = Stopwatch()
        events.emit("run_start", resume=ctx.resume, design=design.netlist.name)

        # -- stage 1: prototype --------------------------------------------------
        if ctx.completed("prototype"):
            ctx.load_positions("prototype", design)
            ctx.skip("prototype")
        else:
            budget = ctx.budget("prototype")
            with ctx.guard("prototype"):
                with stopwatch.measure("prototype"):
                    MixedSizePlacer(n_iterations=cfg.prototype_iterations).place(
                        design
                    )
                ctx.save_positions("prototype", design)
                ctx.mark(
                    "prototype", seconds=round(stopwatch.total("prototype"), 3)
                )
                budget.check()

        # -- stage 2: preprocess (cheap derivation; recomputed on resume) --------
        recompute = ctx.completed("preprocess")
        with ctx.guard("preprocess"):
            with stopwatch.measure("preprocess"):
                coarse = self._coarsen(design)
        if recompute:
            events.emit("stage_recomputed", stage="preprocess")
        else:
            ctx.mark(
                "preprocess",
                n_macro_groups=coarse.n_macro_groups,
                seconds=round(stopwatch.total("preprocess"), 3),
            )

        env = self.build_environment(coarse)
        rng = ensure_rng(cfg.seed)

        # -- stage 3: calibration ------------------------------------------------
        if ctx.completed("calibration"):
            reward_fn = ctx.load_calibration(rng)
            ctx.skip("calibration")
        else:
            budget = ctx.budget("calibration")
            with ctx.guard("calibration"):
                with stopwatch.measure("calibration"):
                    reward_fn, _samples = self._calibrate(env, rng)
                ctx.save_calibration(reward_fn, rng)
                ctx.mark(
                    "calibration",
                    w_avg=reward_fn.w_avg,
                    seconds=round(stopwatch.total("calibration"), 3),
                )
                budget.check()

        network = PolicyValueNet(cfg.network)

        # Terminal evaluation infrastructure: the cross-run wirelength
        # cache (persisted to the run dir when there is one) and, when
        # configured, the process pool.  Both are execution accelerators —
        # every stage below produces bitwise-identical results with or
        # without them.
        terminal_cache = TerminalCache(
            environment_fingerprint(env),
            path=cfg.terminal_cache_path or ctx.terminal_cache_path(),
        )
        terminal_pool = None
        if cfg.terminal_workers > 1:
            terminal_pool = TerminalEvaluationPool(
                env, workers=cfg.terminal_workers, events=events,
                clamp=cfg.terminal_pool_clamp,
            )

        # Shared inference: with the broker enabled (config knob, or a
        # service-owned handle arriving on the context), RL rollouts and
        # MCTS evaluate through InferenceClients instead of the private
        # network.  Broker-served, fallback, and degraded paths all share
        # the fixed-tile forward, so stage results are bitwise-identical
        # whether the broker lives, dies, or was never reachable.
        inference_broker = getattr(ctx, "inference_broker", None)
        owned_broker = None
        trainer_client = mcts_client = None
        if cfg.inference_broker or inference_broker is not None:
            from repro.inference import InferenceBroker, InferenceClient

            if inference_broker is None:
                inference_broker = owned_broker = InferenceBroker(
                    max_batch=cfg.inference_max_batch,
                    coalesce_us=cfg.inference_coalesce_us,
                    events=events,
                ).start()
            trainer_client = InferenceClient(
                network, inference_broker, events=events, publishable=True
            )
            mcts_client = InferenceClient(
                network, inference_broker, events=events
            )
        try:
            # -- stage 4: RL pre-training ----------------------------------------
            if ctx.completed("rl_training"):
                history = ctx.load_training(network, rng)
                ctx.skip("rl_training")
            else:
                trainer = self._build_trainer(
                    env,
                    network,
                    reward_fn,
                    rng,
                    budget=ctx.budget("rl_training"),
                    terminal_pool=terminal_pool,
                    inference=trainer_client,
                )
                history = ctx.load_training_snapshot(trainer)
                trainer.checkpoint_hook = (
                    lambda t, h: ctx.save_training_snapshot(t, h)
                )
                with ctx.guard("rl_training"):
                    with stopwatch.measure("rl_training"):
                        history = trainer.train(
                            cfg.episodes,
                            checkpoint_every=cfg.checkpoint_every,
                            history=history,
                        )
                    ctx.save_training(network, history, rng)
                    ctx.mark(
                        "rl_training",
                        episodes=len(history.rewards),
                        seconds=round(stopwatch.total("rl_training"), 3),
                    )

            # -- stage 5: MCTS ----------------------------------------------------
            if ctx.completed("mcts"):
                search = ctx.load_search()
                ctx.skip("mcts")
            else:
                placer = MCTSPlacer(
                    env,
                    network,
                    reward_fn,
                    cfg.mcts,
                    events=events,
                    budget=ctx.budget("mcts"),
                    on_commit=(
                        ctx.save_mcts_snapshot if ctx.dir is not None else None
                    ),
                    terminal_pool=terminal_pool,
                    terminal_cache=terminal_cache,
                    inference=mcts_client,
                )
                resume_state = ctx.load_mcts_snapshot()
                with ctx.guard("mcts"):
                    with stopwatch.measure("mcts"):
                        search = placer.run(resume_state=resume_state)
                    ctx.save_search(search)
                    ctx.mark(
                        "mcts",
                        wirelength=search.wirelength,
                        seconds=round(stopwatch.total("mcts"), 3),
                    )

            # -- stage 6: final placement ----------------------------------------
            legal_hpwl = None
            cell_result = None
            if ctx.completed("final"):
                hpwl, legal_hpwl = ctx.load_final(design)
                ctx.skip("final")
            else:
                with ctx.guard("final"):
                    # deliberately in-process: the design object must carry
                    # the final coordinates
                    with stopwatch.measure("final"):
                        hpwl = env.evaluate_assignment(search.assignment)
                    if cfg.legalize_cells:
                        from repro.legalize.cells import legalize_cells
                        from repro.netlist.hpwl import FlatNetlist

                        with stopwatch.measure("cell_legalization"):
                            cell_result = legalize_cells(design)
                            legal_hpwl = FlatNetlist(design.netlist).total_hpwl()
                    ctx.save_final(design, hpwl, legal_hpwl)
                    ctx.mark("final", hpwl=hpwl)
        finally:
            for client in (trainer_client, mcts_client):
                if client is not None:
                    client.close()
            if owned_broker is not None:
                owned_broker.close()
            if terminal_pool is not None:
                terminal_pool.close()

        # -- independent verification (repro.verify): re-derive legality and
        # HPWL through code paths the optimizer does not share ---------------
        verification = None
        if cfg.verify_results:
            from repro.runtime.errors import VerificationError
            from repro.verify import verify_placement

            with ctx.guard("verify"):
                with stopwatch.measure("verify"):
                    verification = verify_placement(
                        design,
                        plan=GridPlan(design.region, zeta=cfg.zeta),
                        reported_hpwl=hpwl,
                    )
                events.emit(
                    "verification",
                    ok=verification.ok,
                    checks={c.name: c.ok for c in verification.checks},
                )
                if not verification.ok:
                    raise VerificationError(
                        "independent placement verification failed",
                        stage="verify",
                        failed=verification.failed,
                        detail=verification.summary(),
                    )

        events.emit(
            "terminal_cache",
            hits=terminal_cache.hits,
            misses=terminal_cache.misses,
            entries=len(terminal_cache),
        )
        events.emit("run_completed", hpwl=hpwl)
        return FlowResult(
            hpwl=hpwl,
            assignment=search.assignment,
            history=history,
            search=search,
            reward_fn=reward_fn,
            coarse=coarse,
            stopwatch=stopwatch,
            legal_hpwl=legal_hpwl,
            cell_legalization=cell_result,
            events=events,
            verification=verification,
        )
