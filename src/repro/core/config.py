"""Configuration of the full placement flow.

``PlacerConfig()`` is CPU-sized (small grid/network, few episodes) so a
full run finishes in seconds; :meth:`PlacerConfig.paper` reconstructs the
paper's settings (ζ=16, 128-channel 10-block tower, ν=0.001 clustering,
c=1.05 PUCT, 50 calibration episodes, updates every 30 episodes) at the
cost of hours of single-core runtime.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

from repro.agent.network import NetworkConfig
from repro.coarsen.scores import GammaParams, PhiParams
from repro.mcts.search import MCTSConfig


@dataclass(frozen=True)
class PlacerConfig:
    """All knobs of :class:`repro.core.flow.MCTSGuidedPlacer`."""

    # Preprocessing (Sec. II-A)
    zeta: int = 8
    gamma_params: GammaParams = field(default_factory=GammaParams)
    phi_params: PhiParams = field(default_factory=PhiParams)
    prototype_iterations: int = 3

    # RL pre-training (Sec. III)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    episodes: int = 120
    update_every: int = 30
    calibration_episodes: int = 20
    alpha: float = 0.75
    learning_rate: float = 1e-3
    #: entropy bonus and per-update epochs: 0/1 match the paper's plain A2C;
    #: the CPU-budget benchmark preset turns both up for sample efficiency.
    entropy_coef: float = 0.0
    epochs_per_update: int = 1
    checkpoint_every: int | None = None
    #: synchronized episodes rolled out per batched network forward during
    #: RL pre-training (1 = the sequential rollout path, bit-identical to
    #: the pre-batching trainer)
    rollout_envs: int = 1

    # MCTS (Sec. IV)
    mcts: MCTSConfig = field(default_factory=MCTSConfig)
    #: two-tier terminal evaluation: admit only candidates ranking in the
    #: search's running top-K by surrogate HPWL to the exact
    #: legalize-and-place pipeline (``repro.surrogate``).  ``None`` keeps
    #: every terminal exact — bit-for-bit today's search.  Set here it is
    #: mirrored into ``mcts.exact_topk``; a finite K changes which leaves
    #: get exact values, so it IS part of the run-dir config fingerprint.
    exact_topk: int | None = None

    # Fault-tolerant runtime (repro.runtime): stage checkpoint/resume,
    # wall-clock budgets, and guard tolerances.
    #: directory for the run manifest, stage artifacts, and the event log
    #: (None disables persistence; ``place(..., run_dir=...)`` overrides)
    run_dir: str | None = None
    #: skip stages the run dir already completed and restore their artifacts
    resume: bool = False
    #: wall-clock budget of RL pre-training — training ends early with the
    #: anytime best-so-far history (None = unlimited)
    rl_budget_seconds: float | None = None
    #: wall-clock budget of the MCTS stage — remaining groups are committed
    #: by visit count / policy prior when it runs out (None = unlimited)
    mcts_budget_seconds: float | None = None
    #: default budget for every other stage; exceeding it raises
    #: :class:`repro.runtime.errors.StageTimeoutError` at the next safe point
    stage_budget_seconds: float | None = None
    #: consecutive non-finite updates tolerated (each rolls parameters back)
    #: before RL training raises ``TrainingDivergedError``
    max_divergence_rollbacks: int = 8
    #: total failed episodes tolerated before RL training gives up
    max_episode_failures: int = 8

    # Terminal evaluation (Sec. II-B/II-C)
    cell_place_iterations: int = 3
    #: worker processes for terminal legalize-and-place evaluations
    #: (``repro.parallel``); 1 evaluates in-process.  Results are
    #: bitwise-identical for every worker count (terminal evaluation is a
    #: pure function of the assignment), so this is an execution knob, not
    #: a result knob — it is excluded from the run-dir config fingerprint.
    terminal_workers: int = 1
    #: clamp ``terminal_workers`` to ``os.cpu_count()`` and fall back
    #: in-process when the clamp leaves a single worker (oversubscribed
    #: pools lose; BENCH_pr3 recorded 0.21× at w4 on one core).  False
    #: takes the requested count literally — benchmarks measuring
    #: oversubscription and pool fault drills on small hosts opt out.
    #: Pure execution knob: excluded from the run-dir config fingerprint.
    terminal_pool_clamp: bool = True
    #: explicit path for the cross-run terminal cache JSONL, overriding the
    #: per-run-dir default.  The placement service points every job at one
    #: shared file so terminal HPWL results amortize across the fleet
    #: (entries are fingerprint-keyed, so unrelated designs coexist).  Like
    #: ``terminal_workers`` this is an execution knob, not a result knob —
    #: excluded from the run-dir config fingerprint.
    terminal_cache_path: str | None = None
    #: run the row-based cell legalizer after the final cell placement and
    #: report the legalized HPWL as well (an extension beyond the paper,
    #: which measures the analytical cell placement directly).
    legalize_cells: bool = False
    #: re-check the final placement with the independent verifier
    #: (``repro.verify``): macro overlaps, bounds, grid capacity, HPWL
    #: recomputed through a separate code path.  A failure raises
    #: :class:`repro.runtime.errors.VerificationError`.  Verification
    #: observes the result without changing it, so — like the execution
    #: knobs above — it is excluded from the run-dir config fingerprint.
    verify_results: bool = False
    #: route network evaluations through the shared inference broker
    #: (``repro.inference``): a spawn-context process owning the
    #: policy/value network and coalescing requests from every concurrent
    #: job into large cross-job batches.  Broker mode runs *all* forwards
    #: (broker-served and in-process fallback alike) as fixed 32-row
    #: zero-padded tiles, so per-job results are bitwise-identical at
    #: every concurrency and across broker crashes — but differ from the
    #: broker-off untiled forward (BLAS results depend on the GEMM row
    #: count), so flipping this knob mid-resume changes leaf evaluations.
    #: Like the terminal-pool knobs it is an execution knob — excluded
    #: from the run-dir config fingerprint.
    inference_broker: bool = False
    #: broker coalescing cap: flush once this many states are pending.
    #: Pure execution knob (the forward tile is a fixed constant, so
    #: batching limits never influence numerics) — excluded from the
    #: run-dir config fingerprint.
    inference_max_batch: int = 64
    #: broker coalescing window in microseconds, measured from the first
    #: pending request; only engaged while more than one client is
    #: registered, so a lone job pays no added latency.  Pure execution
    #: knob — excluded from the run-dir config fingerprint.
    inference_coalesce_us: int = 2000
    #: use :class:`repro.legalize.IncrementalMacroLegalizer` for terminal
    #: evaluations: QP factorizations, the step-1 coarse netlist, and
    #: axis-net topologies are cached across calls.  Results are
    #: bitwise-identical to the from-scratch pipeline (equivalence-gated in
    #: tests and bench_surrogate), so this is an execution knob — excluded
    #: from the run-dir config fingerprint.
    incremental_legalizer: bool = True

    seed: int = 0

    def __post_init__(self) -> None:
        if self.network.zeta != self.zeta:
            object.__setattr__(self, "network", replace(self.network, zeta=self.zeta))
        if (
            self.exact_topk is not None
            and self.mcts.exact_topk != self.exact_topk
        ):
            object.__setattr__(
                self, "mcts", replace(self.mcts, exact_topk=self.exact_topk)
            )

    @classmethod
    def paper(cls) -> "PlacerConfig":
        """The paper's published settings (Table I, Sec. II/III/IV text)."""
        return cls(
            zeta=16,
            network=NetworkConfig.paper(),
            episodes=3000,
            update_every=30,
            calibration_episodes=50,
            alpha=0.75,  # paper: α ∈ [0.5, 1]
            mcts=MCTSConfig(c_puct=1.05, explorations=400),
            cell_place_iterations=5,
        )

    @classmethod
    def benchmark(cls, seed: int = 0) -> "PlacerConfig":
        """The CPU-budget preset used by the benchmark harness.

        Tuned so a suite circuit finishes in ~1–2 minutes on one core while
        preserving the paper's qualitative results (MCTS ≥ RL, ours
        competitive with the analytical baselines).
        """
        return cls(
            zeta=8,
            network=NetworkConfig(zeta=8, channels=16, res_blocks=2, seed=seed),
            episodes=600,
            update_every=10,
            calibration_episodes=20,
            learning_rate=2e-3,
            entropy_coef=0.01,
            epochs_per_update=3,
            mcts=MCTSConfig(c_puct=1.05, explorations=300, seed=seed),
            cell_place_iterations=2,
            seed=seed,
        )

    def override(self, knob: str, value) -> "PlacerConfig":
        """One dotted-path override; see :func:`apply_overrides`."""
        return apply_overrides(self, {knob: value})

    @classmethod
    def fast(cls, seed: int = 0) -> "PlacerConfig":
        """Smallest sensible configuration (unit tests, CI)."""
        return cls(
            zeta=8,
            network=NetworkConfig(zeta=8, channels=8, res_blocks=1, seed=seed),
            episodes=20,
            update_every=10,
            calibration_episodes=5,
            mcts=MCTSConfig(explorations=8, seed=seed),
            cell_place_iterations=2,
            prototype_iterations=2,
            seed=seed,
        )


#: knobs that must stay under the caller's (job spec / service) control —
#: overriding them through the generic path would desynchronize the
#: service's run-dir, cache, and pool management from the config it thinks
#: it is running.
_RESERVED_KNOBS = frozenset(
    {
        "run_dir",
        "resume",
        "terminal_cache_path",
        "terminal_workers",
        "terminal_pool_clamp",
    }
)


def _coerce(current, value, path: str):
    """Nudge a JSON-decoded *value* toward the type *current* holds.

    JSON has no int/float or list/tuple distinction, so a sweep spec
    saying ``"episodes": [100.0, 200.0]`` or ``"seeds": [0, 1]`` must not
    fail on a spurious type mismatch.  Only safe, lossless conversions
    are applied; anything else is returned unchanged (``replace`` — and
    eventually the flow — surfaces genuinely wrong values).
    """
    if isinstance(current, bool) or isinstance(value, bool):
        return value
    if isinstance(current, int) and isinstance(value, float):
        if value.is_integer():
            return int(value)
        from repro.runtime.errors import UsageError

        raise UsageError(
            f"config knob {path!r} holds an int; got {value!r}",
            knob=path,
            value=value,
        )
    if isinstance(current, float) and isinstance(value, int):
        return float(value)
    if isinstance(current, tuple) and isinstance(value, list):
        return tuple(value)
    return value


def _apply_one(obj, parts: list[str], value, path: str):
    from repro.runtime.errors import UsageError

    head, rest = parts[0], parts[1:]
    if not dataclasses.is_dataclass(obj):
        raise UsageError(
            f"config knob {path!r}: {head!r} is not a config section",
            knob=path,
        )
    names = {f.name for f in dataclasses.fields(obj)}
    if head not in names:
        raise UsageError(
            f"unknown config knob {path!r} ({head!r} is not a field of "
            f"{type(obj).__name__}; choose from {sorted(names)})",
            knob=path,
        )
    current = getattr(obj, head)
    if rest:
        return replace(obj, **{head: _apply_one(current, rest, value, path)})
    return replace(obj, **{head: _coerce(current, value, path)})


def apply_overrides(config: PlacerConfig, overrides) -> PlacerConfig:
    """Apply dotted-path knob overrides to a :class:`PlacerConfig`.

    *overrides* maps dotted paths to values (a mapping, or an iterable of
    ``(path, value)`` pairs): ``"zeta"`` hits a top-level knob,
    ``"mcts.c_puct"`` / ``"network.channels"`` / ``"gamma_params.k1"``
    reach into the nested config dataclasses.  Every application goes
    through ``dataclasses.replace``, so ``__post_init__`` invariants
    (network ζ sync, ``exact_topk`` mirroring) re-run on each step.
    Unknown paths raise :class:`~repro.runtime.errors.UsageError` —
    a sweep spec with a typo fails at expansion, not after hours of
    placement.  This is the single override path shared by the study
    engine, ``JobSpec.overrides``, and ``repro submit --set``.
    """
    from repro.runtime.errors import UsageError

    items = overrides.items() if hasattr(overrides, "items") else overrides
    for path, value in items:
        parts = [p for p in str(path).split(".") if p]
        if not parts:
            raise UsageError("empty config knob path", knob=path)
        if parts[0] in _RESERVED_KNOBS:
            raise UsageError(
                f"config knob {path!r} is reserved (execution knobs are "
                "set by the job spec / service, not by overrides)",
                knob=path,
            )
        config = _apply_one(config, parts, value, str(path))
    return config
