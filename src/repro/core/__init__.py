"""The paper's primary contribution: the MCTS-guided, RL-pretrained placer."""

from repro.core.config import PlacerConfig
from repro.core.flow import FlowResult, MCTSGuidedPlacer

__all__ = ["FlowResult", "MCTSGuidedPlacer", "PlacerConfig"]
