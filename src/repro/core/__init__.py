"""The paper's primary contribution: the MCTS-guided, RL-pretrained placer."""

from repro.core.config import PlacerConfig, apply_overrides
from repro.core.flow import FlowResult, MCTSGuidedPlacer

__all__ = ["FlowResult", "MCTSGuidedPlacer", "PlacerConfig", "apply_overrides"]
