"""JSON persistence for experiment results.

An :class:`ExperimentRecord` is one experiment's outcome (a Table III
row-set, a Fig. 4 curve bundle, ...) plus enough context to reproduce it:
experiment id, budget name, seeds, code version.  A :class:`RecordStore`
is a directory of such records, addressable by experiment id, supporting
append-and-compare workflows:

    store = RecordStore("results/")
    store.save(ExperimentRecord(experiment="table3", budget="default",
                                data={"normalized": {...}}))
    previous = store.load_latest("table3")
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass, field
from typing import Any

from repro import __version__

_SLUG_RE = re.compile(r"[^a-zA-Z0-9_-]+")


def _slug(name: str) -> str:
    return _SLUG_RE.sub("-", name).strip("-") or "experiment"


@dataclass
class ExperimentRecord:
    """One experiment outcome with its reproduction context."""

    experiment: str
    data: dict[str, Any]
    budget: str = "default"
    seed: int = 0
    version: str = field(default=__version__)
    #: monotonically assigned by the store on save
    sequence: int = -1

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        raw = json.loads(text)
        return cls(**raw)


class RecordStore:
    """A directory of experiment records, one JSON file each.

    File names are ``{experiment}-{sequence:04d}.json``; sequence numbers
    are per-experiment and strictly increasing, so ``load_latest`` is just
    the max.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _paths_for(self, experiment: str) -> list[tuple[int, str]]:
        slug = _slug(experiment)
        found: list[tuple[int, str]] = []
        for name in os.listdir(self.directory):
            m = re.fullmatch(rf"{re.escape(slug)}-(\d{{4}})\.json", name)
            if m:
                found.append((int(m.group(1)), os.path.join(self.directory, name)))
        return sorted(found)

    def save(self, record: ExperimentRecord) -> str:
        """Persist *record*; assigns the next sequence number.

        Returns the file path.
        """
        existing = self._paths_for(record.experiment)
        record.sequence = (existing[-1][0] + 1) if existing else 0
        path = os.path.join(
            self.directory, f"{_slug(record.experiment)}-{record.sequence:04d}.json"
        )
        with open(path, "w") as f:
            f.write(record.to_json())
        return path

    def load_latest(self, experiment: str) -> ExperimentRecord | None:
        """Most recent record for *experiment* (None when absent)."""
        existing = self._paths_for(experiment)
        if not existing:
            return None
        with open(existing[-1][1]) as f:
            return ExperimentRecord.from_json(f.read())

    def load_all(self, experiment: str) -> list[ExperimentRecord]:
        """Every record for *experiment*, oldest first."""
        out = []
        for _seq, path in self._paths_for(experiment):
            with open(path) as f:
                out.append(ExperimentRecord.from_json(f.read()))
        return out

    def experiments(self) -> list[str]:
        """Distinct experiment slugs present in the store."""
        names = set()
        for name in os.listdir(self.directory):
            m = re.fullmatch(r"(.+)-\d{4}\.json", name)
            if m:
                names.add(m.group(1))
        return sorted(names)

    def compare_latest(
        self, experiment: str, key: str
    ) -> tuple[Any, Any] | None:
        """(previous, latest) values of ``data[key]`` — None unless ≥ 2 runs."""
        records = self.load_all(experiment)
        if len(records) < 2:
            return None
        return records[-2].data.get(key), records[-1].data.get(key)
