"""Experiment-record persistence.

The benchmark harness prints paper-style tables and stashes numbers in
pytest-benchmark's ``extra_info``; this package gives the same data a
stable on-disk home so runs can be compared across machines/budgets
(`repro.experiments.records`).
"""

from repro.experiments.records import ExperimentRecord, RecordStore

__all__ = ["ExperimentRecord", "RecordStore"]
