"""ζ×ζ grid partitioning of the placement region.

The paper's first preprocessing step "divides a placement region into a
grid-based structure" with ζ=16.  The RL agent and MCTS allocate macro
groups to these grid cells; the state tensors s_p and s_a (Sec. III-B) are
ζ×ζ images over this plan.

Conventions:

- grids are indexed ``(row, col)`` with row 0 at the *bottom* (y increasing
  with row index), matching the geometric orientation of the die;
- a flat index ``g = row * zeta + col`` is used as the RL/MCTS action id.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.model import Node, PlacementRegion


@dataclass(frozen=True)
class GridPlan:
    """An immutable ζ×ζ partition of a :class:`PlacementRegion`."""

    region: PlacementRegion
    zeta: int = 16

    def __post_init__(self) -> None:
        if self.zeta < 1:
            raise ValueError("zeta must be >= 1")

    # -- geometry ------------------------------------------------------------
    @property
    def cell_width(self) -> float:
        return self.region.width / self.zeta

    @property
    def cell_height(self) -> float:
        return self.region.height / self.zeta

    @property
    def cell_area(self) -> float:
        return self.cell_width * self.cell_height

    @property
    def n_grids(self) -> int:
        return self.zeta * self.zeta

    def flat_index(self, row: int, col: int) -> int:
        """Flat action id of grid (row, col)."""
        if not (0 <= row < self.zeta and 0 <= col < self.zeta):
            raise IndexError(f"grid ({row}, {col}) outside {self.zeta}x{self.zeta}")
        return row * self.zeta + col

    def row_col(self, flat: int) -> tuple[int, int]:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= flat < self.n_grids:
            raise IndexError(f"flat index {flat} outside 0..{self.n_grids - 1}")
        return divmod(flat, self.zeta)

    def origin(self, row: int, col: int) -> tuple[float, float]:
        """Lower-left corner of grid (row, col) in die coordinates."""
        return (
            self.region.x + col * self.cell_width,
            self.region.y + row * self.cell_height,
        )

    def center(self, row: int, col: int) -> tuple[float, float]:
        """Center of grid (row, col) in die coordinates."""
        ox, oy = self.origin(row, col)
        return ox + self.cell_width / 2.0, oy + self.cell_height / 2.0

    def bounds(self, row: int, col: int) -> tuple[float, float, float, float]:
        """(x_min, y_min, x_max, y_max) of grid (row, col)."""
        ox, oy = self.origin(row, col)
        return ox, oy, ox + self.cell_width, oy + self.cell_height

    def grid_of_point(self, x: float, y: float) -> tuple[int, int]:
        """Grid (row, col) containing point (x, y), clamped to the plan."""
        col = int((x - self.region.x) / self.cell_width)
        row = int((y - self.region.y) / self.cell_height)
        return (
            min(max(row, 0), self.zeta - 1),
            min(max(col, 0), self.zeta - 1),
        )

    # -- footprints ------------------------------------------------------------
    def span(self, width: float, height: float) -> tuple[int, int]:
        """Grid footprint (rows, cols) of a ``width``×``height`` rectangle.

        This is the dimension of the paper's s_m matrix: "the number of grids
        occupied by M_t".  A rectangle no larger than one grid cell spans
        (1, 1); partial overflows round up.
        """
        cols = max(1, int(np.ceil(width / self.cell_width - 1e-9)))
        rows = max(1, int(np.ceil(height / self.cell_height - 1e-9)))
        return min(rows, self.zeta), min(cols, self.zeta)

    def occupancy(self, nodes: list[Node]) -> np.ndarray:
        """ζ×ζ area-occupancy image of *nodes* (uncapped grid utilization).

        Each node's rectangle is rasterized onto the grid; the returned array
        holds occupied area divided by grid area (may exceed 1 before the
        cap the state representation applies).
        """
        occ = np.zeros((self.zeta, self.zeta))
        gx = self.cell_width
        gy = self.cell_height
        for node in nodes:
            c0 = int(np.floor((node.x - self.region.x) / gx))
            c1 = int(np.ceil((node.x + node.width - self.region.x) / gx))
            r0 = int(np.floor((node.y - self.region.y) / gy))
            r1 = int(np.ceil((node.y + node.height - self.region.y) / gy))
            for r in range(max(r0, 0), min(r1, self.zeta)):
                for c in range(max(c0, 0), min(c1, self.zeta)):
                    x_lo, y_lo, x_hi, y_hi = self.bounds(r, c)
                    w = min(node.x + node.width, x_hi) - max(node.x, x_lo)
                    h = min(node.y + node.height, y_hi) - max(node.y, y_lo)
                    if w > 0 and h > 0:
                        occ[r, c] += (w * h) / self.cell_area
        return occ
