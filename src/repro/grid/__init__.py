"""Grid substrate: ζ×ζ partitioning of the placement region (Sec. II-A)."""

from repro.grid.plan import GridPlan

__all__ = ["GridPlan"]
