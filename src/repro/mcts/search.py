"""Agent-guided MCTS over macro-group allocation (Sec. IV-B, Alg. 1 l.11–16).

The search runs once, after RL pre-training.  For each macro group in order
it performs γ *explorations* from the current committed node, then commits
the most-visited edge.  Each exploration:

1. **Selection** — descend by argmax(Q + U) (Eq. 10/11) until an
   unexplored node s_s is reached.
2. **Expansion** — mark s_s explored; create its edges with N=W=Q=0 and
   P = π_θ(s_s).
3. **Evaluation** — *non-terminal* s_s is scored by the value network
   v_θ(s_s) directly (no rollout); *terminal* s_s triggers the real
   legalize-and-place pipeline, whose measured wirelength is converted to a
   value by the same reward function used in training.  Terminal values are
   cached per assignment.
4. **Backpropagation** — N/W/Q updated along the whole path to the root
   (Eq. 12).

Throughput extensions (``MCTSConfig.leaf_batch`` / ``virtual_loss``):
explorations run in *waves* of up to K selection descents.  Each descent
pre-charges a virtual loss along its path (N+vl, W−vl) so the following
descents in the wave spread to different leaves; the wave's distinct
non-terminal leaves are then evaluated in **one**
:meth:`PolicyValueNet.evaluate_batch` forward, the virtual losses are
reverted, and every descent backpropagates its real value.  A
transposition-keyed evaluation cache — keyed on the canonical state
content ``(t, s_p)``, so different action orders reaching the same
placement condition genuinely share one entry — lets repeated states skip
the network entirely.  K=1 disables virtual loss and reproduces the
sequential search's committed paths exactly.

Terminal evaluations (the real legalize-and-place) are pure functions of
the assignment, so they are memoized in a shared
:class:`~repro.parallel.TerminalCache` (optionally persisted across runs)
and can be dispatched to a :class:`~repro.parallel.TerminalEvaluationPool`:
a wave submits its terminal leaves as soon as selection discovers them,
overlaps the in-flight legalizations with the batched network forward, and
resolves the results — in deterministic submission order — before
backpropagation.  Pooled and in-process evaluations agree bitwise, so the
search result is identical for every worker count.

Two-tier terminal evaluation (``MCTSConfig.exact_topk``): with a finite K,
every terminal leaf is first scored by an incremental
:class:`~repro.surrogate.GroupCentroidSurrogate` (tier 1, microseconds);
only candidates ranking in the search's running top-K by surrogate score
are admitted to the exact legalize-and-place pipeline (tier 2).  Pruned
leaves backpropagate a value calibrated from the (surrogate, exact) pairs
the search has already paid for — but the surrogate never *reports*:
``best_terminal_assignment`` and the final committed wirelength always
come from exact evaluations.  K=None (the default) disables tier 1
entirely and reproduces the single-tier search bit-for-bit.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.agent.network import PolicyValueNet
from repro.agent.reward import RewardFunction
from repro.agent.state import StateBuilder
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.mcts.node import Node
from repro.parallel import TerminalCache, environment_fingerprint
from repro.runtime import faults
from repro.surrogate import GroupCentroidSurrogate, SurrogateCalibration
from repro.utils.events import EventLog
from repro.utils.rng import ensure_rng


def _state_key(state) -> tuple[int, bytes]:
    """Transposition key: the canonical state content.

    ``s_a``, the masks, and therefore the network outputs are all derived
    from ``(t, s_p)``, so two prefixes reaching the same placement
    condition share one cache entry — which is what makes the cache hit on
    genuine transpositions (e.g. equal-footprint groups swapping anchors)
    instead of keying on the unique path that reached the node.
    """
    return (state.t, state.s_p.tobytes())


@dataclass(frozen=True)
class MCTSConfig:
    """Search knobs.  ``c_puct`` defaults to the paper's 1.05."""

    c_puct: float = 1.05
    explorations: int = 40  # γ
    #: leaf-batch wave size K: selection descents collected per batched
    #: network evaluation.  1 keeps the sequential search (virtual loss is
    #: skipped entirely, so the committed path is reproduced exactly).
    leaf_batch: int = 1
    #: virtual-loss magnitude pre-charged along in-flight descent paths
    #: (only applied when ``leaf_batch`` > 1).
    virtual_loss: float = 1.0
    #: Dirichlet root noise (0 disables; the paper does not use noise, but
    #: the ablation benches expose it).
    root_noise_frac: float = 0.0
    root_noise_alpha: float = 0.3
    seed: int = 0
    #: two-tier terminal evaluation: admit only candidates ranking in the
    #: search's running top-K by surrogate HPWL to the exact
    #: legalize-and-place pipeline.  ``None`` (default) evaluates every
    #: terminal exactly — bit-for-bit today's behavior; ``0`` prunes every
    #: search-time exact call (the committed result is still evaluated
    #: exactly at the end).
    exact_topk: int | None = None


@dataclass
class SearchResult:
    """Outcome of one full MCTS placement."""

    assignment: list[int]
    wirelength: float
    reward: float
    #: committed (depth, action) pairs in order — the traced-back path
    path: list[tuple[int, int]] = field(default_factory=list)
    n_terminal_evaluations: int = 0
    n_network_evaluations: int = 0
    #: best *terminal* assignment visited anywhere during the search — an
    #: anytime byproduct; the committed path is the paper-faithful result.
    best_terminal_assignment: list[int] | None = None
    best_terminal_wirelength: float = float("inf")
    #: transposition-cache hits (network evaluations avoided)
    n_eval_cache_hits: int = 0
    #: terminal-cache hits (legalize-and-place calls avoided; includes
    #: entries carried over from a persisted cross-run cache)
    n_terminal_cache_hits: int = 0
    #: batched evaluation waves issued and leaves evaluated across them
    n_waves: int = 0
    n_wave_leaves: int = 0
    #: wall-clock seconds by stage (selection+backprop / network forward /
    #: terminal legalize-and-place)
    seconds_selection: float = 0.0
    seconds_evaluation: float = 0.0
    seconds_terminal: float = 0.0
    #: exact legalize-and-place pipeline invocations (tier 2).  Equal to
    #: ``n_terminal_evaluations`` today; kept separate so the two-tier
    #: scheme's pruning is measurable at a glance.
    n_exact_evaluations: int = 0
    #: tier-1 surrogate HPWL scores computed (0 when ``exact_topk`` is None)
    n_surrogate_evaluations: int = 0
    #: wall-clock seconds spent in tier-1 surrogate scoring
    seconds_surrogate: float = 0.0
    #: Spearman rank correlation between surrogate and exact HPWL over the
    #: (surrogate, exact) pairs observed during the search; ``None`` when
    #: the surrogate was off or saw < 2 exact results.
    surrogate_spearman: float | None = None


class MCTSPlacer:
    """Runs the placement-optimization stage against an environment."""

    def __init__(
        self,
        env: MacroGroupPlacementEnv,
        network: PolicyValueNet,
        reward_fn: RewardFunction,
        config: MCTSConfig = MCTSConfig(),
        events: EventLog | None = None,
        budget=None,
        on_commit=None,
        terminal_pool=None,
        terminal_cache: TerminalCache | None = None,
        surrogate: GroupCentroidSurrogate | None = None,
        inference=None,
    ) -> None:
        self.env = env
        self.network = network
        #: evaluation surface for network inference.  Defaults to the
        #: network itself; the flow passes an
        #: :class:`~repro.inference.InferenceClient` here in broker mode
        #: (same evaluate/evaluate_batch signatures, bitwise-identical
        #: per-state results), so the search never knows the difference.
        self._infer = inference if inference is not None else network
        self.reward_fn = reward_fn
        self.config = config
        self.rng = ensure_rng(config.seed)
        #: pure-terminal-evaluation memo (assignment tuple → HPWL); a shared,
        #: optionally run-dir-persisted cache may be passed in by the flow so
        #: results survive checkpoint/resume and later runs.
        self._terminal_cache = (
            terminal_cache
            if terminal_cache is not None
            else TerminalCache(environment_fingerprint(env))
        )
        #: optional :class:`~repro.parallel.TerminalEvaluationPool`; when it
        #: has live workers, waves dispatch terminal leaves asynchronously.
        self.terminal_pool = terminal_pool
        #: transposition-keyed evaluation cache: canonical state content
        #: ``(t, s_p bytes)`` maps to the network's (masked probs, value).
        self._eval_cache: dict[tuple[int, bytes], tuple[np.ndarray, float]] = {}
        #: tier-1 surrogate scorer.  Built automatically when the config
        #: asks for top-K pruning; passing one explicitly with
        #: ``exact_topk=None`` enables *measure-only* mode (every terminal
        #: still evaluated exactly, but fidelity pairs are collected so
        #: ``surrogate_spearman`` is reported without any pruning).
        self.surrogate = surrogate
        if self.surrogate is None and config.exact_topk is not None:
            self.surrogate = GroupCentroidSurrogate(env.coarse)
        self._calibration = SurrogateCalibration()
        #: max-heap (negated) of the K best surrogate scores seen so far —
        #: the streaming admission filter for tier 2.
        self._topk_heap: list[float] = []
        #: assignment key → in-flight pooled future; dedupes submissions so
        #: a key never runs on two workers at once (avoided resubmissions
        #: count as terminal-cache hits).
        self._inflight: dict[tuple[int, ...], object] = {}
        self.n_terminal_evaluations = 0
        self.n_network_evaluations = 0
        self.n_eval_cache_hits = 0
        self.n_terminal_cache_hits = 0
        self.n_waves = 0
        self.n_wave_leaves = 0
        self.n_exact_evaluations = 0
        self.n_surrogate_evaluations = 0
        self.seconds_selection = 0.0
        self.seconds_evaluation = 0.0
        self.seconds_terminal = 0.0
        self.seconds_surrogate = 0.0
        self.best_terminal_assignment: list[int] | None = None
        self.best_terminal_wirelength = float("inf")
        #: runtime plumbing (optional): event log, wall-clock budget polled
        #: between explorations, and a per-commit checkpoint hook called as
        #: ``on_commit(state_dict)`` with :meth:`export-compatible <run>` state.
        self.events = events if events is not None else EventLog()
        self.budget = budget
        self.on_commit = on_commit

    # -- node expansion helpers ---------------------------------------------------
    def _attach(self, node: Node, state, probs: np.ndarray) -> None:
        """Create *node*'s edges (N=W=Q=0, P=π_θ restricted to the mask)."""
        mask = state.action_mask
        actions = np.flatnonzero(mask > 0)
        prior = probs[actions]
        total = prior.sum()
        prior = prior / total if total > 0 else np.full(len(actions), 1.0 / len(actions))
        node.actions = actions.astype(np.int64)
        node.prior = prior
        node.visit = np.zeros(len(actions))
        node.total_value = np.zeros(len(actions))
        node.expanded = True

    def _expand(
        self, node: Node, builder: StateBuilder, prefix: list[int]
    ) -> float:
        """Expand *node* (state = builder's current) and return its value.

        The transposition evaluation cache is consulted before the network,
        keyed on the canonical state content (:func:`_state_key`) so equal
        states reached by different action orders share one entry.
        *prefix* is the action sequence leading to *node* — no longer the
        cache key, but kept in the signature because rollout-based variants
        (the Sec. IV-B3 ablation) need it to complete assignments.
        """
        state = builder.observe()
        key = _state_key(state)
        hit = self._eval_cache.get(key)
        if hit is not None:
            probs, value = hit
            self.n_eval_cache_hits += 1
        else:
            started = time.perf_counter()
            probs, value = self._infer.evaluate(
                state.s_p, state.s_a, state.t, state.total_steps
            )
            self.seconds_evaluation += time.perf_counter() - started
            self.n_network_evaluations += 1
            self._eval_cache[key] = (probs, value)
        self._attach(node, state, probs)
        return value

    def _note_terminal(self, key: tuple[int, ...], wirelength: float) -> None:
        """Track the best terminal assignment seen anywhere in the search."""
        if wirelength < self.best_terminal_wirelength:
            self.best_terminal_wirelength = wirelength
            self.best_terminal_assignment = list(key)

    # -- two-tier terminal evaluation ------------------------------------------
    def _surrogate_score(self, key: tuple[int, ...]) -> float:
        """Tier-1 incremental surrogate HPWL of a complete assignment."""
        started = time.perf_counter()
        score = self.surrogate.score(key)
        self.seconds_surrogate += time.perf_counter() - started
        self.n_surrogate_evaluations += 1
        return score

    def _admit_exact(self, score: float) -> bool:
        """Streaming top-K admission: does *score* earn a tier-2 call?

        The first K distinct candidates are always admitted; afterwards a
        candidate must beat the current K-th best surrogate score
        (strictly — ties are pruned).  Total admissions can exceed K as
        better candidates keep arriving, but every admission was in the
        running top-K at the moment it was seen, which is the deterministic
        streaming analogue of "exact evaluation for the top-K finalists".
        """
        k = self.config.exact_topk
        if k is None:
            return True
        if k <= 0:
            return False
        heap = self._topk_heap
        if len(heap) < k:
            heapq.heappush(heap, -score)
            return True
        if -score > heap[0]:
            heapq.heapreplace(heap, -score)
            return True
        return False

    def _pruned_value(self, score: float) -> float:
        """Backprop value for a tier-1-pruned leaf: calibrated to the exact
        wirelength scale from the pairs the search has already paid for."""
        return float(self.reward_fn(self._calibration.predict(score)))

    def _evaluate_exact(
        self, key: tuple[int, ...], score: float | None = None
    ) -> float:
        """Tier 2: the real legalize-and-place, counted, cached, noted."""
        started = time.perf_counter()
        if self.terminal_pool is not None:
            wirelength = self.terminal_pool.evaluate(key)
        else:
            wirelength = self.env.evaluate_assignment(list(key))
        self.seconds_terminal += time.perf_counter() - started
        self.n_terminal_evaluations += 1
        self.n_exact_evaluations += 1
        self._terminal_cache.put(key, wirelength)
        if score is not None:
            self._calibration.observe(score, wirelength)
        self._note_terminal(key, wirelength)
        return float(self.reward_fn(wirelength))

    def _terminal_value(self, assignment: list[int]) -> float:
        """Reward of a complete assignment (cached, deduped, poolable).

        Order of business: memoized result → in-flight pooled future
        (reuse instead of resubmitting; the avoided call counts as a cache
        hit) → tier-1 surrogate gate (finite ``exact_topk`` only) → tier-2
        exact evaluation.
        """
        key = tuple(int(a) for a in assignment)
        wirelength = self._terminal_cache.get(key)
        if wirelength is not None:
            self.n_terminal_cache_hits += 1
            self._note_terminal(key, wirelength)
            return float(self.reward_fn(wirelength))
        inflight = self._inflight.get(key)
        if inflight is not None:
            started = time.perf_counter()
            wirelength = inflight.result()
            self.seconds_terminal += time.perf_counter() - started
            self.n_terminal_cache_hits += 1
            self._note_terminal(key, wirelength)
            return float(self.reward_fn(wirelength))
        score = None
        if self.surrogate is not None:
            score = self._surrogate_score(key)
            if not self._admit_exact(score):
                return self._pruned_value(score)
        return self._evaluate_exact(key, score)

    def _apply_root_noise(self, node: Node) -> None:
        frac = self.config.root_noise_frac
        if frac <= 0 or len(node.prior) == 0:
            return
        noise = self.rng.dirichlet(
            np.full(len(node.prior), self.config.root_noise_alpha)
        )
        node.prior = (1 - frac) * node.prior + frac * noise

    # -- explorations --------------------------------------------------------------
    def _explore(
        self,
        root: Node,
        committed: list[int],
        path_to_target: list[tuple[Node, int]],
        target: Node,
        prefix_builder: StateBuilder | None = None,
    ) -> None:
        """One selection→expansion→evaluation→backpropagation pass.

        *path_to_target* holds (node, action_index) pairs for the committed
        prefix so backpropagation can run all the way to the root, as the
        paper's Fig. 3 shows.  Leaf evaluation goes through :meth:`_expand`
        so subclasses overriding it (the Sec. IV-B3 rollout ablation) keep
        working; no virtual loss is involved.
        """
        started = time.perf_counter()
        if prefix_builder is not None:
            builder = prefix_builder.clone()
        else:
            builder = StateBuilder(self.env.coarse)
            for a in committed:
                builder.apply(a)

        path: list[tuple[Node, int]] = list(path_to_target)
        node = target
        actions_taken = list(committed)

        # Selection: descend through expanded nodes.
        while node.expanded and not node.terminal:
            idx = node.select_child_index(self.config.c_puct)
            path.append((node, idx))
            actions_taken.append(int(node.actions[idx]))
            builder.apply(int(node.actions[idx]))
            node = node.child_for(idx)
        self.seconds_selection += time.perf_counter() - started

        # Evaluation (+ expansion for non-terminals).
        if builder.done():
            node.terminal = True
            if node.terminal_value is None:
                node.terminal_value = self._terminal_value(actions_taken)
            value = node.terminal_value
        else:
            value = self._expand(node, builder, actions_taken)

        # Backpropagation to the root (Eq. 12).
        started = time.perf_counter()
        for parent, idx in path:
            parent.record(idx, value)
        self.seconds_selection += time.perf_counter() - started

    def _explore_wave(
        self,
        root: Node,
        committed: list[int],
        path_to_target: list[tuple[Node, int]],
        target: Node,
        k: int,
        prefix_builder: StateBuilder | None = None,
    ) -> None:
        """Up to *k* virtual-loss selection descents sharing one batched
        network evaluation.

        Each descent pre-charges ``config.virtual_loss`` along its path so
        later descents in the wave diversify; the wave's distinct
        non-terminal leaves (cache misses only) go through **one**
        :meth:`PolicyValueNet.evaluate_batch` call, then every virtual loss
        is reverted and every descent backpropagates its real value to the
        root (Eq. 12).  At k=1 virtual loss is skipped — float add/subtract
        round-trips are not bitwise identities — so the sequential search
        is reproduced exactly.

        With a live :attr:`terminal_pool`, terminal leaves are *submitted*
        to the workers the moment selection discovers them, overlap with
        the remaining descents and the network forward, and are resolved in
        deterministic submission order before backpropagation — terminal
        values never influence other descents of the same wave (backprop is
        deferred to wave end), so the deferral changes nothing but
        wall-clock.
        """
        k = max(1, int(k))
        if k == 1:
            self._explore(root, committed, path_to_target, target, prefix_builder)
            return
        vl = self.config.virtual_loss
        if prefix_builder is None:
            prefix_builder = StateBuilder(self.env.coarse)
            for a in committed:
                prefix_builder.apply(a)
        pool = self.terminal_pool
        if pool is not None and not pool.parallel:
            pool = None

        started = time.perf_counter()
        # descent := [path, vl_edges, node, state | None]; terminal descents
        # carry state=None and read node.terminal_value at backprop time.
        descents: list[list] = []
        #: in-flight pooled terminal evaluations, in submission order:
        #: assignment tuple → (future, node, surrogate score | None, owned).
        #: owned=False entries ride a future submitted earlier (the
        #: in-flight dedupe) — the owner counts and caches the result.
        pending: dict[tuple[int, ...], tuple[object, Node, float | None, bool]] = {}
        for _ in range(k):
            builder = prefix_builder.clone()
            path: list[tuple[Node, int]] = list(path_to_target)
            vl_edges: list[tuple[Node, int]] = []
            node = target
            actions_taken = list(committed)

            # Selection: descend through expanded nodes.
            while node.expanded and not node.terminal:
                idx = node.select_child_index(self.config.c_puct)
                path.append((node, idx))
                if vl:
                    node.apply_virtual_loss(idx, vl)
                    vl_edges.append((node, idx))
                action = int(node.actions[idx])
                actions_taken.append(action)
                builder.apply(action)
                node = node.child_for(idx)

            if builder.done():
                node.terminal = True
                key = tuple(int(a) for a in actions_taken)
                if node.terminal_value is None and key not in pending:
                    if pool is not None:
                        wirelength = self._terminal_cache.get(key)
                        inflight = (
                            self._inflight.get(key) if wirelength is None else None
                        )
                        if wirelength is not None:
                            self.n_terminal_cache_hits += 1
                            self._note_terminal(key, wirelength)
                            node.terminal_value = float(self.reward_fn(wirelength))
                        elif inflight is not None:
                            # a worker is already computing this key — ride
                            # the in-flight future instead of resubmitting
                            # (owned=False: the owner counts/caches it)
                            self.n_terminal_cache_hits += 1
                            pending[key] = (inflight, node, None, False)
                        else:
                            score = None
                            admit = True
                            if self.surrogate is not None:
                                self.seconds_selection += (
                                    time.perf_counter() - started
                                )
                                score = self._surrogate_score(key)
                                admit = self._admit_exact(score)
                                started = time.perf_counter()
                            if not admit:
                                node.terminal_value = self._pruned_value(score)
                            else:
                                # dispatch now; legalization overlaps with
                                # the rest of the wave and the network
                                # forward
                                future = pool.submit(key)
                                self._inflight[key] = future
                                pending[key] = (future, node, score, True)
                    else:
                        # keep the legalize-and-place call out of the
                        # selection timer — it bills to seconds_terminal
                        # (and the surrogate gate to seconds_surrogate)
                        self.seconds_selection += time.perf_counter() - started
                        node.terminal_value = self._terminal_value(actions_taken)
                        started = time.perf_counter()
                descents.append([path, vl_edges, node, None])
            else:
                descents.append([path, vl_edges, node, builder.observe()])
        self.seconds_selection += time.perf_counter() - started

        # One batched evaluation for the wave's distinct uncached leaves.
        miss_keys: list[tuple[int, bytes]] = []
        miss_states: list = []
        seen: set[tuple[int, bytes]] = set()
        for _, _, _, state in descents:
            if state is None:
                continue
            key = _state_key(state)
            if key in self._eval_cache or key in seen:
                self.n_eval_cache_hits += 1
            else:
                seen.add(key)
                miss_keys.append(key)
                miss_states.append(state)
        if miss_states:
            started = time.perf_counter()
            probs_batch, values = self._infer.evaluate_batch(miss_states)
            self.seconds_evaluation += time.perf_counter() - started
            self.n_network_evaluations += len(miss_states)
            self.n_waves += 1
            self.n_wave_leaves += len(miss_states)
            for i, key in enumerate(miss_keys):
                self._eval_cache[key] = (probs_batch[i], float(values[i]))

        # Resolve the in-flight terminal evaluations (submission order is
        # deterministic, so best-terminal tie-breaking matches the
        # sequential path).
        for key, (future, node, score, owned) in pending.items():
            started = time.perf_counter()
            wirelength = future.result()
            self.seconds_terminal += time.perf_counter() - started
            if owned:
                self.n_terminal_evaluations += 1
                self.n_exact_evaluations += 1
                self._terminal_cache.put(key, wirelength)
                if score is not None:
                    self._calibration.observe(score, wirelength)
                self._note_terminal(key, wirelength)
                self._inflight.pop(key, None)
            node.terminal_value = float(self.reward_fn(wirelength))

        # Expansion, virtual-loss revert, backpropagation (Eq. 12).
        started = time.perf_counter()
        for path, vl_edges, node, state in descents:
            if state is not None:
                probs, value = self._eval_cache[_state_key(state)]
                if not node.expanded:
                    self._attach(node, state, probs)
            else:
                value = node.terminal_value
            for parent, idx in vl_edges:
                parent.revert_virtual_loss(idx, vl)
            for parent, idx in path:
                parent.record(idx, value)
        self.seconds_selection += time.perf_counter() - started

    # -- checkpoint/resume ---------------------------------------------------------------
    def _export_state(
        self,
        step: int,
        committed: list[int],
        path: list[tuple[int, int]],
        root: Node,
    ) -> dict:
        """Resumable search state after committing *step*'s move."""
        return {
            "version": 1,
            "step": step,
            "committed": list(committed),
            "path": [tuple(p) for p in path],
            "root": root,
            #: pure-terminal results (assignment → HPWL) — replaces the old
            #: value-keyed "terminal_cache" entry
            "terminal_wirelengths": self._terminal_cache.as_dict(),
            "eval_cache": dict(self._eval_cache),
            "best_terminal_assignment": self.best_terminal_assignment,
            "best_terminal_wirelength": self.best_terminal_wirelength,
            "n_terminal_evaluations": self.n_terminal_evaluations,
            "n_network_evaluations": self.n_network_evaluations,
            "n_eval_cache_hits": self.n_eval_cache_hits,
            "n_terminal_cache_hits": self.n_terminal_cache_hits,
            "n_waves": self.n_waves,
            "n_wave_leaves": self.n_wave_leaves,
            "seconds_selection": self.seconds_selection,
            "seconds_evaluation": self.seconds_evaluation,
            "seconds_terminal": self.seconds_terminal,
            "n_exact_evaluations": self.n_exact_evaluations,
            "n_surrogate_evaluations": self.n_surrogate_evaluations,
            "seconds_surrogate": self.seconds_surrogate,
            #: ordered (surrogate, exact) pairs — the calibration's running
            #: sums are rebuilt by replaying these, so a resumed search
            #: predicts (and therefore prunes) bit-identically
            "surrogate_pairs": self._calibration.export_pairs(),
            "topk_heap": list(self._topk_heap),
            "rng": self.rng.bit_generator.state,
        }

    def _restore_state(
        self, state: dict
    ) -> tuple[Node, list[int], list[tuple[Node, int]], list[tuple[int, int]], Node, int]:
        """Inverse of :meth:`_export_state`; rebuilds the committed path by
        walking the restored tree."""
        root = state["root"]
        committed = list(state["committed"])
        path = [tuple(p) for p in state["path"]]
        # Merge — not replace — the shared terminal cache: it may already
        # carry entries loaded from a run-dir persisted file.  Snapshots
        # from before the parallel engine stored reward *values* under
        # "terminal_cache"; those are ignored — purity makes recomputation
        # bitwise-identical, so dropping them costs time, never correctness.
        self._terminal_cache.update(state.get("terminal_wirelengths", {}))
        # .get defaults keep snapshots from before the batching engine loadable
        self._eval_cache = dict(state.get("eval_cache", {}))
        self.best_terminal_assignment = state["best_terminal_assignment"]
        self.best_terminal_wirelength = state["best_terminal_wirelength"]
        self.n_terminal_evaluations = state["n_terminal_evaluations"]
        self.n_network_evaluations = state["n_network_evaluations"]
        self.n_eval_cache_hits = state.get("n_eval_cache_hits", 0)
        self.n_terminal_cache_hits = state.get("n_terminal_cache_hits", 0)
        self.n_waves = state.get("n_waves", 0)
        self.n_wave_leaves = state.get("n_wave_leaves", 0)
        self.seconds_selection = state.get("seconds_selection", 0.0)
        self.seconds_evaluation = state.get("seconds_evaluation", 0.0)
        self.seconds_terminal = state.get("seconds_terminal", 0.0)
        # pre-two-tier snapshots: every terminal evaluation was exact
        self.n_exact_evaluations = state.get(
            "n_exact_evaluations", self.n_terminal_evaluations
        )
        self.n_surrogate_evaluations = state.get("n_surrogate_evaluations", 0)
        self.seconds_surrogate = state.get("seconds_surrogate", 0.0)
        self._calibration = SurrogateCalibration.from_pairs(
            state.get("surrogate_pairs", [])
        )
        self._topk_heap = list(state.get("topk_heap", []))
        self.rng.bit_generator.state = state["rng"]
        committed_path: list[tuple[Node, int]] = []
        current = root
        for action in committed:
            idx = int(np.flatnonzero(current.actions == action)[0])
            committed_path.append((current, idx))
            current = current.children[action]
        return root, committed, committed_path, path, current, state["step"] + 1

    # -- full placement ------------------------------------------------------------------
    def run(self, resume_state: dict | None = None) -> SearchResult:
        """Place every macro group; returns the final traced-back result.

        The search tree's root survives on ``self.last_root`` for post-hoc
        analysis (:func:`principal_variation`, visit statistics).

        *resume_state* (from :meth:`_export_state`, persisted by the run
        harness at every committed move) continues an interrupted search
        bit-for-bit.  When the wall-clock ``budget`` runs out mid-search the
        remaining groups are committed anytime-style: by visit count where
        explorations already happened, by policy prior otherwise.
        """
        env = self.env
        n_steps = env.n_steps
        if resume_state is not None:
            (root, committed, committed_path, path, current, start_step) = (
                self._restore_state(resume_state)
            )
            prefix_builder = StateBuilder(env.coarse)
            for a in committed:
                prefix_builder.apply(a)
        else:
            root = Node(depth=0)
            prefix_builder = StateBuilder(env.coarse)
            if n_steps > 0:
                self._expand(root, prefix_builder, [])
                self._apply_root_noise(root)
            committed = []
            committed_path = []
            path = []
            current = root
            start_step = 0
        self.last_root = root
        exhausted = False

        for step in range(start_step, n_steps):
            faults.check_kill("mcts.kill", stage="mcts")
            if not current.expanded:
                self._expand(current, prefix_builder.clone(), list(committed))
            remaining = int(self.config.explorations)
            wave_size = max(1, int(self.config.leaf_batch))
            while remaining > 0:
                if not exhausted and self.budget is not None and self.budget.exhausted():
                    exhausted = True
                    self.events.emit(
                        "budget_exhausted",
                        stage="mcts",
                        step=step,
                        elapsed=round(self.budget.elapsed(), 3),
                    )
                if exhausted:
                    break
                k = min(wave_size, remaining)
                self._explore_wave(
                    root, committed, committed_path, current, k,
                    prefix_builder=prefix_builder,
                )
                remaining -= k
            if current.visit.sum() > 0:
                idx = current.most_visited_index()
            else:
                # anytime fallback: no exploration happened under this node
                # (budget ran dry) — fall back to the policy prior.
                idx = int(np.argmax(current.prior))
            action = int(current.actions[idx])
            path.append((step, action))
            committed_path.append((current, idx))
            committed.append(action)
            prefix_builder.apply(action)
            current = current.child_for(idx)
            if self.on_commit is not None:
                self.on_commit(self._export_state(step, committed, path, root))

        wirelength = env.evaluate_assignment(committed)
        surrogate_spearman = self._surrogate_fidelity()
        self.events.emit(
            "search_stats",
            stage="mcts",
            network_evaluations=self.n_network_evaluations,
            terminal_evaluations=self.n_terminal_evaluations,
            eval_cache_hits=self.n_eval_cache_hits,
            terminal_cache_hits=self.n_terminal_cache_hits,
            waves=self.n_waves,
            wave_leaves=self.n_wave_leaves,
            exact_evaluations=self.n_exact_evaluations,
            surrogate_evaluations=self.n_surrogate_evaluations,
            surrogate_spearman=surrogate_spearman,
            seconds_selection=round(self.seconds_selection, 6),
            seconds_evaluation=round(self.seconds_evaluation, 6),
            seconds_terminal=round(self.seconds_terminal, 6),
            seconds_surrogate=round(self.seconds_surrogate, 6),
        )
        return SearchResult(
            assignment=committed,
            wirelength=wirelength,
            reward=float(self.reward_fn(wirelength)),
            path=path,
            n_terminal_evaluations=self.n_terminal_evaluations,
            n_network_evaluations=self.n_network_evaluations,
            best_terminal_assignment=self.best_terminal_assignment,
            best_terminal_wirelength=self.best_terminal_wirelength,
            n_eval_cache_hits=self.n_eval_cache_hits,
            n_terminal_cache_hits=self.n_terminal_cache_hits,
            n_waves=self.n_waves,
            n_wave_leaves=self.n_wave_leaves,
            seconds_selection=self.seconds_selection,
            seconds_evaluation=self.seconds_evaluation,
            seconds_terminal=self.seconds_terminal,
            n_exact_evaluations=self.n_exact_evaluations,
            n_surrogate_evaluations=self.n_surrogate_evaluations,
            seconds_surrogate=self.seconds_surrogate,
            surrogate_spearman=surrogate_spearman,
        )

    def _surrogate_fidelity(self) -> float | None:
        """JSON-safe Spearman of the observed (surrogate, exact) pairs."""
        if self.surrogate is None or len(self._calibration.pairs) < 2:
            return None
        fidelity = self._calibration.fidelity()
        if fidelity != fidelity:  # NaN: degenerate rank variance
            return None
        return float(fidelity)


def principal_variation(root: Node, max_depth: int = 10_000) -> list[int]:
    """The most-visited action sequence from *root* (diagnostics helper).

    Follows :meth:`Node.most_visited_index` until an unexpanded or terminal
    node; the committed path of a finished search is exactly this sequence.
    """
    actions: list[int] = []
    node = root
    while node.expanded and not node.terminal and len(actions) < max_depth:
        if node.visit.sum() == 0:
            break
        idx = node.most_visited_index()
        actions.append(int(node.actions[idx]))
        child = node.children.get(int(node.actions[idx]))
        if child is None:
            break
        node = child
    return actions
