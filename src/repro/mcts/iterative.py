"""AlphaZero-style iterative MCTS↔RL training — the loop the paper avoids.

Sec. I-B recounts Silver et al.'s scheme: MCTS generates training samples,
the network trains on them, the improved network guides the next MCTS, and
so on.  The paper deliberately runs MCTS **once**, after A2C pre-training,
arguing the iterative loop's cost explodes with design size (every MCTS
sample requires cell placements).

This module implements the avoided loop as an *extension*, so the design
decision can be measured (see ``benchmarks/bench_ablation_iterative.py``):

- each round runs a full MCTS placement with the current network,
  recording for every committed step the state planes and the
  visit-count distribution over actions (the AlphaZero policy target);
- the terminal reward of the committed assignment becomes the value
  target z of every step;
- the network trains on cross-entropy(π_visit, p_θ) + MSE(z, v_θ).

The cost asymmetry the paper predicts is directly observable: one
iterative round costs roughly a whole MCTS placement, whereas one A2C
episode costs a single legalize-and-place call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agent.network import PolicyValueNet
from repro.agent.reward import RewardFunction
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.mcts.search import MCTSConfig, MCTSPlacer
from repro.nn.functional import masked_softmax
from repro.nn.optim import Adam, clip_gradients
from repro.utils.events import EventLog


@dataclass
class _Sample:
    planes: np.ndarray  # (3, ζ, ζ)
    mask: np.ndarray  # (ζ²,)
    pi: np.ndarray  # (ζ²,) visit distribution
    z: float  # terminal value of the episode


@dataclass
class IterativeHistory:
    """Per-round telemetry of the iterative loop."""

    wirelengths: list[float] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    terminal_evaluations: list[int] = field(default_factory=list)
    #: exact legalize-and-place calls per round — diverges from
    #: ``terminal_evaluations`` only when two-tier pruning
    #: (``MCTSConfig.exact_topk``) is active
    exact_evaluations: list[int] = field(default_factory=list)

    def best_wirelength(self) -> float:
        return min(self.wirelengths) if self.wirelengths else float("nan")


class IterativeMCTSTrainer:
    """Alternates MCTS sample generation and network updates."""

    def __init__(
        self,
        env: MacroGroupPlacementEnv,
        network: PolicyValueNet,
        reward_fn: RewardFunction,
        mcts_config: MCTSConfig = MCTSConfig(),
        lr: float = 1e-3,
        grad_clip: float = 5.0,
        train_epochs: int = 4,
        root_noise_frac: float = 0.25,
        events: EventLog | None = None,
        budget=None,
    ) -> None:
        self.env = env
        self.network = network
        self.reward_fn = reward_fn
        self.mcts_config = mcts_config
        self.optimizer = Adam(network.parameters(), lr=lr)
        self.grad_clip = grad_clip
        self.train_epochs = train_epochs
        self.root_noise_frac = root_noise_frac
        #: runtime plumbing: event log + wall-clock budget polled between
        #: rounds (a round is the natural anytime boundary of this loop).
        self.events = events if events is not None else EventLog()
        self.budget = budget
        #: tier-1 surrogate shared across rounds when two-tier pruning is
        #: on — the anchor-centroid tables cost O(groups × grids) to build,
        #: so each round's placer reuses one instance (its per-search top-K
        #: heap and calibration still reset with every placer).
        self._surrogate = None
        if mcts_config.exact_topk is not None:
            from repro.surrogate import GroupCentroidSurrogate

            self._surrogate = GroupCentroidSurrogate(env.coarse)

    # -- sample generation ---------------------------------------------------
    def _collect_round(self, seed: int) -> tuple[list[_Sample], float, "MCTSPlacer"]:
        """One MCTS placement; returns samples, wirelength, the placer."""
        from dataclasses import replace

        config = replace(
            self.mcts_config,
            seed=seed,
            root_noise_frac=self.root_noise_frac,
        )
        placer = MCTSPlacer(
            self.env, self.network, self.reward_fn, config,
            surrogate=self._surrogate,
        )

        # Re-run the search step by step, capturing visit distributions.
        from repro.agent.state import StateBuilder

        samples: list[_Sample] = []
        n_steps = self.env.n_steps
        from repro.mcts.node import Node

        root = Node(depth=0)
        builder = StateBuilder(self.env.coarse)
        if n_steps:
            placer._expand(root, builder, [])
            placer._apply_root_noise(root)
        committed: list[int] = []
        committed_path: list[tuple[Node, int]] = []
        current = root
        for _step in range(n_steps):
            if not current.expanded:
                b = StateBuilder(self.env.coarse)
                for a in committed:
                    b.apply(a)
                placer._expand(current, b, list(committed))
            for _ in range(config.explorations):
                placer._explore(root, committed, committed_path, current)

            # Record the state + visit distribution at this decision point.
            state_builder = StateBuilder(self.env.coarse)
            for a in committed:
                state_builder.apply(a)
            state = state_builder.observe()
            pi = np.zeros(self.env.n_actions)
            total_visits = current.visit.sum()
            if total_visits > 0:
                pi[current.actions] = current.visit / total_visits
            else:
                pi[current.actions] = 1.0 / len(current.actions)
            samples.append(
                _Sample(
                    planes=self.network.pack_planes(
                        state.s_p, state.s_a, state.t, state.total_steps
                    )[0],
                    mask=state.action_mask.copy(),
                    pi=pi,
                    z=0.0,  # filled after the terminal evaluation
                )
            )

            idx = current.most_visited_index()
            committed_path.append((current, idx))
            committed.append(int(current.actions[idx]))
            current = current.child_for(idx)

        wirelength = self.env.evaluate_assignment(committed)
        z = float(self.reward_fn(wirelength))
        for s in samples:
            s.z = z
        return samples, wirelength, placer

    # -- network update ---------------------------------------------------------
    def _train_on(self, samples: list[_Sample]) -> float:
        if not samples:
            return 0.0
        net = self.network
        net.train(True)
        x = np.stack([s.planes for s in samples])
        masks = np.stack([s.mask for s in samples])
        pis = np.stack([s.pi for s in samples])
        zs = np.array([s.z for s in samples])
        b = len(samples)
        loss = 0.0
        for _ in range(self.train_epochs):
            logits, values = net.forward(x)
            probs = masked_softmax(logits, masks, axis=1)
            # Cross-entropy to the visit distribution; same (p − π) gradient
            # shape as the A2C case.
            dlogits = (probs - pis) / b
            dvalues = 2.0 * (values - zs) / b
            safe = np.clip(probs, 1e-12, None)
            policy_loss = float(-(pis * np.log(safe)).sum(axis=1).mean())
            value_loss = float(((values - zs) ** 2).mean())
            loss = policy_loss + value_loss
            net.zero_grad()
            net.backward(dlogits, dvalues)
            clip_gradients(net.parameters(), self.grad_clip)
            self.optimizer.step()
        return loss

    # -- main loop -----------------------------------------------------------------
    def train(self, n_rounds: int) -> IterativeHistory:
        """Run *n_rounds* of generate-and-train; returns the telemetry.

        A wall-clock ``budget`` ends the loop between rounds with the
        anytime best-so-far history.
        """
        history = IterativeHistory()
        for round_idx in range(n_rounds):
            if self.budget is not None and self.budget.exhausted():
                self.events.emit(
                    "budget_exhausted",
                    stage="iterative",
                    round=round_idx,
                    elapsed=round(self.budget.elapsed(), 3),
                )
                break
            samples, wirelength, placer = self._collect_round(seed=round_idx)
            loss = self._train_on(samples)
            history.wirelengths.append(wirelength)
            history.rewards.append(float(self.reward_fn(wirelength)))
            history.losses.append(loss)
            history.terminal_evaluations.append(placer.n_terminal_evaluations)
            history.exact_evaluations.append(placer.n_exact_evaluations)
            self.events.emit(
                "round_completed",
                stage="iterative",
                round=round_idx,
                wirelength=wirelength,
            )
        return history
