"""Search-tree nodes and edge statistics (Sec. IV-A).

Each node corresponds to a partial placement (depth t ⇔ t macro groups
placed).  Edge statistics live on the parent, vectorized over its valid
actions:

- ``N(s_p, s_q)`` — traversal count,
- ``P(s_p, s_q)`` — prior from π_θ,
- ``W(s_p, s_q)`` — accumulated value,
- ``Q(s_p, s_q)`` — mean value W/N (Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Node:
    """One partial-placement state in the search tree."""

    depth: int
    #: flat anchor indices that are legal from this state
    actions: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: prior probabilities over :attr:`actions` (π_θ)
    prior: np.ndarray = field(default_factory=lambda: np.zeros(0))
    visit: np.ndarray = field(default_factory=lambda: np.zeros(0))
    total_value: np.ndarray = field(default_factory=lambda: np.zeros(0))
    children: dict[int, "Node"] = field(default_factory=dict)
    expanded: bool = False
    terminal: bool = False
    #: cached true evaluation for terminal nodes
    terminal_value: float | None = None

    def q_values(self) -> np.ndarray:
        """Mean edge values; unvisited edges read as 0 (paper's init)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            q = np.where(self.visit > 0, self.total_value / np.maximum(self.visit, 1), 0.0)
        return q

    def puct_scores(self, c: float) -> np.ndarray:
        """Q + U with U per Eq. 11 (PUCT)."""
        sqrt_total = np.sqrt(max(self.visit.sum(), 1e-12))
        u = c * self.prior * sqrt_total / (1.0 + self.visit)
        return self.q_values() + u

    def select_child_index(self, c: float) -> int:
        """argmax over Q+U (Eq. 10); deterministic first-max tie-break."""
        return int(np.argmax(self.puct_scores(c)))

    def child_for(self, action_index: int) -> "Node":
        """Child node reached by :attr:`actions`[action_index] (created lazily)."""
        action = int(self.actions[action_index])
        child = self.children.get(action)
        if child is None:
            child = Node(depth=self.depth + 1)
            self.children[action] = child
        return child

    def record(self, action_index: int, value: float) -> None:
        """Eq. 12 update for one traversed edge."""
        self.visit[action_index] += 1.0
        self.total_value[action_index] += value

    def apply_virtual_loss(self, action_index: int, amount: float) -> None:
        """Pessimistically pre-charge an in-flight traversal of one edge.

        N rises and W falls by *amount*, so concurrent selection descents
        in the same leaf batch are steered away from paths that are already
        being evaluated.  Must be paired with :meth:`revert_virtual_loss`
        before the real :meth:`record` for the traversal.
        """
        self.visit[action_index] += amount
        self.total_value[action_index] -= amount

    def revert_virtual_loss(self, action_index: int, amount: float) -> None:
        """Undo :meth:`apply_virtual_loss` once the evaluation is in hand."""
        self.visit[action_index] -= amount
        self.total_value[action_index] += amount

    def most_visited_index(self) -> int:
        """Commit rule after γ explorations: the most-traversed edge
        (Q breaks ties)."""
        n = self.visit
        best = np.flatnonzero(n == n.max())
        if len(best) == 1:
            return int(best[0])
        q = self.q_values()
        return int(best[np.argmax(q[best])])
