"""MCTS placement optimization guided by the pre-trained agent (Sec. IV)."""

from repro.mcts.search import (
    MCTSConfig,
    MCTSPlacer,
    SearchResult,
    principal_variation,
)
from repro.mcts.node import Node

__all__ = [
    "MCTSConfig",
    "MCTSPlacer",
    "Node",
    "SearchResult",
    "principal_variation",
]
