"""Independent result verification.

Two consumers: the flow/service re-checking a just-produced placement
(:func:`verify_placement`, gated by ``PlacerConfig.verify_results``),
and ``repro doctor`` auditing a run directory offline
(:func:`doctor_run_dir`).  Everything here re-derives properties through
code paths the optimizer does not share — see ``placement.py``.
"""

from repro.verify.doctor import doctor_run_dir
from repro.verify.placement import (
    CheckResult,
    VerificationReport,
    verify_placement,
)

__all__ = [
    "CheckResult",
    "VerificationReport",
    "doctor_run_dir",
    "verify_placement",
]
