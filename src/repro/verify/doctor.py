"""Offline run-dir validation — the engine behind ``repro doctor``.

A run dir is a durability contract: everything needed to resume, audit,
or warm-start from a run.  ``doctor`` re-checks that contract after the
fact, with nothing but the directory (plus, optionally, the design to
re-verify the final placement against):

- manifest present and parseable;
- every completed stage's artifacts on disk;
- every recorded sha256 checksum matching its file's bytes;
- JSONL journals (events, terminal cache) parseable modulo one torn
  tail line;
- the final placement passing the independent verifier
  (:mod:`repro.verify.placement`) against the recorded HPWL.

Each check yields a :class:`~repro.verify.placement.CheckResult`; the
CLI prints the report and exits non-zero when any check fails.
"""

from __future__ import annotations

import json
import os

from repro.runtime.checkpoint import MANIFEST, RunDir
from repro.runtime.integrity import CHECKSUMS_KEY, STAGE_ARTIFACTS, sha256_file
from repro.utils.events import read_jsonl
from repro.verify.placement import CheckResult, VerificationReport, verify_placement

#: journals validated line-by-line (a single torn tail line is the
#: normal signature of a kill mid-append and does not fail the check)
JOURNALS = ("events.jsonl", "terminal_cache.jsonl")


def _count_raw_lines(path: str) -> int:
    with open(path, errors="replace") as f:
        return sum(1 for line in f if line.strip())


def _check_manifest(run_dir: str) -> tuple[CheckResult, dict | None]:
    path = os.path.join(run_dir, MANIFEST)
    if not os.path.exists(path):
        return CheckResult("manifest", False, {"error": "manifest.json missing"}), None
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (json.JSONDecodeError, OSError) as exc:
        return CheckResult("manifest", False, {"error": str(exc)}), None
    if not isinstance(manifest, dict) or "stages" not in manifest:
        return CheckResult("manifest", False, {"error": "no stages table"}), None
    stages = sorted(
        s for s, e in manifest["stages"].items() if e.get("completed")
    )
    return CheckResult("manifest", True, {"completed_stages": stages}), manifest


def _check_stage_artifacts(run_dir: str, manifest: dict) -> CheckResult:
    missing = []
    for stage, entry in manifest.get("stages", {}).items():
        if not entry.get("completed"):
            continue
        for name in STAGE_ARTIFACTS.get(stage, ()):
            if not os.path.exists(os.path.join(run_dir, name)):
                missing.append(f"{stage}:{name}")
    return CheckResult(
        "stage_artifacts", not missing,
        {"missing": missing} if missing else {},
    )


def _check_checksums(run_dir: str, manifest: dict) -> CheckResult:
    recorded = manifest.get(CHECKSUMS_KEY, {})
    mismatched = []
    missing = []
    for name, expected in sorted(recorded.items()):
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            missing.append(name)
        elif sha256_file(path) != expected:
            mismatched.append(name)
    ok = not mismatched and not missing
    detail: dict = {"n_recorded": len(recorded)}
    if mismatched:
        detail["mismatched"] = mismatched
    if missing:
        detail["missing"] = missing
    return CheckResult("checksums", ok, detail)


def _check_journal(run_dir: str, name: str) -> CheckResult:
    path = os.path.join(run_dir, name)
    if not os.path.exists(path):
        return CheckResult(f"journal:{name}", True, {"skipped": "absent"})
    try:
        records = read_jsonl(path)
        raw = _count_raw_lines(path)
    except OSError as exc:
        return CheckResult(f"journal:{name}", False, {"error": str(exc)})
    torn = raw - len(records)
    return CheckResult(
        f"journal:{name}", torn <= 1,
        {"records": len(records), "torn_lines": torn},
    )


def _check_final_placement(run_dir: str, manifest: dict, design, zeta) -> CheckResult:
    if design is None:
        return CheckResult(
            "final_placement", True,
            {"skipped": "no design source given (pass --circuit/--aux)"},
        )
    if not manifest.get("stages", {}).get("final", {}).get("completed"):
        return CheckResult(
            "final_placement", True, {"skipped": "final stage not completed"}
        )
    rd = RunDir(run_dir)
    payload = rd.load_json("final.json")
    if payload is None:
        return CheckResult("final_placement", False, {"error": "final.json missing"})
    try:
        rd.load_positions("final_positions", design)
    except Exception as exc:
        return CheckResult("final_placement", False, {"error": str(exc)})
    plan = None
    if zeta is not None:
        from repro.grid.plan import GridPlan

        plan = GridPlan(design.region, zeta=zeta)
    report = verify_placement(design, plan=plan, reported_hpwl=payload["hpwl"])
    detail = report.to_json()["checks"]
    return CheckResult("final_placement", report.ok, detail)


def doctor_run_dir(run_dir: str, design=None, zeta: int | None = None) -> VerificationReport:
    """Validate *run_dir* offline; returns a report of every check.

    *design* (optional) enables re-verifying the final placement; *zeta*
    additionally enables its grid-capacity check.
    """
    report = VerificationReport()
    if not os.path.isdir(run_dir):
        report.checks.append(
            CheckResult("run_dir", False, {"error": f"not a directory: {run_dir}"})
        )
        return report
    manifest_check, manifest = _check_manifest(run_dir)
    report.checks.append(manifest_check)
    if manifest is None:
        return report
    report.checks.append(_check_stage_artifacts(run_dir, manifest))
    report.checks.append(_check_checksums(run_dir, manifest))
    for name in JOURNALS:
        report.checks.append(_check_journal(run_dir, name))
    report.checks.append(_check_final_placement(run_dir, manifest, design, zeta))
    return report
