"""Independent placement verification.

The flow's own legality comes from the legalizer that *produced* the
placement — trusting it to check itself is circular.  This module
re-derives every property a returned placement claims, through code
paths the optimization loop never touches:

- **macro overlaps** — exact pairwise rectangle intersection over the
  object model (the legalizer reasons in sequence-pair / grid space);
- **bounds** — every movable shape inside the placement region;
- **grid capacity** — rasterized macro area per ζ×ζ bin must not exceed
  the bin (a legal, overlap-free, in-bounds placement cannot);
- **HPWL** — recomputed with the O(pins) object-model loop
  (:func:`repro.netlist.hpwl.hpwl`), not the ``reduceat``-vectorized
  :class:`FlatNetlist` the placers use, and compared to the reported
  number within float-summation tolerance.

The service runs this at job completion (``verify_results``); ``repro
doctor`` runs it offline on a run dir.  A failed report raises nothing
by itself — callers decide (the flow raises :class:`VerificationError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.hpwl import hpwl

#: relative tolerance for the HPWL recomputation (loop vs vectorized
#: summation order differ in the last float bits)
HPWL_RTOL = 1e-9
#: overlap area below this fraction of the smaller rectangle is treated
#: as a shared edge (legalizers pack macros flush against each other)
OVERLAP_RTOL = 1e-7
#: bounds slack as a fraction of the region diagonal
BOUNDS_RTOL = 1e-9
#: per-bin occupancy slack (rasterization float edges)
CAPACITY_TOL = 1e-6


@dataclass
class CheckResult:
    """Outcome of one verification check."""

    name: str
    ok: bool
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.name}: {mark}" + (f" ({pairs})" if pairs else "")


@dataclass
class VerificationReport:
    """All checks run against one placement."""

    checks: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failed(self) -> list[str]:
        return [c.name for c in self.checks if not c.ok]

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "checks": {
                c.name: {"ok": c.ok, **c.detail} for c in self.checks
            },
        }

    def summary(self) -> str:
        return "; ".join(str(c) for c in self.checks)


def _check_macro_overlaps(netlist, tol_rel: float) -> CheckResult:
    """Pairwise rectangle intersection over all macro pairs involving at
    least one movable macro (preplaced-vs-preplaced overlap is input
    data, not a flow failure)."""
    movable = netlist.movable_macros
    fixed = netlist.preplaced_macros
    macros = movable + fixed
    n_mov = len(movable)
    worst = 0.0
    worst_pair = None
    n_overlaps = 0
    if n_mov:
        x = np.array([m.x for m in macros])
        y = np.array([m.y for m in macros])
        w = np.array([m.width for m in macros])
        h = np.array([m.height for m in macros])
        area = w * h
        for i in range(n_mov):
            # each movable against every later macro (movable or fixed)
            ow = np.minimum(x[i] + w[i], x[i + 1:] + w[i + 1:]) - np.maximum(
                x[i], x[i + 1:]
            )
            oh = np.minimum(y[i] + h[i], y[i + 1:] + h[i + 1:]) - np.maximum(
                y[i], y[i + 1:]
            )
            overlap = np.maximum(ow, 0.0) * np.maximum(oh, 0.0)
            limit = tol_rel * np.minimum(area[i], area[i + 1:])
            bad = overlap > limit
            if bad.any():
                n_overlaps += int(bad.sum())
                idxs = np.nonzero(bad)[0]
                j = int(idxs[np.argmax(overlap[idxs])])
                if overlap[j] > worst:
                    worst = float(overlap[j])
                    worst_pair = (macros[i].name, macros[i + 1 + j].name)
    detail = {"n_macros": len(macros), "n_overlaps": n_overlaps}
    if worst_pair is not None:
        detail["worst_pair"] = list(worst_pair)
        detail["worst_area"] = worst
    return CheckResult("macro_overlap", n_overlaps == 0, detail)


def _check_bounds(netlist, region, tol: float) -> CheckResult:
    """Every movable shape fully inside the placement region (fixed
    nodes — pads, preplaced macros — are inputs and may sit outside)."""
    violations = []
    n_checked = 0
    for node in netlist:
        if node.fixed or node.kind.value == "pad":
            continue
        n_checked += 1
        if not region.contains(node, tol=tol):
            violations.append(node.name)
    detail = {"n_checked": n_checked, "n_out_of_bounds": len(violations)}
    if violations:
        detail["first"] = violations[:5]
    return CheckResult("in_bounds", not violations, detail)


def _check_grid_capacity(netlist, plan, tol: float) -> CheckResult:
    """Rasterized macro area per grid bin must fit in the bin."""
    occ = plan.occupancy(netlist.macros)
    worst = float(occ.max()) if occ.size else 0.0
    over = int((occ > 1.0 + tol).sum())
    return CheckResult(
        "grid_capacity",
        over == 0,
        {"zeta": plan.zeta, "worst_occupancy": round(worst, 6),
         "n_over_capacity": over},
    )


def _check_hpwl(netlist, reported: float, rtol: float) -> CheckResult:
    recomputed = hpwl(netlist)
    scale = max(abs(reported), abs(recomputed), 1.0)
    err = abs(recomputed - reported) / scale
    return CheckResult(
        "hpwl_recompute",
        err <= rtol,
        {"reported": reported, "recomputed": recomputed,
         "rel_err": float(err)},
    )


def verify_placement(
    design,
    plan=None,
    reported_hpwl: float | None = None,
    *,
    overlap_rtol: float = OVERLAP_RTOL,
    bounds_rtol: float = BOUNDS_RTOL,
    capacity_tol: float = CAPACITY_TOL,
    hpwl_rtol: float = HPWL_RTOL,
) -> VerificationReport:
    """Run every independent check against *design*'s current placement.

    *plan* (a :class:`~repro.grid.plan.GridPlan`) enables the
    grid-capacity check; *reported_hpwl* enables the HPWL cross-check.
    Checks that lack their inputs are skipped, not failed.
    """
    nl = design.netlist
    region = design.region
    bounds_tol = bounds_rtol * float(np.hypot(region.width, region.height))
    report = VerificationReport()
    report.checks.append(_check_macro_overlaps(nl, overlap_rtol))
    report.checks.append(_check_bounds(nl, region, bounds_tol))
    if plan is not None:
        report.checks.append(_check_grid_capacity(nl, plan, capacity_tol))
    if reported_hpwl is not None:
        report.checks.append(_check_hpwl(nl, reported_hpwl, hpwl_rtol))
    return report
