"""Statistics helpers for experiment curves and comparison tables."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from repro.utils.rng import ensure_rng


def moving_average(values: list[float] | np.ndarray, window: int) -> np.ndarray:
    """Centered-start moving average (first ``window-1`` entries use the
    partial prefix, so the output has the same length as the input)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return values
    cumsum = np.cumsum(values)
    out = np.empty_like(values)
    for i in range(len(values)):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


@dataclass(frozen=True)
class BootstrapCI:
    """A mean estimate with a percentile bootstrap interval."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_mean_ci(
    values: list[float] | np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: int | np.random.Generator | None = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI of the mean of *values*."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    g = ensure_rng(rng)
    idx = g.integers(0, len(values), size=(n_resamples, len(values)))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        mean=float(values.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def converged_at(
    rewards: list[float] | np.ndarray,
    window: int = 20,
    tolerance: float = 0.05,
) -> int | None:
    """First episode index after which the smoothed reward stays within
    ``tolerance`` (relative) of its final smoothed value.

    Returns ``None`` when the curve never settles — the Fig. 4 "does not
    converge" verdict, made precise.
    """
    rewards = np.asarray(rewards, dtype=float)
    if len(rewards) < 2 * window:
        return None
    smooth = moving_average(rewards, window)
    final = smooth[-1]
    band = max(abs(final) * tolerance, 1e-12)
    inside = np.abs(smooth - final) <= band
    # Last index where we were OUTSIDE the band; convergence right after.
    outside = np.flatnonzero(~inside)
    if len(outside) == 0:
        return 0
    start = int(outside[-1]) + 1
    return start if start < len(rewards) else None


def normalized_ratios(
    values: dict[str, dict[str, float]], reference: str
) -> dict[str, list[float]]:
    """Per-circuit ratio lists against *reference* (the Nor. row's samples).

    ``values`` maps circuit -> method -> metric.  Circuits missing either
    the method or the reference are skipped for that method.
    """
    out: dict[str, list[float]] = {}
    for _circuit, methods in values.items():
        ref = methods.get(reference)
        if ref is None or ref <= 0:
            continue
        for method, v in methods.items():
            out.setdefault(method, []).append(v / ref)
    return out


def rank_correlation(x: list[float], y: list[float]) -> float:
    """Spearman rank correlation (the Table IV macros-vs-runtime claim)."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    return float(sstats.spearmanr(x, y).statistic)
