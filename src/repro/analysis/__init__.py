"""Experiment analysis: smoothing, bootstrap intervals, convergence tests.

The paper reports single-run curves and normalized means; this package
provides the statistics the benchmark harness and examples use to make
the miniature-scale reproductions honest — confidence intervals on the
normalized ratios, convergence detection on reward curves, and rank
correlation for the Table IV runtime claim.
"""

from repro.analysis.stats import (
    bootstrap_mean_ci,
    converged_at,
    moving_average,
    normalized_ratios,
    rank_correlation,
)

__all__ = [
    "bootstrap_mean_ci",
    "converged_at",
    "moving_average",
    "normalized_ratios",
    "rank_correlation",
]
