"""Random macro placement — the floor every serious placer must beat."""

from __future__ import annotations

from repro.baselines.common import (
    BaselineResult,
    MacroEvalModel,
    finalize_design,
    prototype_place,
    timer,
)
from repro.netlist.model import Design
from repro.utils.rng import ensure_rng


class RandomPlacer:
    """Uniformly random macro centers inside the region, then the common
    legalize + cell-place exit (which repairs any overlap)."""

    def __init__(
        self,
        cell_place_iters: int = 3,
        skip_prototype: bool = False,
        seed: int = 0,
    ) -> None:
        self.cell_place_iters = cell_place_iters
        self.skip_prototype = skip_prototype
        self.seed = seed

    def place(self, design: Design) -> BaselineResult:
        rng = ensure_rng(self.seed)
        with timer() as t:
            if not self.skip_prototype:
                prototype_place(design)  # cells still need a prototype
            model = MacroEvalModel(design)
            region = design.region
            if model.n_macros:
                half_w = model.widths / 2.0
                half_h = model.heights / 2.0
                cx = rng.uniform(region.x + half_w, region.x_max - half_w)
                cy = rng.uniform(region.y + half_h, region.y_max - half_h)
                model.write_centers(cx, cy)
            hpwl = finalize_design(design, self.cell_place_iters)
        return BaselineResult("random", hpwl, t.seconds, 1)
