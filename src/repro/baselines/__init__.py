"""Comparator placers (the other columns of Tables II and III).

Every baseline implements ``place(design) -> BaselineResult``, mutating the
design's node positions and reporting the final measured HPWL via the same
cell-placement pipeline the main flow uses — so comparisons differ only in
*macro placement policy*, exactly as in the paper's tables.

| Module            | Stands in for | Mechanism |
|-------------------|---------------|-----------|
| ``se_placer``     | SE-based Macro Placer [26] | simulated evolution (ripup badly-placed macros, reallocate), hierarchy-aware goodness |
| ``sa_placer``     | classic annealing placers [6–9, 20, 36] | SA over macro positions |
| ``ct_placer``     | CT [27] | per-macro RL, no grouping, intuitive −W reward, no MCTS |
| ``maskplace``     | MaskPlace [19] | wiremask incremental-HPWL estimate; greedy and multi-rollout modes |
| ``replace_like``  | RePlAce [10] | analytical GP + SA macro refinement |
| ``random_placer`` | floor reference | uniformly random legal assignment |
"""

from repro.baselines.common import BaselineResult, MacroEvalModel, finalize_design
from repro.baselines.random_placer import RandomPlacer
from repro.baselines.sa_placer import SAPlacer
from repro.baselines.se_placer import SEPlacer
from repro.baselines.maskplace import WiremaskPlacer
from repro.baselines.ct_placer import CTStylePlacer
from repro.baselines.replace_like import RePlAceLikePlacer


def __getattr__(name: str):
    # Imported lazily: repro.floorplan.annealer itself depends on
    # repro.baselines.common, so an eager import here would be circular
    # when repro.floorplan is imported first.
    if name == "BTreeFloorplanPlacer":
        from repro.floorplan.annealer import BTreeFloorplanPlacer

        return BTreeFloorplanPlacer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BTreeFloorplanPlacer",
    "BaselineResult",
    "CTStylePlacer",
    "MacroEvalModel",
    "RandomPlacer",
    "RePlAceLikePlacer",
    "SAPlacer",
    "SEPlacer",
    "WiremaskPlacer",
    "finalize_design",
]
