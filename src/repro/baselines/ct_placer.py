"""CT-style placer — the CT [27] (circuit-training) column.

Captures the two structural differences the paper highlights between CT
and its own approach:

1. the agent places **individual macros**, not macro groups — episodes are
   long and the search space large (Sec. I-B's complexity argument);
2. it relies **solely on RL** — the result is the trained policy's greedy
   episode, no MCTS post-optimization;
3. the reward is the **intuitive −W** (scaled by the mean random
   wirelength so gradients stay numerically sane) — the variant the
   paper's Fig. 4 shows converging poorly.

Everything else (grid, state encoding, legalize-and-measure terminal)
reuses the shared substrate so the comparison isolates exactly those
policy-level differences, as the paper's Table III discussion does.
"""

from __future__ import annotations

import numpy as np

from repro.agent.actorcritic import ActorCriticTrainer
from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import NegativeWirelength
from repro.baselines.common import BaselineResult, prototype_place, timer
from repro.coarsen.cluster import cluster_cells, singleton_groups
from repro.coarsen.coarse import CoarseNetlist, _project_nets
from repro.coarsen.groups import GroupKind
from repro.coarsen.scores import PhiParams
from repro.env.placement_env import MacroGroupPlacementEnv
from repro.grid.plan import GridPlan
from repro.netlist.model import Design


def singleton_macro_coarsening(
    design: Design, plan: GridPlan, phi: PhiParams = PhiParams()
) -> CoarseNetlist:
    """A coarse netlist whose "macro groups" are individual macros.

    Cells are still clustered (CT clusters standard cells too); only the
    macro side skips grouping, which is the property under comparison.
    """
    nl = design.netlist
    macro_groups = singleton_groups(nl.movable_macros, GroupKind.MACRO)
    macro_groups.sort(key=lambda g: -g.area)
    cell_groups = cluster_cells(nl, plan.cell_area, phi)
    fixed_groups = singleton_groups(
        list(nl.preplaced_macros) + list(nl.pads), GroupKind.FIXED
    )
    coarse = CoarseNetlist(
        design=design,
        plan=plan,
        macro_groups=macro_groups,
        cell_groups=cell_groups,
        fixed_groups=fixed_groups,
    )
    index_of_node: dict[str, int] = {}
    for i, g in enumerate(coarse.all_groups):
        for name in g.members:
            index_of_node[name] = i
    coarse.coarse_nets = _project_nets(nl.nets, index_of_node)
    return coarse


class CTStylePlacer:
    """Per-macro RL placement with the intuitive −W reward, no MCTS."""

    def __init__(
        self,
        zeta: int = 8,
        network: NetworkConfig | None = None,
        episodes: int = 120,
        update_every: int = 30,
        learning_rate: float = 1e-3,
        cell_place_iters: int = 3,
        skip_prototype: bool = False,
        seed: int = 0,
    ) -> None:
        self.zeta = zeta
        self.network_config = network or NetworkConfig(zeta=zeta)
        self.episodes = episodes
        self.update_every = update_every
        self.learning_rate = learning_rate
        self.cell_place_iters = cell_place_iters
        self.skip_prototype = skip_prototype
        self.seed = seed

    def place(self, design: Design) -> BaselineResult:
        with timer() as t:
            if not self.skip_prototype:
                prototype_place(design)
            plan = GridPlan(design.region, zeta=self.zeta)
            coarse = singleton_macro_coarsening(design, plan)
            env = MacroGroupPlacementEnv(
                coarse, cell_place_iters=self.cell_place_iters
            )
            # Scale −W so one unit of reward ≈ the random-play wirelength;
            # without this the raw magnitudes blow up the value head.
            probe = [
                env.play_random_episode(self.seed + i).wirelength for i in range(3)
            ]
            reward_fn = NegativeWirelength(scale=1.0 / max(np.mean(probe), 1e-9))
            network = PolicyValueNet(self.network_config)
            trainer = ActorCriticTrainer(
                env,
                network,
                reward_fn,
                lr=self.learning_rate,
                update_every=self.update_every,
                rng=self.seed,
            )
            trainer.train(self.episodes)

            def policy(state):
                probs, _ = network.evaluate(
                    state.s_p, state.s_a, state.t, state.total_steps
                )
                return probs

            record = env.play_greedy_episode(policy)
        return BaselineResult("ct", record.wirelength, t.seconds, self.episodes)
