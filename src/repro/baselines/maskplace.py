"""Wiremask placer — the MaskPlace [19] column.

MaskPlace's core contribution is the *wiremask*: before placing each macro,
compute for every candidate grid position the exact increase in HPWL that
position would cause, given the bounding boxes of all already-placed pins.
Macros are placed sequentially (largest first) on that estimate, with a
position mask vetoing overlaps.

Two modes reproduce its behaviour envelope:

- ``rollouts=1`` — pure greedy wiremask descent;
- ``rollouts>1`` — stochastic rollouts sampling among the best candidates
  (softmax over −Δ at temperature τ), keeping the best rollout by the
  macro-level evaluation model.  This stands in for MaskPlace's RL policy,
  whose learned behaviour is precisely "sample low-wiremask positions and
  keep what pans out" (see DESIGN.md §2 for the substitution argument).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    MacroEvalModel,
    finalize_design,
    prototype_place,
    timer,
)
from repro.netlist.model import Design
from repro.utils.rng import ensure_rng


class WiremaskPlacer:
    """Sequential wiremask-guided macro placement."""

    def __init__(
        self,
        bins: int = 16,
        rollouts: int = 8,
        temperature: float = 0.02,
        cell_place_iters: int = 3,
        skip_prototype: bool = False,
        seed: int = 0,
    ) -> None:
        self.bins = bins
        self.rollouts = rollouts
        self.temperature = temperature
        self.cell_place_iters = cell_place_iters
        self.skip_prototype = skip_prototype
        self.seed = seed

    # -- wiremask ------------------------------------------------------------
    def _net_tables(self, model: MacroEvalModel) -> tuple[list[list[int]], dict]:
        """Per-macro net lists and per-net initial bbox over fixed pins."""
        flat = model.flat
        macro_of_node = {int(i): k for k, i in enumerate(model.macro_idx)}
        nets_of_macro: list[list[int]] = [[] for _ in range(model.n_macros)]
        bbox: dict[int, list[float]] = {}
        for net_idx in range(flat.n_nets):
            lo, hi = int(flat.net_ptr[net_idx]), int(flat.net_ptr[net_idx + 1])
            nodes = flat.pin_node[lo:hi]
            box = None
            touched: set[int] = set()
            for p in range(lo, hi):
                v = int(flat.pin_node[p])
                if v in macro_of_node:
                    touched.add(macro_of_node[v])
                    continue
                px = float(flat.cx[v] + flat.pin_dx[p])
                py = float(flat.cy[v] + flat.pin_dy[p])
                if box is None:
                    box = [px, py, px, py]
                else:
                    box[0] = min(box[0], px)
                    box[1] = min(box[1], py)
                    box[2] = max(box[2], px)
                    box[3] = max(box[3], py)
            del nodes
            if touched and box is not None:
                bbox[net_idx] = box
                for k in touched:
                    nets_of_macro[k].append(net_idx)
            elif touched:
                # Net among unplaced macros only: bbox forms as they place.
                bbox[net_idx] = []  # sentinel: empty until first placement
                for k in touched:
                    nets_of_macro[k].append(net_idx)
        return nets_of_macro, bbox

    @staticmethod
    def _delta(box: list[float], px: float, py: float) -> float:
        """HPWL increase of extending *box* to include pin (px, py)."""
        if not box:
            return 0.0
        dx = max(0.0, box[0] - px) + max(0.0, px - box[2])
        dy = max(0.0, box[1] - py) + max(0.0, py - box[3])
        return dx + dy

    @staticmethod
    def _extend(box: list[float], px: float, py: float) -> None:
        if not box:
            box.extend([px, py, px, py])
            return
        box[0] = min(box[0], px)
        box[1] = min(box[1], py)
        box[2] = max(box[2], px)
        box[3] = max(box[3], py)

    # -- one rollout ------------------------------------------------------------
    def _rollout(
        self,
        model: MacroEvalModel,
        order: list[int],
        greedy: bool,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        region = model.design.region
        nets_of_macro, init_bbox = self._net_tables(model)
        bbox = {k: list(v) for k, v in init_bbox.items()}
        nb = self.bins
        gx = np.linspace(region.x, region.x_max, nb + 2)[1:-1]
        gy = np.linspace(region.y, region.y_max, nb + 2)[1:-1]
        cx, cy = model.current_centers()
        placed_rects: list[tuple[float, float, float, float]] = [
            (m.x, m.y, m.width, m.height)
            for m in model.design.netlist.preplaced_macros
        ]
        for k in order:
            half_w, half_h = model.widths[k] / 2.0, model.heights[k] / 2.0
            deltas = np.full((nb, nb), np.inf)
            for ix, px in enumerate(gx):
                qx = min(max(px, region.x + half_w), region.x_max - half_w)
                for iy, py in enumerate(gy):
                    qy = min(max(py, region.y + half_h), region.y_max - half_h)
                    x0, y0 = qx - half_w, qy - half_h
                    collide = False
                    for rx, ry, rw, rh in placed_rects:
                        if (
                            x0 < rx + rw
                            and rx < x0 + 2 * half_w
                            and y0 < ry + rh
                            and ry < y0 + 2 * half_h
                        ):
                            collide = True
                            break
                    if collide:
                        continue
                    d = 0.0
                    for net_idx in nets_of_macro[k]:
                        d += self._delta(bbox[net_idx], qx, qy)
                    deltas[ix, iy] = d
            flat_d = deltas.ravel()
            finite = np.isfinite(flat_d)
            if not finite.any():
                # Nowhere conflict-free: keep the prototype position.
                choice_x, choice_y = cx[k], cy[k]
            else:
                if greedy:
                    best = int(np.flatnonzero(finite)[np.argmin(flat_d[finite])])
                else:
                    d = flat_d[finite]
                    z = -(d - d.min()) / max(
                        self.temperature * (d.max() - d.min() + 1e-12), 1e-12
                    )
                    p = np.exp(z)
                    p /= p.sum()
                    best = int(rng.choice(np.flatnonzero(finite), p=p))
                ix, iy = divmod(best, nb)
                choice_x = min(max(gx[ix], region.x + half_w), region.x_max - half_w)
                choice_y = min(max(gy[iy], region.y + half_h), region.y_max - half_h)
            cx[k], cy[k] = choice_x, choice_y
            placed_rects.append(
                (choice_x - half_w, choice_y - half_h, 2 * half_w, 2 * half_h)
            )
            for net_idx in nets_of_macro[k]:
                self._extend(bbox[net_idx], choice_x, choice_y)
        return cx, cy

    # -- entry point ------------------------------------------------------------
    def place(self, design: Design) -> BaselineResult:
        rng = ensure_rng(self.seed)
        with timer() as t:
            if not self.skip_prototype:
                prototype_place(design)
            model = MacroEvalModel(design)
            if model.n_macros == 0:
                return BaselineResult(
                    "maskplace",
                    finalize_design(design, self.cell_place_iters),
                    t.seconds,
                    0,
                )
            order = sorted(
                range(model.n_macros),
                key=lambda k: -(model.widths[k] * model.heights[k]),
            )
            best = None
            for r in range(max(self.rollouts, 1)):
                cx, cy = self._rollout(model, order, greedy=(r == 0), rng=rng)
                wl = model.hpwl(cx, cy)
                if best is None or wl < best[0]:
                    best = (wl, cx.copy(), cy.copy())
            model.write_centers(best[1], best[2])
            hpwl = finalize_design(design, self.cell_place_iters)
        return BaselineResult("maskplace", hpwl, t.seconds, self.rollouts)
