"""Shared machinery for the baseline placers.

:class:`MacroEvalModel` is the fast inner-loop objective every search-based
baseline (SE, SA, wiremask) optimizes: original nets evaluated with cells
*frozen at their prototype positions*, so only macro moves change the
score.  This mirrors how those placers operate in practice — macro
placement happens before detailed cell placement, against a cell
prototype.

:func:`finalize_design` is the common exit: greedy-legalize macros, run the
real cell placement, measure HPWL.  All baselines and the main flow report
through the same pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.gp.mixed_size import (
    MixedSizePlacer,
    legalize_macros_greedy,
    place_cells_with_fixed_macros,
)
from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import Design, NodeKind


@dataclass
class BaselineResult:
    """What every baseline reports."""

    name: str
    hpwl: float
    runtime: float
    iterations: int = 0


class MacroEvalModel:
    """Macro-move HPWL objective over the frozen cell prototype.

    Construction captures current node positions; :meth:`hpwl` evaluates a
    candidate macro-center matrix without touching the design.  Indices are
    over ``design.netlist.movable_macros`` order.
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        self.flat = FlatNetlist(design.netlist)
        self.macro_idx = np.array(
            [
                i
                for i, n in enumerate(design.netlist)
                if n.kind is NodeKind.MACRO and not n.fixed
            ],
            dtype=np.int64,
        )
        self.widths = self.flat.width[self.macro_idx]
        self.heights = self.flat.height[self.macro_idx]

    @property
    def n_macros(self) -> int:
        return len(self.macro_idx)

    def current_centers(self) -> tuple[np.ndarray, np.ndarray]:
        return self.flat.cx[self.macro_idx].copy(), self.flat.cy[self.macro_idx].copy()

    def hpwl(self, cx: np.ndarray, cy: np.ndarray) -> float:
        """Total HPWL with movable macro centers at (cx, cy)."""
        self.flat.cx[self.macro_idx] = cx
        self.flat.cy[self.macro_idx] = cy
        return self.flat.total_hpwl()

    def overlap_penalty(self, cx: np.ndarray, cy: np.ndarray) -> float:
        """Pairwise overlap area between macros (incl. preplaced) — the soft
        constraint search-based baselines add to the objective."""
        xs = list(cx - self.widths / 2.0)
        ys = list(cy - self.heights / 2.0)
        ws = list(self.widths)
        hs = list(self.heights)
        for m in self.design.netlist.preplaced_macros:
            xs.append(m.x)
            ys.append(m.y)
            ws.append(m.width)
            hs.append(m.height)
        total = 0.0
        n = len(xs)
        for i in range(n):
            for j in range(i + 1, n):
                w = min(xs[i] + ws[i], xs[j] + ws[j]) - max(xs[i], xs[j])
                h = min(ys[i] + hs[i], ys[j] + hs[j]) - max(ys[i], ys[j])
                if w > 0 and h > 0:
                    total += w * h
        return total

    def write_centers(self, cx: np.ndarray, cy: np.ndarray) -> None:
        """Push macro centers into the design's object model."""
        for k, idx in enumerate(self.macro_idx):
            node = self.design.netlist[self.flat.names[idx]]
            node.move_center_to(float(cx[k]), float(cy[k]))


def prototype_place(design: Design, iterations: int = 3) -> None:
    """Analytical prototype placement (cells + macros) shared by baselines."""
    MixedSizePlacer(n_iterations=iterations).place(design)


def finalize_design(design: Design, cell_place_iters: int = 3) -> float:
    """Legalize macros, place cells, return measured HPWL."""
    legalize_macros_greedy(design)
    return place_cells_with_fixed_macros(design, n_iterations=cell_place_iters)


class timer:
    """Tiny context manager exposing elapsed seconds as ``.seconds``."""

    def __enter__(self) -> "timer":
        self._t0 = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0
