"""RePlAce-like analytical placer — the RePlAce [10] column.

RePlAce is a density-driven analytical global placer that, per the paper's
related-work discussion, "employs the SA algorithm to refine macro
positions".  The stand-in composes the same two phases from this repo's
substrates:

1. a strong analytical mixed-size global placement (more spreading rounds
   and finer bins than the DREAMPlace stand-in's defaults), then
2. a short low-temperature SA refinement of macro positions, then
3. the common legalize + cell-place exit.

It is hierarchy-blind by construction — the property Table II's discussion
attributes RePlAce/DREAMPlace's losses to.
"""

from __future__ import annotations

from repro.baselines.common import BaselineResult, timer
from repro.baselines.sa_placer import SAPlacer
from repro.gp.mixed_size import MixedSizePlacer
from repro.netlist.model import Design


class RePlAceLikePlacer:
    """Analytical GP + SA macro refinement."""

    def __init__(
        self,
        gp_iterations: int = 8,
        refine_moves: int = 800,
        cell_place_iters: int = 3,
        electrostatic: bool = False,
        seed: int = 0,
    ) -> None:
        self.gp_iterations = gp_iterations
        self.refine_moves = refine_moves
        self.cell_place_iters = cell_place_iters
        self.electrostatic = electrostatic
        self.seed = seed

    def place(self, design: Design) -> BaselineResult:
        with timer() as t:
            MixedSizePlacer(
                n_iterations=self.gp_iterations,
                spreader="electrostatic" if self.electrostatic else "shift",
            ).place(design)
            refiner = SAPlacer(
                n_moves=self.refine_moves,
                t0_frac=0.01,  # low temperature: refinement, not search
                swap_prob=0.15,
                cell_place_iters=self.cell_place_iters,
                skip_prototype=True,
                seed=self.seed,
            )
            result = refiner.place(design)
        return BaselineResult(
            "replace", result.hpwl, t.seconds, self.refine_moves
        )
