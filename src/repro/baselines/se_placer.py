"""Simulated-evolution macro placer — the SE-based Macro Placer [26] column.

Simulated evolution alternates three phases over generations:

1. **Evaluation** — each macro gets a *goodness* in [0, 1]: how close it
   sits to its connectivity-optimal spot.  We use the ratio between the
   macro's best achievable star-wirelength (sitting at the median of its
   connected pins) and its current star-wirelength, blended with a
   hierarchy affinity term (distance to the centroid of same-hierarchy
   macros) — [26] is dataflow/hierarchy aware, which is exactly why the
   paper's Table II pits it against hierarchy-blind DREAMPlace.
2. **Selection** — macros with goodness below a random threshold are
   ripped up (probabilistic, so good macros occasionally move too).
3. **Allocation** — ripped macros reinsert greedily, largest first, each
   scanning a candidate lattice for the position minimizing the eval-model
   HPWL with an overlap veto against the currently standing macros.

Generations repeat; the best-seen configuration wins and goes through the
common legalize + cell-place exit.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    MacroEvalModel,
    finalize_design,
    prototype_place,
    timer,
)
from repro.netlist.model import Design
from repro.utils.rng import ensure_rng


class SEPlacer:
    """Simulated evolution over macro positions."""

    def __init__(
        self,
        generations: int = 12,
        lattice: int = 12,
        hierarchy_weight: float = 0.3,
        selection_bias: float = 0.15,
        cell_place_iters: int = 3,
        skip_prototype: bool = False,
        seed: int = 0,
    ) -> None:
        self.generations = generations
        self.lattice = lattice
        self.hierarchy_weight = hierarchy_weight
        self.selection_bias = selection_bias
        self.cell_place_iters = cell_place_iters
        self.skip_prototype = skip_prototype
        self.seed = seed

    # -- evaluation -------------------------------------------------------------
    def _star_targets(self, model: MacroEvalModel) -> tuple[np.ndarray, np.ndarray]:
        """Connectivity-optimal center per macro: median of connected pins."""
        flat = model.flat
        tx = np.empty(model.n_macros)
        ty = np.empty(model.n_macros)
        macro_set = {int(i): k for k, i in enumerate(model.macro_idx)}
        neighbor_x: list[list[float]] = [[] for _ in range(model.n_macros)]
        neighbor_y: list[list[float]] = [[] for _ in range(model.n_macros)]
        for net_idx in range(flat.n_nets):
            lo, hi = int(flat.net_ptr[net_idx]), int(flat.net_ptr[net_idx + 1])
            nodes = flat.pin_node[lo:hi]
            members = [macro_set[int(v)] for v in nodes if int(v) in macro_set]
            if not members:
                continue
            others_x = [float(flat.cx[int(v)]) for v in nodes if int(v) not in macro_set]
            others_y = [float(flat.cy[int(v)]) for v in nodes if int(v) not in macro_set]
            for k in members:
                neighbor_x[k].extend(others_x)
                neighbor_y[k].extend(others_y)
        cx, cy = model.current_centers()
        for k in range(model.n_macros):
            tx[k] = float(np.median(neighbor_x[k])) if neighbor_x[k] else cx[k]
            ty[k] = float(np.median(neighbor_y[k])) if neighbor_y[k] else cy[k]
        return tx, ty

    def _hierarchy_centroids(
        self, design: Design, model: MacroEvalModel, cx: np.ndarray, cy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Centroid of each macro's same-hierarchy-parent peer set."""
        macros = design.netlist.movable_macros
        groups: dict[str, list[int]] = {}
        for k, m in enumerate(macros):
            groups.setdefault(m.hierarchy, []).append(k)
        hx = cx.copy()
        hy = cy.copy()
        for members in groups.values():
            if len(members) >= 2:
                mx = float(np.mean(cx[members]))
                my = float(np.mean(cy[members]))
                for k in members:
                    hx[k], hy[k] = mx, my
        return hx, hy

    def _goodness(
        self,
        design: Design,
        model: MacroEvalModel,
        cx: np.ndarray,
        cy: np.ndarray,
        tx: np.ndarray,
        ty: np.ndarray,
    ) -> np.ndarray:
        diag = float(np.hypot(design.region.width, design.region.height))
        d_conn = np.hypot(cx - tx, cy - ty) / diag
        hx, hy = self._hierarchy_centroids(design, model, cx, cy)
        d_hier = np.hypot(cx - hx, cy - hy) / diag
        w = self.hierarchy_weight
        return np.clip(1.0 - ((1 - w) * d_conn + w * d_hier) * 2.0, 0.0, 1.0)

    # -- allocation --------------------------------------------------------------
    def _reallocate(
        self,
        model: MacroEvalModel,
        ripped: list[int],
        cx: np.ndarray,
        cy: np.ndarray,
    ) -> None:
        region = model.design.region
        order = sorted(ripped, key=lambda k: -(model.widths[k] * model.heights[k]))
        xs = np.linspace(0.08, 0.92, self.lattice)
        standing = [k for k in range(model.n_macros) if k not in set(ripped)]
        placed = list(standing)
        for k in order:
            best = None
            half_w, half_h = model.widths[k] / 2.0, model.heights[k] / 2.0
            for fx in xs:
                for fy in xs:
                    px = region.x + fx * region.width
                    py = region.y + fy * region.height
                    px = min(max(px, region.x + half_w), region.x_max - half_w)
                    py = min(max(py, region.y + half_h), region.y_max - half_h)
                    # Overlap veto against standing macros.
                    collide = False
                    for j in placed:
                        if (
                            abs(px - cx[j]) < half_w + model.widths[j] / 2.0
                            and abs(py - cy[j]) < half_h + model.heights[j] / 2.0
                        ):
                            collide = True
                            break
                    if collide:
                        continue
                    old = (cx[k], cy[k])
                    cx[k], cy[k] = px, py
                    wl = model.hpwl(cx, cy)
                    cx[k], cy[k] = old
                    if best is None or wl < best[0]:
                        best = (wl, px, py)
            if best is not None:
                cx[k], cy[k] = best[1], best[2]
            placed.append(k)

    # -- main loop -----------------------------------------------------------------
    def place(self, design: Design) -> BaselineResult:
        rng = ensure_rng(self.seed)
        with timer() as t:
            if not self.skip_prototype:
                prototype_place(design)
            model = MacroEvalModel(design)
            if model.n_macros == 0:
                return BaselineResult(
                    "se", finalize_design(design, self.cell_place_iters), t.seconds, 0
                )
            cx, cy = model.current_centers()
            tx, ty = self._star_targets(model)
            best_cx, best_cy = cx.copy(), cy.copy()
            best_wl = model.hpwl(cx, cy)

            for _ in range(self.generations):
                goodness = self._goodness(design, model, cx, cy, tx, ty)
                thresholds = rng.random(model.n_macros) - self.selection_bias
                ripped = [
                    k for k in range(model.n_macros) if goodness[k] < thresholds[k]
                ]
                if not ripped:
                    continue
                self._reallocate(model, ripped, cx, cy)
                wl = model.hpwl(cx, cy)
                if wl < best_wl:
                    best_wl = wl
                    best_cx, best_cy = cx.copy(), cy.copy()

            model.write_centers(best_cx, best_cy)
            hpwl = finalize_design(design, self.cell_place_iters)
        return BaselineResult("se", hpwl, t.seconds, self.generations)
