"""Simulated-annealing macro placer (the paper's first related-work
category [6–9, 20, 36], and the refinement engine RePlAce-like reuses).

Anneals movable macro centers against the :class:`MacroEvalModel`
objective ``HPWL + λ·overlap``.  Moves: random displacement (radius cools
with temperature), pairwise swap, or — with ``allow_rotation`` — a 90°
rotation (width/height exchange; an extension beyond the paper, which
keeps macro orientations fixed).  Geometric cooling; best-so-far tracking;
greedy legalization + real cell placement at the end.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    MacroEvalModel,
    finalize_design,
    prototype_place,
    timer,
)
from repro.netlist.model import Design
from repro.utils.rng import ensure_rng


class SAPlacer:
    """Classic simulated annealing over macro positions.

    Args:
        n_moves: total proposed moves.
        overlap_weight: λ — overlap area penalty relative to HPWL units.
        t0_frac / t_final_frac: initial/final temperature as a fraction of
            the initial cost (standard self-scaling schedule).
        swap_prob: probability a proposal is a swap instead of a displace.
        skip_prototype: reuse the design's current placement instead of
            running the analytical prototype first.
    """

    def __init__(
        self,
        n_moves: int = 2000,
        overlap_weight: float = 4.0,
        t0_frac: float = 0.05,
        t_final_frac: float = 1e-4,
        swap_prob: float = 0.25,
        rotate_prob: float = 0.15,
        allow_rotation: bool = False,
        cell_place_iters: int = 3,
        skip_prototype: bool = False,
        seed: int = 0,
    ) -> None:
        self.n_moves = n_moves
        self.overlap_weight = overlap_weight
        self.t0_frac = t0_frac
        self.t_final_frac = t_final_frac
        self.swap_prob = swap_prob
        self.rotate_prob = rotate_prob
        self.allow_rotation = allow_rotation
        self.cell_place_iters = cell_place_iters
        self.skip_prototype = skip_prototype
        self.seed = seed

    def _cost(self, model: MacroEvalModel, cx: np.ndarray, cy: np.ndarray) -> float:
        """HPWL inflated multiplicatively by the relative macro overlap.

        Normalizing overlap by total macro area keeps the penalty
        scale-free across designs.
        """
        wl = model.hpwl(cx, cy)
        ov = model.overlap_penalty(cx, cy)
        macro_area = float((model.widths * model.heights).sum()) or 1.0
        return wl * (1.0 + self.overlap_weight * ov / macro_area)

    def place(self, design: Design) -> BaselineResult:
        rng = ensure_rng(self.seed)
        with timer() as t:
            if not self.skip_prototype:
                prototype_place(design)
            model = MacroEvalModel(design)
            n = model.n_macros
            if n == 0:
                hpwl = finalize_design(design, self.cell_place_iters)
                return BaselineResult("sa", hpwl, t.seconds, 0)

            region = design.region
            cx, cy = model.current_centers()
            rotated = np.zeros(n, dtype=bool)
            cost = self._cost(model, cx, cy)
            best_cx, best_cy, best_cost = cx.copy(), cy.copy(), cost
            best_rot = rotated.copy()

            t0 = max(self.t0_frac * cost, 1e-9)
            t_final = max(self.t_final_frac * cost, 1e-12)
            alpha = (t_final / t0) ** (1.0 / max(self.n_moves, 1))
            temp = t0
            max_radius = 0.5 * min(region.width, region.height)

            half_w = model.widths / 2.0
            half_h = model.heights / 2.0
            lo_x, hi_x = region.x + half_w, region.x_max - half_w
            lo_y, hi_y = region.y + half_h, region.y_max - half_h

            for _ in range(self.n_moves):
                i = int(rng.integers(0, n))
                old = (cx[i], cy[i])
                swapped = None
                rotated_move = False
                if self.allow_rotation and rng.random() < self.rotate_prob:
                    rotated_move = True
                    model.widths[i], model.heights[i] = (
                        model.heights[i],
                        model.widths[i],
                    )
                    rotated[i] = ~rotated[i]
                    # Rotation changes the clamping bounds for this macro.
                    half_w[i], half_h[i] = half_h[i], half_w[i]
                    lo_x[i], hi_x[i] = region.x + half_w[i], region.x_max - half_w[i]
                    lo_y[i], hi_y[i] = region.y + half_h[i], region.y_max - half_h[i]
                elif n >= 2 and rng.random() < self.swap_prob:
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    swapped = (j, cx[j], cy[j])
                    cx[i], cx[j] = cx[j], cx[i]
                    cy[i], cy[j] = cy[j], cy[i]
                else:
                    radius = max_radius * temp / t0 + 0.02 * max_radius
                    cx[i] = cx[i] + rng.normal(0.0, radius)
                    cy[i] = cy[i] + rng.normal(0.0, radius)
                cx[i] = min(max(cx[i], lo_x[i]), max(lo_x[i], hi_x[i]))
                cy[i] = min(max(cy[i], lo_y[i]), max(lo_y[i], hi_y[i]))
                if swapped is not None:
                    j = swapped[0]
                    cx[j] = min(max(cx[j], lo_x[j]), max(lo_x[j], hi_x[j]))
                    cy[j] = min(max(cy[j], lo_y[j]), max(lo_y[j], hi_y[j]))

                new_cost = self._cost(model, cx, cy)
                accept = new_cost <= cost or rng.random() < math.exp(
                    -(new_cost - cost) / max(temp, 1e-12)
                )
                if accept:
                    cost = new_cost
                    if cost < best_cost:
                        best_cost = cost
                        best_cx, best_cy = cx.copy(), cy.copy()
                        best_rot = rotated.copy()
                else:
                    cx[i], cy[i] = old
                    if swapped is not None:
                        j, ox, oy = swapped
                        cx[j], cy[j] = ox, oy
                    if rotated_move:
                        model.widths[i], model.heights[i] = (
                            model.heights[i],
                            model.widths[i],
                        )
                        rotated[i] = ~rotated[i]
                        half_w[i], half_h[i] = half_h[i], half_w[i]
                        lo_x[i], hi_x[i] = (
                            region.x + half_w[i],
                            region.x_max - half_w[i],
                        )
                        lo_y[i], hi_y[i] = (
                            region.y + half_h[i],
                            region.y_max - half_h[i],
                        )
                temp *= alpha

            if self.allow_rotation:
                # Commit the best rotation state to the design's macros.
                for k in np.flatnonzero(best_rot):
                    name = model.flat.names[int(model.macro_idx[k])]
                    node = design.netlist[name]
                    node.width, node.height = node.height, node.width
            model.write_centers(best_cx, best_cy)
            hpwl = finalize_design(design, self.cell_place_iters)
        return BaselineResult("sa", hpwl, t.seconds, self.n_moves)
