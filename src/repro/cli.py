"""Command-line interface.

    python -m repro place   --circuit ibm01 --preset fast --svg out.svg
    python -m repro compare --circuit ibm06 --preset fast
    python -m repro suites
    python -m repro bookshelf --circuit ibm03 --out /tmp/ibm03

Subcommands:

- ``place``     — run the full MCTS-guided flow on a suite circuit (or a
  Bookshelf ``.aux``) and print the result; optionally write an SVG.
- ``compare``   — run the flow plus the baseline placers and print a
  paper-style comparison table.
- ``suites``    — list the available synthetic benchmark circuits.
- ``bookshelf`` — export a synthetic circuit as a Bookshelf bundle.
"""

from __future__ import annotations

import argparse
import copy
import sys

from repro.core import MCTSGuidedPlacer, PlacerConfig
from repro.runtime.errors import PlacementError, UsageError


def _load_design(args) -> tuple[str, "object"]:
    from repro.netlist.bookshelf import read_aux
    from repro.netlist.suites import (
        ICCAD04_STATS,
        INDUSTRIAL_STATS,
        make_iccad04_circuit,
        make_industrial_circuit,
    )

    if args.aux:
        design = read_aux(args.aux)
        return design.name, design
    name = args.circuit
    if name in ICCAD04_STATS:
        return name, make_iccad04_circuit(
            name, scale=args.scale, macro_scale=args.macro_scale
        ).design
    if name in INDUSTRIAL_STATS:
        return name, make_industrial_circuit(
            name, scale=args.scale / 5.0, macro_scale=max(args.macro_scale * 5, 0.3)
        ).design
    raise UsageError(
        f"unknown circuit {name!r}; see 'python -m repro suites'", circuit=name
    )


def _preset(name: str, seed: int) -> PlacerConfig:
    presets = {
        "fast": PlacerConfig.fast,
        "benchmark": PlacerConfig.benchmark,
        "paper": lambda seed=0: PlacerConfig.paper(),
    }
    if name not in presets:
        raise UsageError(
            f"unknown preset {name!r}; choose from {sorted(presets)}", preset=name
        )
    return presets[name](seed=seed) if name != "paper" else PlacerConfig.paper()


def cmd_place(args) -> int:
    """Run the full MCTS-guided flow on one circuit; print the results."""
    from dataclasses import replace

    name, design = _load_design(args)
    config = _preset(args.preset, args.seed)
    if getattr(args, "legal_cells", False):
        config = replace(config, legalize_cells=True)
    if getattr(args, "terminal_workers", None):
        config = replace(config, terminal_workers=args.terminal_workers)
    if args.resume and not args.run_dir:
        raise UsageError("--resume requires --run-dir")
    print(f"placing {name}: {design.netlist.stats()}")
    result = MCTSGuidedPlacer(config).place(
        design, run_dir=args.run_dir, resume=args.resume
    )
    best = min(result.hpwl, result.search.best_terminal_wirelength)
    print(f"HPWL            : {result.hpwl:.1f} (best terminal {best:.1f})")
    if result.legal_hpwl is not None:
        stats = result.cell_legalization
        print(f"legalized cells : HPWL {result.legal_hpwl:.1f} "
              f"({stats.placed} placed, {stats.failed} failed)")
    print(f"macro groups    : {result.n_macro_groups}")
    print(f"MCTS stage      : {result.mcts_runtime:.1f}s "
          f"(total {result.stopwatch.overall():.1f}s)")
    if args.svg:
        from repro.eval.visualize import save_placement_svg
        from repro.grid.plan import GridPlan

        plan = GridPlan(design.region, zeta=config.zeta)
        save_placement_svg(design, args.svg, plan=plan)
        print(f"wrote {args.svg}")
    if args.ascii:
        from repro.eval.visualize import placement_ascii

        print(placement_ascii(design))
    return 0


def cmd_compare(args) -> int:
    """Place one circuit with every baseline and the flow; print the table."""
    from repro.baselines import (
        BTreeFloorplanPlacer,
        RandomPlacer,
        RePlAceLikePlacer,
        SAPlacer,
        SEPlacer,
        WiremaskPlacer,
    )
    from repro.eval.report import ComparisonTable

    name, design = _load_design(args)
    print(f"comparing on {name}: {design.netlist.stats()}")
    methods = ["random", "sa", "btree", "se", "maskplace", "replace", "ours"]
    table = ComparisonTable(methods=methods, reference="ours")

    baselines = {
        "random": RandomPlacer(seed=args.seed),
        "sa": SAPlacer(n_moves=1500, seed=args.seed),
        "btree": BTreeFloorplanPlacer(n_moves=1500, seed=args.seed),
        "se": SEPlacer(generations=12, seed=args.seed),
        "maskplace": WiremaskPlacer(bins=16, rollouts=8, seed=args.seed),
        "replace": RePlAceLikePlacer(seed=args.seed),
    }
    for key, placer in baselines.items():
        d = copy.deepcopy(design)
        result = placer.place(d)
        table.add(name, key, result.hpwl)
        print(f"  {key:10s} {result.hpwl:12.1f}  ({result.runtime:.1f}s)")

    config = _preset(args.preset, args.seed)
    result = MCTSGuidedPlacer(config).place(copy.deepcopy(design))
    ours = min(result.hpwl, result.search.best_terminal_wirelength)
    table.add(name, "ours", ours)
    print(f"  {'ours':10s} {ours:12.1f}  "
          f"({result.stopwatch.overall():.1f}s)")
    print()
    print(table.render())
    return 0


def cmd_suites(_args) -> int:
    """List the synthetic benchmark circuits and their paper statistics."""
    from repro.netlist.suites import ICCAD04_STATS, INDUSTRIAL_STATS

    print("ICCAD04-alike (Table III) — macros / cells / nets at scale=1:")
    for name, (m, c, n) in ICCAD04_STATS.items():
        print(f"  {name:6s} {m:5d} {c:9,d} {n:9,d}")
    print("industrial-alike (Table II) — mov/pre macros, pads, cells, nets:")
    for name, (mv, pre, pads, c, n) in INDUSTRIAL_STATS.items():
        print(f"  {name:6s} {mv:4d} {pre:4d} {pads:5d} {c:11,d} {n:11,d}")
    return 0


def cmd_bookshelf(args) -> int:
    """Export a circuit as a Bookshelf bundle."""
    from repro.netlist.bookshelf import write_design

    name, design = _load_design(args)
    aux = write_design(design, args.out)
    print(f"wrote {aux}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MCTS-guided macro placement (DATE 2025 repro)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        """Arguments shared by the circuit-consuming subcommands."""
        p.add_argument("--circuit", default="ibm01",
                       help="suite circuit name (ibm01..ibm18, Cir1..Cir6)")
        p.add_argument("--aux", default=None,
                       help="path to a Bookshelf .aux file (overrides --circuit)")
        p.add_argument("--scale", type=float, default=0.01,
                       help="cell/net count scale factor for synthetic circuits")
        p.add_argument("--macro-scale", type=float, default=0.08,
                       dest="macro_scale", help="macro count scale factor")
        p.add_argument("--seed", type=int, default=0)

    p_place = sub.add_parser("place", help="run the full flow on one circuit")
    common(p_place)
    p_place.add_argument("--preset", default="fast",
                         choices=["fast", "benchmark", "paper"])
    p_place.add_argument("--svg", default=None, help="write placement SVG here")
    p_place.add_argument("--ascii", action="store_true",
                         help="print an ASCII placement sketch")
    p_place.add_argument("--legal-cells", action="store_true",
                         dest="legal_cells",
                         help="snap cells onto rows after the final placement")
    p_place.add_argument("--terminal-workers", type=int, default=None,
                         dest="terminal_workers",
                         help="worker processes for terminal legalize-and-"
                              "place evaluations (results are bitwise-"
                              "identical for every count; default 1 = "
                              "in-process)")
    p_place.add_argument("--run-dir", default=None, dest="run_dir",
                         help="persist stage checkpoints, the run manifest, "
                              "and the event log into this directory")
    p_place.add_argument("--resume", action="store_true",
                         help="resume an interrupted run from --run-dir, "
                              "skipping completed stages")
    p_place.set_defaults(func=cmd_place)

    p_cmp = sub.add_parser("compare", help="flow vs all baselines on one circuit")
    common(p_cmp)
    p_cmp.add_argument("--preset", default="fast",
                       choices=["fast", "benchmark", "paper"])
    p_cmp.set_defaults(func=cmd_compare)

    p_suites = sub.add_parser("suites", help="list available circuits")
    p_suites.set_defaults(func=cmd_suites)

    p_bk = sub.add_parser("bookshelf", help="export a circuit as Bookshelf")
    common(p_bk)
    p_bk.add_argument("--out", required=True, help="output directory")
    p_bk.set_defaults(func=cmd_bookshelf)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Structured placement failures map to distinct exit codes (see
    :mod:`repro.runtime.errors`): 10 generic, 11 calibration, 12 training
    divergence, 13 solver infeasibility, 14 stage timeout, 15 injected
    fault, 64 usage.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except PlacementError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":
    sys.exit(main())
